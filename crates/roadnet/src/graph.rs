//! Directed weighted road graphs.
//!
//! A [`RoadGraph`] stores planar nodes (intersections) and directed edges
//! (road segments) with a length, a free-flow speed and a congestion factor.
//! Adjacency is stored as per-node outgoing edge lists built once at
//! construction; the traversal algorithms only read them.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (intersection), an index into [`RoadGraph::nodes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a `usize` index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a directed edge (road segment), an index into
/// [`RoadGraph::edges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an identifier from a `usize` index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Self(u32::try_from(index).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A node: a planar intersection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Identifier; equals the node's index.
    pub id: NodeId,
    /// Planar position in kilometres.
    pub pos: (f64, f64),
}

/// A directed road segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Identifier; equals the edge's index.
    pub id: EdgeId,
    /// Tail node.
    pub from: NodeId,
    /// Head node.
    pub to: NodeId,
    /// Segment length in kilometres (positive).
    pub length: f64,
    /// Free-flow speed in km/h (positive).
    pub speed: f64,
    /// Congestion factor in `[0, 1]`: `0` = free flow, `1` = fully jammed.
    /// The paper computes a route's congestion level from vehicle velocities;
    /// here the factor is a static field of the synthetic city (§3.1 assumes
    /// congestion independent of the game's own users).
    pub congestion: f64,
}

impl Edge {
    /// Travel time in hours under congestion: `length / (speed·(1 − 0.75·congestion))`.
    ///
    /// The damping factor keeps the effective speed positive even at
    /// `congestion = 1` (jammed traffic still crawls at a quarter of the
    /// free-flow speed).
    #[inline]
    pub fn travel_time(&self) -> f64 {
        self.length / (self.speed * (1.0 - 0.75 * self.congestion))
    }

    /// The edge's contribution to a route's congestion level:
    /// `length × congestion` (congested kilometres).
    #[inline]
    pub fn congestion_load(&self) -> f64 {
        self.length * self.congestion
    }
}

/// Errors raised while constructing a [`RoadGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// An edge references a node that does not exist.
    UnknownNode {
        /// The offending edge index.
        edge: usize,
        /// The missing node.
        node: NodeId,
    },
    /// An edge has a non-positive or non-finite length or speed, or a
    /// congestion factor outside `[0, 1]`.
    InvalidEdgeAttribute {
        /// The offending edge index.
        edge: usize,
        /// Attribute name.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A self-loop edge (`from == to`), which no road network needs.
    SelfLoop {
        /// The offending edge index.
        edge: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode { edge, node } => {
                write!(f, "edge #{edge} references unknown node {node}")
            }
            GraphError::InvalidEdgeAttribute { edge, name, value } => {
                write!(f, "edge #{edge} has invalid {name} = {value}")
            }
            GraphError::SelfLoop { edge } => write!(f, "edge #{edge} is a self-loop"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A validated directed road graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoadGraph {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    /// Outgoing edge ids per node.
    out: Vec<Vec<EdgeId>>,
}

impl RoadGraph {
    /// Builds a graph from positions and edge descriptors
    /// `(from, to, length, speed, congestion)`.
    pub fn new(
        positions: Vec<(f64, f64)>,
        edge_specs: Vec<(NodeId, NodeId, f64, f64, f64)>,
    ) -> Result<Self, GraphError> {
        let nodes: Vec<Node> = positions
            .into_iter()
            .enumerate()
            .map(|(i, pos)| Node {
                id: NodeId::from_index(i),
                pos,
            })
            .collect();
        let mut edges = Vec::with_capacity(edge_specs.len());
        let mut out = vec![Vec::new(); nodes.len()];
        for (i, (from, to, length, speed, congestion)) in edge_specs.into_iter().enumerate() {
            if from.index() >= nodes.len() {
                return Err(GraphError::UnknownNode {
                    edge: i,
                    node: from,
                });
            }
            if to.index() >= nodes.len() {
                return Err(GraphError::UnknownNode { edge: i, node: to });
            }
            if from == to {
                return Err(GraphError::SelfLoop { edge: i });
            }
            if !(length.is_finite() && length > 0.0) {
                return Err(GraphError::InvalidEdgeAttribute {
                    edge: i,
                    name: "length",
                    value: length,
                });
            }
            if !(speed.is_finite() && speed > 0.0) {
                return Err(GraphError::InvalidEdgeAttribute {
                    edge: i,
                    name: "speed",
                    value: speed,
                });
            }
            if !(congestion.is_finite() && (0.0..=1.0).contains(&congestion)) {
                return Err(GraphError::InvalidEdgeAttribute {
                    edge: i,
                    name: "congestion",
                    value: congestion,
                });
            }
            let id = EdgeId::from_index(i);
            edges.push(Edge {
                id,
                from,
                to,
                length,
                speed,
                congestion,
            });
            out[from.index()].push(id);
        }
        Ok(Self { nodes, edges, out })
    }

    /// All nodes.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The node with identifier `id`.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The edge with identifier `id`.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Outgoing edges of `node`.
    #[inline]
    pub fn outgoing(&self, node: NodeId) -> &[EdgeId] {
        &self.out[node.index()]
    }

    /// Euclidean distance between two nodes' positions, in kilometres.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        let pa = self.node(a).pos;
        let pb = self.node(b).pos;
        ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt()
    }

    /// Whether every node can reach every other node (strong connectivity),
    /// checked with two BFS passes (forward from node 0, and over the
    /// reversed adjacency). Empty graphs count as connected.
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let forward = self.reachable_count(NodeId(0), false);
        let backward = self.reachable_count(NodeId(0), true);
        forward == self.nodes.len() && backward == self.nodes.len()
    }

    fn reachable_count(&self, start: NodeId, reversed: bool) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        let mut count = 0;
        // For the reversed pass build an in-edge view on the fly.
        let mut incoming: Vec<Vec<NodeId>> = Vec::new();
        if reversed {
            incoming = vec![Vec::new(); self.nodes.len()];
            for e in &self.edges {
                incoming[e.to.index()].push(e.from);
            }
        }
        while let Some(n) = stack.pop() {
            count += 1;
            if reversed {
                for &prev in &incoming[n.index()] {
                    if !seen[prev.index()] {
                        seen[prev.index()] = true;
                        stack.push(prev);
                    }
                }
            } else {
                for &eid in self.outgoing(n) {
                    let next = self.edge(eid).to;
                    if !seen[next.index()] {
                        seen[next.index()] = true;
                        stack.push(next);
                    }
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Triangle: 0 → 1 → 2 → 0 plus a reverse edge 1 → 0.
    fn triangle() -> RoadGraph {
        RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 0.0),
                (NodeId(1), NodeId(2), 1.5, 40.0, 0.5),
                (NodeId(2), NodeId(0), 1.2, 60.0, 1.0),
                (NodeId(1), NodeId(0), 1.0, 50.0, 0.2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_adjacency() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.outgoing(NodeId(1)), &[EdgeId(1), EdgeId(3)]);
        assert_eq!(g.edge(EdgeId(2)).to, NodeId(0));
    }

    #[test]
    fn unknown_node_rejected() {
        let err = RoadGraph::new(
            vec![(0.0, 0.0)],
            vec![(NodeId(0), NodeId(7), 1.0, 50.0, 0.0)],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            GraphError::UnknownNode {
                node: NodeId(7),
                ..
            }
        ));
    }

    #[test]
    fn self_loop_rejected() {
        let err = RoadGraph::new(
            vec![(0.0, 0.0)],
            vec![(NodeId(0), NodeId(0), 1.0, 50.0, 0.0)],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::SelfLoop { edge: 0 }));
    }

    #[test]
    fn invalid_attributes_rejected() {
        for (len, speed, cong, name) in [
            (0.0, 50.0, 0.0, "length"),
            (1.0, -3.0, 0.0, "speed"),
            (1.0, 50.0, 1.5, "congestion"),
            (f64::NAN, 50.0, 0.0, "length"),
        ] {
            let err = RoadGraph::new(
                vec![(0.0, 0.0), (1.0, 0.0)],
                vec![(NodeId(0), NodeId(1), len, speed, cong)],
            )
            .unwrap_err();
            match err {
                GraphError::InvalidEdgeAttribute { name: n, .. } => assert_eq!(n, name),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn travel_time_slows_with_congestion() {
        let g = triangle();
        let free = g.edge(EdgeId(0)); // congestion 0
        let jammed = g.edge(EdgeId(2)); // congestion 1
        assert!((free.travel_time() - 1.0 / 50.0).abs() < 1e-12);
        // Effective speed at full jam is a quarter of free flow.
        assert!((jammed.travel_time() - 1.2 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn congestion_load_scales_with_length() {
        let g = triangle();
        assert!((g.edge(EdgeId(1)).congestion_load() - 0.75).abs() < 1e-12);
        assert_eq!(g.edge(EdgeId(0)).congestion_load(), 0.0);
    }

    #[test]
    fn strong_connectivity() {
        let g = triangle();
        assert!(g.is_strongly_connected());
        // Remove the cycle-closing edge: 2 has no outgoing edges.
        let g2 = RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 0.0),
                (NodeId(1), NodeId(2), 1.5, 40.0, 0.5),
            ],
        )
        .unwrap();
        assert!(!g2.is_strongly_connected());
    }

    #[test]
    fn euclidean_distance() {
        let g = triangle();
        assert!((g.distance(NodeId(0), NodeId(1)) - 1.0).abs() < 1e-12);
        assert!((g.distance(NodeId(1), NodeId(2)) - 2f64.sqrt()).abs() < 1e-12);
    }
}
