//! Synthetic city generators.
//!
//! The paper evaluates on three real cities (Shanghai, Rome, San Francisco).
//! These generators produce road networks with the corresponding *structure*:
//! a dense rectangular grid (Shanghai-like), a radial ring-and-spoke network
//! (Rome-like) and an irregular, partially thinned grid (the SF peninsula of
//! the EPFL trace). All generators are fully deterministic given their seed,
//! produce strongly connected graphs, and attach a congestion field that
//! peaks at the city centre.

use crate::graph::{NodeId, RoadGraph};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The structural family of a synthetic city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CityKind {
    /// Rectangular grid of `nx × ny` intersections spaced `spacing` km apart
    /// (Shanghai-like dense downtown).
    Grid {
        /// Number of columns.
        nx: usize,
        /// Number of rows.
        ny: usize,
        /// Block edge length in km.
        spacing: f64,
    },
    /// Ring-and-spoke network with `rings` concentric rings of `spokes`
    /// nodes each plus a centre node (Rome-like radial centre).
    Radial {
        /// Number of concentric rings.
        rings: usize,
        /// Number of spokes (nodes per ring).
        spokes: usize,
        /// Radial distance between consecutive rings in km.
        ring_spacing: f64,
    },
    /// Grid with a fraction of bidirectional street pairs removed while
    /// preserving strong connectivity (SF-peninsula-like irregular fabric).
    Irregular {
        /// Number of columns.
        nx: usize,
        /// Number of rows.
        ny: usize,
        /// Block edge length in km.
        spacing: f64,
        /// Fraction of candidate street pairs to try to remove, in `[0, 1)`.
        removal: f64,
    },
}

/// Full configuration of a synthetic city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityConfig {
    /// Structural family and dimensions.
    pub kind: CityKind,
    /// RNG seed controlling jitter, speeds, congestion and removals.
    pub seed: u64,
}

impl CityConfig {
    /// Generates the road network.
    pub fn generate(&self) -> RoadGraph {
        let mut rng = StdRng::seed_from_u64(self.seed);
        match self.kind {
            CityKind::Grid { nx, ny, spacing } => grid_city(nx, ny, spacing, &mut rng, 0.0),
            CityKind::Radial {
                rings,
                spokes,
                ring_spacing,
            } => radial_city(rings, spokes, ring_spacing, &mut rng),
            CityKind::Irregular {
                nx,
                ny,
                spacing,
                removal,
            } => grid_city(nx, ny, spacing, &mut rng, removal),
        }
    }
}

/// Congestion factor at planar position `pos` for a city with centre
/// `centre` and characteristic radius `radius`: a Gaussian bump at the
/// centre, a systematic arterial surcharge (busy main roads), and uniform
/// noise, clamped to `[0, 1]`.
///
/// The arterial term is what gives parallel alternatives *different* mean
/// congestion — without spatially correlated structure, per-edge noise
/// averages out along a route and the platform's `θ` knob would have nothing
/// to trade against (cf. Fig. 12c).
fn congestion_at(
    pos: (f64, f64),
    centre: (f64, f64),
    radius: f64,
    arterial: bool,
    rng: &mut StdRng,
) -> f64 {
    let d2 = (pos.0 - centre.0).powi(2) + (pos.1 - centre.1).powi(2);
    let sigma2 = (radius * 0.45).powi(2).max(1e-9);
    let bump = 0.55 * (-d2 / (2.0 * sigma2)).exp();
    let arterial_load = if arterial { 0.3 } else { 0.0 };
    let noise = rng.random_range(-0.08..0.08);
    (bump + arterial_load + noise).clamp(0.0, 1.0)
}

/// Free-flow speed for a street: arterials (every third line) are faster.
fn street_speed(is_arterial: bool, rng: &mut StdRng) -> f64 {
    if is_arterial {
        rng.random_range(50.0..70.0)
    } else {
        rng.random_range(30.0..50.0)
    }
}

fn grid_city(nx: usize, ny: usize, spacing: f64, rng: &mut StdRng, removal: f64) -> RoadGraph {
    assert!(nx >= 2 && ny >= 2, "grid needs at least 2×2 nodes");
    assert!(
        (0.0..1.0).contains(&removal),
        "removal fraction must be in [0, 1)"
    );
    let jitter = spacing * 0.15;
    let mut positions = Vec::with_capacity(nx * ny);
    for y in 0..ny {
        for x in 0..nx {
            let px = x as f64 * spacing + rng.random_range(-jitter..jitter);
            let py = y as f64 * spacing + rng.random_range(-jitter..jitter);
            positions.push((px, py));
        }
    }
    let centre = (
        (nx - 1) as f64 * spacing / 2.0,
        (ny - 1) as f64 * spacing / 2.0,
    );
    let radius = centre.0.hypot(centre.1).max(spacing);
    let node = |x: usize, y: usize| NodeId::from_index(y * nx + x);
    // Build bidirectional street pairs between grid neighbours.
    let mut pairs: Vec<(NodeId, NodeId, bool)> = Vec::new();
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                pairs.push((node(x, y), node(x + 1, y), y % 3 == 0));
            }
            if y + 1 < ny {
                pairs.push((node(x, y), node(x, y + 1), x % 3 == 0));
            }
        }
    }
    let build = |kept: &[(NodeId, NodeId, bool)], rng: &mut StdRng| -> RoadGraph {
        let mut edge_specs = Vec::with_capacity(kept.len() * 2);
        for &(a, b, arterial) in kept {
            let pa = positions[a.index()];
            let pb = positions[b.index()];
            let length = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2))
                .sqrt()
                .max(0.05);
            let mid = ((pa.0 + pb.0) / 2.0, (pa.1 + pb.1) / 2.0);
            let congestion = congestion_at(mid, centre, radius, arterial, rng);
            let speed = street_speed(arterial, rng);
            edge_specs.push((a, b, length, speed, congestion));
            // The reverse direction shares geometry but gets its own speed
            // draw (different lanes).
            let speed_back = street_speed(arterial, rng);
            edge_specs.push((b, a, length, speed_back, congestion));
        }
        RoadGraph::new(positions.clone(), edge_specs).expect("generated grid is valid")
    };
    if removal == 0.0 {
        return build(&pairs, rng);
    }
    // Irregular variant: try removing street pairs, keeping connectivity.
    let mut kept = pairs.clone();
    let target_removals = (pairs.len() as f64 * removal) as usize;
    let mut removed = 0;
    let mut attempts = 0;
    while removed < target_removals && attempts < pairs.len() * 4 {
        attempts += 1;
        if kept.len() <= (nx * ny) {
            break; // keep a sane density floor
        }
        let idx = rng.random_range(0..kept.len());
        let candidate = kept[idx];
        kept.swap_remove(idx);
        // Cheap connectivity probe: rebuild and check.
        let probe = build(&kept, &mut StdRng::seed_from_u64(0));
        if probe.is_strongly_connected() {
            removed += 1;
        } else {
            kept.push(candidate);
        }
    }
    build(&kept, rng)
}

fn radial_city(rings: usize, spokes: usize, ring_spacing: f64, rng: &mut StdRng) -> RoadGraph {
    assert!(
        rings >= 1 && spokes >= 3,
        "radial city needs ≥1 ring and ≥3 spokes"
    );
    // Node 0 is the centre; ring r (0-based) spoke s is node 1 + r·spokes + s.
    let mut positions = vec![(0.0, 0.0)];
    for r in 0..rings {
        let radius = (r + 1) as f64 * ring_spacing;
        for s in 0..spokes {
            let angle =
                std::f64::consts::TAU * s as f64 / spokes as f64 + rng.random_range(-0.05..0.05);
            positions.push((radius * angle.cos(), radius * angle.sin()));
        }
    }
    let node = |r: usize, s: usize| NodeId::from_index(1 + r * spokes + s);
    let centre = (0.0, 0.0);
    let radius = rings as f64 * ring_spacing;
    let mut pairs: Vec<(NodeId, NodeId, bool)> = Vec::new();
    // Centre ↔ innermost ring.
    for s in 0..spokes {
        pairs.push((NodeId(0), node(0, s), true));
    }
    for r in 0..rings {
        for s in 0..spokes {
            // Ring edges (to next spoke, wrap around).
            pairs.push((node(r, s), node(r, (s + 1) % spokes), r == 0));
            // Spoke edges (to next ring out).
            if r + 1 < rings {
                pairs.push((node(r, s), node(r + 1, s), true));
            }
        }
    }
    let mut edge_specs = Vec::with_capacity(pairs.len() * 2);
    for &(a, b, arterial) in &pairs {
        let pa = positions[a.index()];
        let pb = positions[b.index()];
        let length = ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2))
            .sqrt()
            .max(0.05);
        let mid = ((pa.0 + pb.0) / 2.0, (pa.1 + pb.1) / 2.0);
        let congestion = congestion_at(mid, centre, radius, arterial, rng);
        edge_specs.push((a, b, length, street_speed(arterial, rng), congestion));
        edge_specs.push((b, a, length, street_speed(arterial, rng), congestion));
    }
    RoadGraph::new(positions, edge_specs).expect("generated radial city is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_city_shape() {
        let g = CityConfig {
            kind: CityKind::Grid {
                nx: 5,
                ny: 4,
                spacing: 1.0,
            },
            seed: 7,
        }
        .generate();
        assert_eq!(g.node_count(), 20);
        // Streets: 4·4 horizontal + 5·3 vertical pairs = 31 pairs = 62 edges.
        assert_eq!(g.edge_count(), 62);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn radial_city_shape() {
        let g = CityConfig {
            kind: CityKind::Radial {
                rings: 3,
                spokes: 8,
                ring_spacing: 1.0,
            },
            seed: 7,
        }
        .generate();
        assert_eq!(g.node_count(), 1 + 24);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn irregular_city_connected_and_thinner() {
        let full = CityConfig {
            kind: CityKind::Grid {
                nx: 6,
                ny: 6,
                spacing: 1.0,
            },
            seed: 3,
        }
        .generate();
        let thin = CityConfig {
            kind: CityKind::Irregular {
                nx: 6,
                ny: 6,
                spacing: 1.0,
                removal: 0.2,
            },
            seed: 3,
        }
        .generate();
        assert!(thin.is_strongly_connected());
        assert!(thin.edge_count() < full.edge_count());
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CityConfig {
            kind: CityKind::Grid {
                nx: 4,
                ny: 4,
                spacing: 0.8,
            },
            seed: 42,
        };
        assert_eq!(cfg.generate(), cfg.generate());
        let other = CityConfig {
            kind: CityKind::Grid {
                nx: 4,
                ny: 4,
                spacing: 0.8,
            },
            seed: 43,
        };
        assert_ne!(cfg.generate(), other.generate());
    }

    #[test]
    fn congestion_peaks_at_centre() {
        let g = CityConfig {
            kind: CityKind::Grid {
                nx: 9,
                ny: 9,
                spacing: 1.0,
            },
            seed: 11,
        }
        .generate();
        let centre = (4.0, 4.0);
        let dist = |e: &crate::graph::Edge| {
            let a = g.node(e.from).pos;
            ((a.0 - centre.0).powi(2) + (a.1 - centre.1).powi(2)).sqrt()
        };
        let (mut inner_sum, mut inner_n) = (0.0, 0);
        let (mut outer_sum, mut outer_n) = (0.0, 0);
        for e in g.edges() {
            if dist(e) < 1.5 {
                inner_sum += e.congestion;
                inner_n += 1;
            } else if dist(e) > 4.0 {
                outer_sum += e.congestion;
                outer_n += 1;
            }
        }
        assert!(inner_n > 0 && outer_n > 0);
        assert!(inner_sum / inner_n as f64 > outer_sum / outer_n as f64);
    }

    #[test]
    fn all_congestions_in_unit_interval() {
        for seed in 0..5 {
            let g = CityConfig {
                kind: CityKind::Radial {
                    rings: 4,
                    spokes: 10,
                    ring_spacing: 0.7,
                },
                seed,
            }
            .generate();
            for e in g.edges() {
                assert!((0.0..=1.0).contains(&e.congestion));
                assert!(e.speed >= 30.0 && e.speed <= 70.0);
                assert!(e.length > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "grid needs at least 2×2 nodes")]
    fn degenerate_grid_rejected() {
        let _ = CityConfig {
            kind: CityKind::Grid {
                nx: 1,
                ny: 5,
                spacing: 1.0,
            },
            seed: 0,
        }
        .generate();
    }
}
