//! Route recommendation: the navigation-service substrate.
//!
//! Emulates what the paper obtains from the Google Maps API: for an
//! origin–destination pair, a small set of alternative routes, each annotated
//! with its detour distance `h(r)` (extra length versus the shortest route)
//! and congestion level `c(r)`. Recommendations are k-shortest-paths
//! candidates filtered for diversity (bounded pairwise edge overlap) and
//! bounded detour.

use crate::dijkstra::CostMetric;
use crate::graph::{NodeId, RoadGraph};
use crate::path::Path;
use crate::yen::k_shortest_paths;
use serde::{Deserialize, Serialize};

/// Configuration of the recommender.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecommendConfig {
    /// Maximum number of routes to return (Table 2: 1–5).
    pub max_routes: usize,
    /// Candidate pool size fed into the diversity filter (≥ `max_routes`).
    pub candidate_pool: usize,
    /// Maximum allowed pairwise edge overlap (Jaccard) between recommended
    /// routes; `1.0` disables the diversity filter.
    pub max_overlap: f64,
    /// Maximum detour ratio: a route is dropped when
    /// `length > detour_ratio × shortest length`.
    pub max_detour_ratio: f64,
}

impl Default for RecommendConfig {
    fn default() -> Self {
        Self {
            max_routes: 5,
            candidate_pool: 12,
            max_overlap: 0.8,
            max_detour_ratio: 2.0,
        }
    }
}

/// A recommended route: the path plus the scalars the game consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecommendedRoute {
    /// The underlying path.
    pub path: Path,
    /// Detour distance `h(r)` in km: `length − shortest length`.
    pub detour: f64,
    /// Congestion level `c(r)`: the path's length-weighted mean congestion
    /// factor in `[0, 1]` (velocity-derived intensity, per §5.1 of the
    /// paper: "the congestion level is calculated by the velocity of the
    /// vehicles on the route").
    pub congestion: f64,
}

/// Recommends up to `config.max_routes` diverse routes from `origin` to
/// `destination`. The first recommendation is always the shortest route
/// (detour `0`). Returns an empty vector when the destination is unreachable.
pub fn recommend_routes(
    graph: &RoadGraph,
    origin: NodeId,
    destination: NodeId,
    config: &RecommendConfig,
) -> Vec<RecommendedRoute> {
    if config.max_routes == 0 {
        return Vec::new();
    }
    let pool = config.candidate_pool.max(config.max_routes);
    let candidates = k_shortest_paths(graph, origin, destination, pool, CostMetric::Length);
    let Some(shortest_len) = candidates.first().map(|p| p.length) else {
        return Vec::new();
    };
    let mut selected: Vec<Path> = Vec::with_capacity(config.max_routes);
    for path in candidates {
        if selected.len() >= config.max_routes {
            break;
        }
        if path.length > config.max_detour_ratio * shortest_len && !selected.is_empty() {
            continue;
        }
        let diverse = selected
            .iter()
            .all(|s| s.edge_overlap(&path) <= config.max_overlap);
        if selected.is_empty() || diverse {
            selected.push(path);
        }
    }
    selected
        .into_iter()
        .map(|path| {
            let detour = (path.length - shortest_len).max(0.0);
            let congestion = path.mean_congestion();
            RecommendedRoute {
                path,
                detour,
                congestion,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityKind};

    fn city() -> RoadGraph {
        CityConfig {
            kind: CityKind::Grid {
                nx: 6,
                ny: 6,
                spacing: 1.0,
            },
            seed: 5,
        }
        .generate()
    }

    #[test]
    fn first_route_is_shortest_with_zero_detour() {
        let g = city();
        let routes = recommend_routes(&g, NodeId(0), NodeId(35), &RecommendConfig::default());
        assert!(!routes.is_empty());
        assert_eq!(routes[0].detour, 0.0);
        for r in &routes {
            assert!(r.detour >= 0.0);
            assert!(r.congestion >= 0.0);
        }
    }

    #[test]
    fn respects_max_routes() {
        let g = city();
        let cfg = RecommendConfig {
            max_routes: 3,
            ..RecommendConfig::default()
        };
        let routes = recommend_routes(&g, NodeId(0), NodeId(35), &cfg);
        assert!(routes.len() <= 3);
        assert!(routes.len() >= 2, "a 6×6 grid offers alternatives");
    }

    #[test]
    fn diversity_filter_limits_overlap() {
        let g = city();
        let cfg = RecommendConfig {
            max_overlap: 0.5,
            ..RecommendConfig::default()
        };
        let routes = recommend_routes(&g, NodeId(0), NodeId(35), &cfg);
        for i in 0..routes.len() {
            for j in (i + 1)..routes.len() {
                assert!(
                    routes[i].path.edge_overlap(&routes[j].path) <= 0.5 + 1e-12,
                    "routes {i} and {j} overlap too much"
                );
            }
        }
    }

    #[test]
    fn detour_ratio_bounds_route_length() {
        let g = city();
        let cfg = RecommendConfig {
            max_detour_ratio: 1.3,
            ..RecommendConfig::default()
        };
        let routes = recommend_routes(&g, NodeId(0), NodeId(35), &cfg);
        let shortest = routes[0].path.length;
        for r in &routes {
            assert!(r.path.length <= 1.3 * shortest + 1e-12);
        }
    }

    #[test]
    fn unreachable_gives_empty() {
        // One-way pair: can go 0→1 but not back.
        let g = RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 0.0)],
            vec![(NodeId(0), NodeId(1), 1.0, 50.0, 0.0)],
        )
        .unwrap();
        assert!(recommend_routes(&g, NodeId(1), NodeId(0), &RecommendConfig::default()).is_empty());
    }

    #[test]
    fn zero_max_routes_gives_empty() {
        let g = city();
        let cfg = RecommendConfig {
            max_routes: 0,
            ..RecommendConfig::default()
        };
        assert!(recommend_routes(&g, NodeId(0), NodeId(35), &cfg).is_empty());
    }

    #[test]
    fn detour_consistent_with_lengths() {
        let g = city();
        let routes = recommend_routes(&g, NodeId(2), NodeId(33), &RecommendConfig::default());
        let shortest = routes[0].path.length;
        for r in &routes {
            assert!((r.detour - (r.path.length - shortest)).abs() < 1e-9);
        }
    }
}
