//! Yen's algorithm for the k shortest loopless paths.
//!
//! Used by the route recommender to emulate a navigation service that offers
//! several alternative routes between an origin and a destination. The
//! implementation follows the classic formulation: the best path comes from
//! Dijkstra; each subsequent path is the cheapest "spur" deviation from an
//! already accepted path, with the deviating edges banned and the root
//! prefix's nodes excluded to keep paths simple.

use crate::dijkstra::{shortest_path, shortest_path_restricted, CostMetric};
use crate::graph::{NodeId, RoadGraph};
use crate::path::Path;

/// Computes up to `k` shortest loopless paths from `source` to `target`
/// under `metric`, sorted by ascending cost. Returns fewer than `k` paths if
/// the graph does not contain that many distinct simple paths.
pub fn k_shortest_paths(
    graph: &RoadGraph,
    source: NodeId,
    target: NodeId,
    k: usize,
    metric: CostMetric,
) -> Vec<Path> {
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = shortest_path(graph, source, target, metric) else {
        return Vec::new();
    };
    if source == target {
        return vec![first];
    }
    let mut accepted: Vec<Path> = vec![first];
    // Candidate pool: (cost, path). Kept sorted on extraction; the pool is
    // small (≤ k · max path length), so a Vec + linear min scan is fine.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    let cost_of = |p: &Path| -> f64 {
        match metric {
            CostMetric::Length => p.length,
            CostMetric::TravelTime => p.travel_time,
        }
    };

    while accepted.len() < k {
        let prev = accepted.last().expect("at least the shortest path").clone();
        let prev_nodes = prev.nodes(graph, source);
        // Spur from every node of the previous path except the target.
        for spur_idx in 0..prev.edges.len() {
            let spur_node = prev_nodes[spur_idx];
            let root_edges = &prev.edges[..spur_idx];

            let mut banned_edges = vec![false; graph.edge_count()];
            // Ban the next edge of every accepted path sharing this root.
            for path in &accepted {
                if path.edges.len() > spur_idx && path.edges[..spur_idx] == *root_edges {
                    banned_edges[path.edges[spur_idx].index()] = true;
                }
            }
            for (cost, path) in &candidates {
                let _ = cost;
                if path.edges.len() > spur_idx && path.edges[..spur_idx] == *root_edges {
                    banned_edges[path.edges[spur_idx].index()] = true;
                }
            }
            // Ban the root prefix's nodes (except the spur node) so the spur
            // cannot revisit them.
            let mut banned_nodes = vec![false; graph.node_count()];
            for &node in &prev_nodes[..spur_idx] {
                banned_nodes[node.index()] = true;
            }

            let Some(spur) = shortest_path_restricted(
                graph,
                spur_node,
                target,
                metric,
                &banned_edges,
                &banned_nodes,
            ) else {
                continue;
            };
            let mut edges = root_edges.to_vec();
            edges.extend_from_slice(&spur.edges);
            let total = Path::from_edges(graph, edges);
            let total_cost = cost_of(&total);
            let duplicate = candidates.iter().any(|(_, p)| p.edges == total.edges)
                || accepted.iter().any(|p| p.edges == total.edges);
            if !duplicate {
                candidates.push((total_cost, total));
            }
        }
        // Extract the cheapest candidate.
        let Some(best_idx) = candidates
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .0.total_cmp(&b.1 .0))
            .map(|(i, _)| i)
        else {
            break; // no more distinct paths
        };
        let (_, path) = candidates.swap_remove(best_idx);
        accepted.push(path);
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeId;

    /// Grid-ish graph with several parallel corridors 0 → 5.
    fn corridors() -> RoadGraph {
        // Nodes: 0 src, 1..=4 middle, 5 dst.
        RoadGraph::new(
            vec![
                (0.0, 0.0),
                (1.0, 1.0),
                (1.0, 0.0),
                (1.0, -1.0),
                (2.0, 1.0),
                (3.0, 0.0),
            ],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 0.0), // e0
                (NodeId(1), NodeId(5), 1.0, 50.0, 0.0), // e1: total 2.0
                (NodeId(0), NodeId(2), 1.5, 50.0, 0.0), // e2
                (NodeId(2), NodeId(5), 1.0, 50.0, 0.0), // e3: total 2.5
                (NodeId(0), NodeId(3), 2.0, 50.0, 0.0), // e4
                (NodeId(3), NodeId(5), 1.5, 50.0, 0.0), // e5: total 3.5
                (NodeId(1), NodeId(4), 0.5, 50.0, 0.0), // e6
                (NodeId(4), NodeId(5), 1.0, 50.0, 0.0), // e7: 0→1→4→5 = 2.5
            ],
        )
        .unwrap()
    }

    #[test]
    fn paths_sorted_and_distinct() {
        let g = corridors();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(5), 4, CostMetric::Length);
        assert_eq!(paths.len(), 4);
        let lengths: Vec<f64> = paths.iter().map(|p| p.length).collect();
        assert!((lengths[0] - 2.0).abs() < 1e-12);
        assert!((lengths[1] - 2.5).abs() < 1e-12);
        assert!((lengths[2] - 2.5).abs() < 1e-12);
        assert!((lengths[3] - 3.5).abs() < 1e-12);
        for w in lengths.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_ne!(paths[i].edges, paths[j].edges);
            }
        }
    }

    #[test]
    fn all_paths_simple_and_reach_target() {
        let g = corridors();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(5), 10, CostMetric::Length);
        // The graph has exactly 4 simple 0→5 paths.
        assert_eq!(paths.len(), 4);
        for p in &paths {
            assert!(!p.has_cycle(&g, NodeId(0)));
            assert_eq!(p.destination(&g, NodeId(0)), NodeId(5));
        }
    }

    #[test]
    fn k_zero_and_unreachable() {
        let g = corridors();
        assert!(k_shortest_paths(&g, NodeId(0), NodeId(5), 0, CostMetric::Length).is_empty());
        assert!(k_shortest_paths(&g, NodeId(5), NodeId(0), 3, CostMetric::Length).is_empty());
    }

    #[test]
    fn first_path_is_dijkstra_shortest() {
        let g = corridors();
        let paths = k_shortest_paths(&g, NodeId(0), NodeId(5), 2, CostMetric::Length);
        assert_eq!(paths[0].edges, vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn travel_time_metric_reorders() {
        // Make corridor e0/e1 heavily congested so it loses under time.
        let g = RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 1.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 1.0),
                (NodeId(1), NodeId(3), 1.0, 50.0, 1.0),
                (NodeId(0), NodeId(2), 1.5, 50.0, 0.0),
                (NodeId(2), NodeId(3), 1.0, 50.0, 0.0),
            ],
        )
        .unwrap();
        let by_len = k_shortest_paths(&g, NodeId(0), NodeId(3), 1, CostMetric::Length);
        let by_time = k_shortest_paths(&g, NodeId(0), NodeId(3), 1, CostMetric::TravelTime);
        assert_eq!(by_len[0].edges, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(by_time[0].edges, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn same_source_target_yields_single_empty_path() {
        let g = corridors();
        let paths = k_shortest_paths(&g, NodeId(2), NodeId(2), 3, CostMetric::Length);
        assert_eq!(paths.len(), 1);
        assert!(paths[0].edges.is_empty());
    }
}
