//! Dijkstra shortest paths under pluggable edge costs.

use crate::graph::{Edge, EdgeId, NodeId, RoadGraph};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The cost metric used for shortest-path queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostMetric {
    /// Minimize total length (km). This is the paper's notion: the detour
    /// distance `h(r)` compares route lengths against the shortest route.
    Length,
    /// Minimize congested travel time (hours).
    TravelTime,
}

impl CostMetric {
    /// The cost of a single edge under this metric.
    #[inline]
    pub fn edge_cost(self, edge: &Edge) -> f64 {
        match self {
            CostMetric::Length => edge.length,
            CostMetric::TravelTime => edge.travel_time(),
        }
    }
}

/// Heap entry ordered by ascending cost (min-heap via reversed `Ord`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want smallest cost on top.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest-path tree from `source`, with optional edge and
/// node bans (used by Yen's spur computation).
///
/// Returns `(dist, parent_edge)` where unreachable nodes carry
/// `f64::INFINITY` and `None`.
pub fn shortest_path_tree(
    graph: &RoadGraph,
    source: NodeId,
    metric: CostMetric,
    banned_edges: &[bool],
    banned_nodes: &[bool],
) -> (Vec<f64>, Vec<Option<EdgeId>>) {
    let n = graph.node_count();
    debug_assert!(banned_edges.is_empty() || banned_edges.len() == graph.edge_count());
    debug_assert!(banned_nodes.is_empty() || banned_nodes.len() == n);
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    if !banned_nodes.is_empty() && banned_nodes[source.index()] {
        return (dist, parent);
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        cost: 0.0,
        node: source,
    });
    while let Some(HeapEntry { cost, node }) = heap.pop() {
        if cost > dist[node.index()] {
            continue; // stale entry
        }
        for &eid in graph.outgoing(node) {
            if !banned_edges.is_empty() && banned_edges[eid.index()] {
                continue;
            }
            let edge = graph.edge(eid);
            if !banned_nodes.is_empty() && banned_nodes[edge.to.index()] {
                continue;
            }
            let next_cost = cost + metric.edge_cost(edge);
            if next_cost < dist[edge.to.index()] {
                dist[edge.to.index()] = next_cost;
                parent[edge.to.index()] = Some(eid);
                heap.push(HeapEntry {
                    cost: next_cost,
                    node: edge.to,
                });
            }
        }
    }
    (dist, parent)
}

/// Shortest path from `source` to `target` under `metric`, or `None` if
/// unreachable. Returns [`Path::empty`] when `source == target`.
pub fn shortest_path(
    graph: &RoadGraph,
    source: NodeId,
    target: NodeId,
    metric: CostMetric,
) -> Option<Path> {
    shortest_path_restricted(graph, source, target, metric, &[], &[])
}

/// [`shortest_path`] with edge/node bans (Yen's spur step).
pub fn shortest_path_restricted(
    graph: &RoadGraph,
    source: NodeId,
    target: NodeId,
    metric: CostMetric,
    banned_edges: &[bool],
    banned_nodes: &[bool],
) -> Option<Path> {
    if source == target {
        return Some(Path::empty());
    }
    let (dist, parent) = shortest_path_tree(graph, source, metric, banned_edges, banned_nodes);
    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut edges = Vec::new();
    let mut cursor = target;
    while cursor != source {
        let eid = parent[cursor.index()].expect("finite distance implies a parent chain");
        edges.push(eid);
        cursor = graph.edge(eid).from;
    }
    edges.reverse();
    Some(Path::from_edges(graph, edges))
}

/// Shortest distance (under `metric`) from `source` to every node.
pub fn distances(graph: &RoadGraph, source: NodeId, metric: CostMetric) -> Vec<f64> {
    shortest_path_tree(graph, source, metric, &[], &[]).0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Diamond: 0→1→3 (lengths 1+1) and 0→2→3 (lengths 2+0.5), plus 0→3
    /// direct (length 3). Shortest by length: 0→1→3 (2.0).
    fn diamond() -> RoadGraph {
        RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 1.0), (1.0, -1.0), (2.0, 0.0)],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 0.0),
                (NodeId(1), NodeId(3), 1.0, 50.0, 0.9),
                (NodeId(0), NodeId(2), 2.0, 50.0, 0.0),
                (NodeId(2), NodeId(3), 0.5, 50.0, 0.0),
                (NodeId(0), NodeId(3), 3.0, 50.0, 0.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shortest_by_length() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(0), NodeId(3), CostMetric::Length).unwrap();
        assert_eq!(p.edges, vec![EdgeId(0), EdgeId(1)]);
        assert!((p.length - 2.0).abs() < 1e-12);
    }

    #[test]
    fn shortest_by_travel_time_avoids_jam() {
        let g = diamond();
        // Edge 1 is 90% congested: time 1/(50·0.325) ≈ 0.0615 so route via 1
        // costs ≈ 0.0815 h; route via 2 costs 2.5/50 = 0.05 h.
        let p = shortest_path(&g, NodeId(0), NodeId(3), CostMetric::TravelTime).unwrap();
        assert_eq!(p.edges, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn same_node_gives_empty_path() {
        let g = diamond();
        let p = shortest_path(&g, NodeId(1), NodeId(1), CostMetric::Length).unwrap();
        assert!(p.edges.is_empty());
    }

    #[test]
    fn unreachable_returns_none() {
        let g = diamond();
        // Node 3 has no outgoing edges.
        assert!(shortest_path(&g, NodeId(3), NodeId(0), CostMetric::Length).is_none());
    }

    #[test]
    fn banned_edge_forces_detour() {
        let g = diamond();
        let mut banned = vec![false; g.edge_count()];
        banned[0] = true; // forbid 0→1
        let p =
            shortest_path_restricted(&g, NodeId(0), NodeId(3), CostMetric::Length, &banned, &[])
                .unwrap();
        assert_eq!(p.edges, vec![EdgeId(2), EdgeId(3)]);
    }

    #[test]
    fn banned_node_forces_detour() {
        let g = diamond();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[1] = true;
        banned_nodes[2] = true;
        let p = shortest_path_restricted(
            &g,
            NodeId(0),
            NodeId(3),
            CostMetric::Length,
            &[],
            &banned_nodes,
        )
        .unwrap();
        assert_eq!(p.edges, vec![EdgeId(4)]); // direct edge only
    }

    #[test]
    fn banned_source_is_unreachable() {
        let g = diamond();
        let mut banned_nodes = vec![false; g.node_count()];
        banned_nodes[0] = true;
        assert!(shortest_path_restricted(
            &g,
            NodeId(0),
            NodeId(3),
            CostMetric::Length,
            &[],
            &banned_nodes
        )
        .is_none());
    }

    #[test]
    fn distances_cover_all_nodes() {
        let g = diamond();
        let d = distances(&g, NodeId(0), CostMetric::Length);
        assert_eq!(d[0], 0.0);
        assert!((d[1] - 1.0).abs() < 1e-12);
        assert!((d[2] - 2.0).abs() < 1e-12);
        assert!((d[3] - 2.0).abs() < 1e-12);
    }
}
