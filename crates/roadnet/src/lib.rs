//! # vcs-roadnet — road-network substrate
//!
//! The paper's evaluation relies on the Google Maps API to recommend
//! alternative routes between trace-derived origin–destination pairs. This
//! crate is the from-scratch substitute:
//!
//! * [`graph::RoadGraph`] — validated directed road graphs with per-edge
//!   length, free-flow speed and a static congestion factor;
//! * [`dijkstra`] — shortest paths under length or congested-travel-time
//!   metrics, with edge/node bans;
//! * [`astar`] — goal-directed A* with admissible geometric heuristics,
//!   equivalent to Dijkstra but settling far fewer nodes;
//! * [`yen::k_shortest_paths`] — k shortest loopless paths;
//! * [`recommend::recommend_routes`] — navigation-style alternative-route
//!   recommendation with diversity and detour filters, annotated with the
//!   detour distance `h(r)` and congestion level `c(r)` the game consumes;
//! * [`city`] — deterministic synthetic city generators (grid / radial /
//!   irregular) with a centre-peaked congestion field.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
pub mod city;
pub mod dijkstra;
pub mod graph;
pub mod path;
pub mod recommend;
pub mod yen;

pub use astar::{astar_path, astar_path_with_stats, AstarStats};
pub use city::{CityConfig, CityKind};
pub use dijkstra::{distances, shortest_path, CostMetric};
pub use graph::{Edge, EdgeId, GraphError, Node, NodeId, RoadGraph};
pub use path::Path;
pub use recommend::{recommend_routes, RecommendConfig, RecommendedRoute};
pub use yen::k_shortest_paths;
