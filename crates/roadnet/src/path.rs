//! Paths through a road graph and their aggregate attributes.

use crate::graph::{EdgeId, NodeId, RoadGraph};
use serde::{Deserialize, Serialize};

/// A simple (loopless) path through a [`RoadGraph`], stored as its edge
/// sequence with cached aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Path {
    /// The edges traversed, in order.
    pub edges: Vec<EdgeId>,
    /// Total length in kilometres.
    pub length: f64,
    /// Total congested travel time in hours.
    pub travel_time: f64,
    /// Total congestion load (`Σ length_e · congestion_e`, congested km).
    pub congestion_load: f64,
}

impl Path {
    /// Builds a path from an edge sequence, computing the aggregates.
    ///
    /// # Panics
    ///
    /// Debug-asserts that consecutive edges are incident (`to == from`).
    pub fn from_edges(graph: &RoadGraph, edges: Vec<EdgeId>) -> Self {
        let mut length = 0.0;
        let mut travel_time = 0.0;
        let mut congestion_load = 0.0;
        let mut prev_to: Option<NodeId> = None;
        for &eid in &edges {
            let e = graph.edge(eid);
            if let Some(p) = prev_to {
                debug_assert_eq!(p, e.from, "edges not contiguous");
            }
            prev_to = Some(e.to);
            length += e.length;
            travel_time += e.travel_time();
            congestion_load += e.congestion_load();
        }
        Self {
            edges,
            length,
            travel_time,
            congestion_load,
        }
    }

    /// An empty path (origin equals destination).
    pub fn empty() -> Self {
        Self {
            edges: Vec::new(),
            length: 0.0,
            travel_time: 0.0,
            congestion_load: 0.0,
        }
    }

    /// The node sequence of the path, starting at `origin`.
    pub fn nodes(&self, graph: &RoadGraph, origin: NodeId) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.edges.len() + 1);
        nodes.push(origin);
        for &eid in &self.edges {
            nodes.push(graph.edge(eid).to);
        }
        nodes
    }

    /// The polyline geometry `(x, y)` of the path, starting at `origin`.
    pub fn geometry(&self, graph: &RoadGraph, origin: NodeId) -> Vec<(f64, f64)> {
        self.nodes(graph, origin)
            .into_iter()
            .map(|n| graph.node(n).pos)
            .collect()
    }

    /// Whether the path visits any node twice (i.e. is not simple). Paths
    /// produced by Dijkstra/Yen are always simple; this is a test helper.
    pub fn has_cycle(&self, graph: &RoadGraph, origin: NodeId) -> bool {
        let nodes = self.nodes(graph, origin);
        let mut seen = vec![false; graph.node_count()];
        for n in nodes {
            if seen[n.index()] {
                return true;
            }
            seen[n.index()] = true;
        }
        false
    }

    /// Length-weighted mean congestion factor along the path, in `[0, 1]`
    /// (`Σ len·cong / Σ len`); `0` for an empty path. This is the
    /// velocity-derived congestion *intensity* the paper's `c(r)` measures —
    /// unlike [`Path::congestion_load`] it does not grow with route length,
    /// so a longer detour through free-flowing streets scores lower.
    pub fn mean_congestion(&self) -> f64 {
        if self.length <= f64::EPSILON {
            0.0
        } else {
            self.congestion_load / self.length
        }
    }

    /// Fraction of this path's edges shared with `other` (Jaccard overlap of
    /// edge sets). Used to enforce diversity in route recommendation.
    pub fn edge_overlap(&self, other: &Path) -> f64 {
        if self.edges.is_empty() && other.edges.is_empty() {
            return 1.0;
        }
        let a: std::collections::HashSet<EdgeId> = self.edges.iter().copied().collect();
        let b: std::collections::HashSet<EdgeId> = other.edges.iter().copied().collect();
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        inter / union
    }

    /// Destination node, or `origin` for an empty path.
    pub fn destination(&self, graph: &RoadGraph, origin: NodeId) -> NodeId {
        self.edges.last().map_or(origin, |&e| graph.edge(e).to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::RoadGraph;

    fn line() -> RoadGraph {
        RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)],
            vec![
                (NodeId(0), NodeId(1), 1.0, 50.0, 0.0),
                (NodeId(1), NodeId(2), 2.0, 40.0, 0.5),
            ],
        )
        .unwrap()
    }

    #[test]
    fn aggregates_sum_over_edges() {
        let g = line();
        let p = Path::from_edges(&g, vec![EdgeId(0), EdgeId(1)]);
        assert!((p.length - 3.0).abs() < 1e-12);
        let expected_tt = 1.0 / 50.0 + 2.0 / (40.0 * 0.625);
        assert!((p.travel_time - expected_tt).abs() < 1e-12);
        assert!((p.congestion_load - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_sequence_and_destination() {
        let g = line();
        let p = Path::from_edges(&g, vec![EdgeId(0), EdgeId(1)]);
        assert_eq!(
            p.nodes(&g, NodeId(0)),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
        assert_eq!(p.destination(&g, NodeId(0)), NodeId(2));
        assert!(!p.has_cycle(&g, NodeId(0)));
    }

    #[test]
    fn empty_path() {
        let g = line();
        let p = Path::empty();
        assert_eq!(p.length, 0.0);
        assert_eq!(p.destination(&g, NodeId(1)), NodeId(1));
        assert_eq!(p.geometry(&g, NodeId(1)), vec![(1.0, 0.0)]);
    }

    #[test]
    fn overlap_is_jaccard() {
        let g = line();
        let p1 = Path::from_edges(&g, vec![EdgeId(0), EdgeId(1)]);
        let p2 = Path::from_edges(&g, vec![EdgeId(0)]);
        assert!((p1.edge_overlap(&p2) - 0.5).abs() < 1e-12);
        assert!((p1.edge_overlap(&p1) - 1.0).abs() < 1e-12);
        assert_eq!(Path::empty().edge_overlap(&Path::empty()), 1.0);
        assert_eq!(Path::empty().edge_overlap(&p1), 0.0);
    }

    #[test]
    fn mean_congestion_is_length_weighted() {
        let g = line();
        let p = Path::from_edges(&g, vec![EdgeId(0), EdgeId(1)]);
        // (1·0 + 2·0.5) / 3 = 1/3
        assert!((p.mean_congestion() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(Path::empty().mean_congestion(), 0.0);
    }

    #[test]
    fn geometry_follows_positions() {
        let g = line();
        let p = Path::from_edges(&g, vec![EdgeId(0)]);
        assert_eq!(p.geometry(&g, NodeId(0)), vec![(0.0, 0.0), (1.0, 0.0)]);
    }
}
