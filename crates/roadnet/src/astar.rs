//! A* shortest paths with admissible geometric heuristics.
//!
//! Functionally equivalent to [`crate::dijkstra::shortest_path`] (property-
//! tested), but goal-directed: the priority is `g + h` where `h` is a lower
//! bound on the remaining cost — straight-line distance for the
//! [`CostMetric::Length`] metric, straight-line distance at the network's
//! maximum free-flow speed for [`CostMetric::TravelTime`]. On city-scale
//! graphs A* visits a fraction of the nodes Dijkstra does, which matters for
//! the trace generator's many point-to-point queries.

use crate::dijkstra::CostMetric;
use crate::graph::{EdgeId, NodeId, RoadGraph};
use crate::path::Path;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapEntry {
    priority: f64,
    cost: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .priority
            .total_cmp(&self.priority)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Statistics of one A* run (for benchmarking the heuristic's effect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AstarStats {
    /// Nodes settled (popped with their final cost).
    pub settled: usize,
    /// Heap pushes performed.
    pub pushes: usize,
}

/// The admissible heuristic for a metric: straight-line distance, divided by
/// the network's maximum speed for the travel-time metric.
fn heuristic_factor(graph: &RoadGraph, metric: CostMetric) -> f64 {
    match metric {
        CostMetric::Length => 1.0,
        CostMetric::TravelTime => {
            // 1 / v_max is a valid lower bound on time per km; at full
            // congestion the damping keeps speeds at ≥ 25% of free flow, but
            // free flow itself is the optimistic case.
            let v_max = graph
                .edges()
                .iter()
                .map(|e| e.speed)
                .fold(f64::NEG_INFINITY, f64::max);
            if v_max.is_finite() && v_max > 0.0 {
                1.0 / v_max
            } else {
                0.0
            }
        }
    }
}

/// A* shortest path from `source` to `target` under `metric`, or `None` when
/// unreachable. Returns the same cost (and, up to ties, the same path) as
/// Dijkstra.
pub fn astar_path(
    graph: &RoadGraph,
    source: NodeId,
    target: NodeId,
    metric: CostMetric,
) -> Option<Path> {
    astar_path_with_stats(graph, source, target, metric).map(|(p, _)| p)
}

/// [`astar_path`] plus search statistics.
pub fn astar_path_with_stats(
    graph: &RoadGraph,
    source: NodeId,
    target: NodeId,
    metric: CostMetric,
) -> Option<(Path, AstarStats)> {
    if source == target {
        return Some((
            Path::empty(),
            AstarStats {
                settled: 0,
                pushes: 0,
            },
        ));
    }
    let n = graph.node_count();
    let factor = heuristic_factor(graph, metric);
    let h = |node: NodeId| factor * graph.distance(node, target);
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut settled_flags = vec![false; n];
    let mut stats = AstarStats {
        settled: 0,
        pushes: 0,
    };
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(HeapEntry {
        priority: h(source),
        cost: 0.0,
        node: source,
    });
    stats.pushes += 1;
    while let Some(HeapEntry { cost, node, .. }) = heap.pop() {
        if settled_flags[node.index()] || cost > dist[node.index()] {
            continue;
        }
        settled_flags[node.index()] = true;
        stats.settled += 1;
        if node == target {
            // Reconstruct.
            let mut edges = Vec::new();
            let mut cursor = target;
            while cursor != source {
                let eid = parent[cursor.index()].expect("settled target has a parent chain");
                edges.push(eid);
                cursor = graph.edge(eid).from;
            }
            edges.reverse();
            return Some((Path::from_edges(graph, edges), stats));
        }
        for &eid in graph.outgoing(node) {
            let edge = graph.edge(eid);
            let next_cost = cost + metric.edge_cost(edge);
            if next_cost < dist[edge.to.index()] {
                dist[edge.to.index()] = next_cost;
                parent[edge.to.index()] = Some(eid);
                heap.push(HeapEntry {
                    priority: next_cost + h(edge.to),
                    cost: next_cost,
                    node: edge.to,
                });
                stats.pushes += 1;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::{CityConfig, CityKind};
    use crate::dijkstra::shortest_path;

    fn city(seed: u64) -> RoadGraph {
        CityConfig {
            kind: CityKind::Grid {
                nx: 8,
                ny: 8,
                spacing: 1.0,
            },
            seed,
        }
        .generate()
    }

    #[test]
    fn astar_matches_dijkstra_costs() {
        for seed in 0..4u64 {
            let g = city(seed);
            for (s, t) in [(0u32, 63u32), (7, 56), (12, 50), (63, 0)] {
                for metric in [CostMetric::Length, CostMetric::TravelTime] {
                    let a = astar_path(&g, NodeId(s), NodeId(t), metric).unwrap();
                    let d = shortest_path(&g, NodeId(s), NodeId(t), metric).unwrap();
                    let (ca, cd) = match metric {
                        CostMetric::Length => (a.length, d.length),
                        CostMetric::TravelTime => (a.travel_time, d.travel_time),
                    };
                    assert!(
                        (ca - cd).abs() < 1e-9,
                        "seed {seed} {s}->{t} {metric:?}: A* {ca} vs Dijkstra {cd}"
                    );
                }
            }
        }
    }

    #[test]
    fn astar_settles_fewer_nodes() {
        let g = city(3);
        // A corner-to-adjacent-corner query where goal direction helps.
        let (_, stats) =
            astar_path_with_stats(&g, NodeId(0), NodeId(7), CostMetric::Length).unwrap();
        assert!(
            stats.settled < g.node_count(),
            "A* settled every node ({})",
            stats.settled
        );
    }

    #[test]
    fn same_node_is_empty_path() {
        let g = city(1);
        let (p, stats) =
            astar_path_with_stats(&g, NodeId(5), NodeId(5), CostMetric::Length).unwrap();
        assert!(p.edges.is_empty());
        assert_eq!(stats.settled, 0);
    }

    #[test]
    fn unreachable_returns_none() {
        let g = RoadGraph::new(
            vec![(0.0, 0.0), (1.0, 0.0)],
            vec![(NodeId(0), NodeId(1), 1.0, 50.0, 0.0)],
        )
        .unwrap();
        assert!(astar_path(&g, NodeId(1), NodeId(0), CostMetric::Length).is_none());
    }

    #[test]
    fn heuristic_is_admissible_for_time() {
        // The factor uses the max speed, so h never exceeds the true cost.
        let g = city(9);
        let factor = heuristic_factor(&g, CostMetric::TravelTime);
        let d = shortest_path(&g, NodeId(0), NodeId(63), CostMetric::TravelTime).unwrap();
        let h0 = factor * g.distance(NodeId(0), NodeId(63));
        assert!(h0 <= d.travel_time + 1e-12);
    }
}
