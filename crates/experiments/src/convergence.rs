//! Convergence experiments: Fig. 3 (profit trajectories), Fig. 4/5 (slots vs
//! users/tasks), Fig. 6 (potential & total profit trajectories) and Table 3
//! (PUU batch size vs overlap ratio).

use crate::common::{build_game, equilibrate, replicate_mean, tags};
use crate::context::Ctx;
use crate::report::{fmt3, Report};
use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig};
use vcs_core::response::is_nash;
use vcs_metrics::{overlap_ratio, replicate};
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

/// Fig. 3 settings: 15 users observed over 20 decision slots.
const FIG3_USERS: usize = 15;
const FIG3_TASKS: usize = 30;
const FIG3_SLOTS: usize = 20;

/// Fig. 3: per-user profit vs decision slot under DGRN, one report per
/// dataset (concatenated; the dataset is the first column).
pub fn fig3(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig3",
        "User profit vs. decision slot (15 users, DGRN; profits stabilize at Nash equilibrium)",
        &["dataset", "slot", "min", "mean", "max", "updated"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        let seed = replicate_seed(ctx.base_seed, tags::FIG3, 0);
        let game = build_game(
            &pool,
            FIG3_USERS,
            FIG3_TASKS,
            seed,
            ScenarioParams::default(),
        );
        let mut cfg = RunConfig::with_seed(seed);
        cfg.record_user_profits = true;
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &cfg);
        let trace = out.user_profit_trace.as_ref().expect("recording enabled");
        for slot in 0..=FIG3_SLOTS {
            // Hold the final state once converged (paper plots 20 slots).
            let row = &trace[slot.min(trace.len() - 1)];
            let min = row.iter().copied().fold(f64::INFINITY, f64::min);
            let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = row.iter().sum::<f64>() / row.len() as f64;
            let updated = if slot < out.slot_trace.len() {
                out.slot_trace[slot].updated_users
            } else {
                0
            };
            report.push_row(vec![
                dataset.name().to_string(),
                slot.to_string(),
                fmt3(min),
                fmt3(mean),
                fmt3(max),
                updated.to_string(),
            ]);
        }
        report.note(format!(
            "{}: converged after {} slots; equilibrium verified: {}",
            dataset.name(),
            out.slots,
            is_nash(&game, &out.profile)
        ));
    }
    report
}

const SLOTS_ALGOS: [DistributedAlgorithm; 5] = [
    DistributedAlgorithm::Dgrn,
    DistributedAlgorithm::Brun,
    DistributedAlgorithm::Buau,
    DistributedAlgorithm::Bats,
    DistributedAlgorithm::Muun,
];

fn slots_sweep(
    ctx: &Ctx,
    id: &str,
    title: &str,
    tag: u64,
    sweep: &[(usize, usize)], // (n_users, n_tasks) pairs
    x_label: &str,
    x_of: impl Fn(&(usize, usize)) -> usize,
) -> Report {
    let mut columns = vec!["dataset".to_string(), x_label.to_string()];
    columns.extend(SLOTS_ALGOS.iter().map(|a| a.name().to_string()));
    let mut report = Report {
        id: id.to_string(),
        title: title.to_string(),
        columns,
        rows: Vec::new(),
        notes: Vec::new(),
    };
    for dataset in Dataset::ALL {
        for point in sweep {
            let (n_users, n_tasks) = *point;
            let mut row = vec![dataset.name().to_string(), x_of(point).to_string()];
            for algo in SLOTS_ALGOS {
                let mean = replicate_mean(
                    ctx,
                    dataset,
                    tag,
                    n_users,
                    n_tasks,
                    ScenarioParams::default(),
                    |game, seed| equilibrate(game, algo, seed).slots as f64,
                );
                row.push(fmt3(mean));
            }
            report.push_row(row);
        }
    }
    report.note(format!("{} repetitions per point", ctx.reps));
    report
}

/// Fig. 4: decision slots to convergence vs user number (20–100, 60 tasks).
pub fn fig4(ctx: &Ctx) -> Report {
    let sweep: Vec<(usize, usize)> = [20, 40, 60, 80, 100].map(|u| (u, 60)).to_vec();
    slots_sweep(
        ctx,
        "fig4",
        "Decision slots vs. user number (paper ordering: MUUN<BUAU<DGRN<BRUN<BATS)",
        tags::FIG4,
        &sweep,
        "users",
        |p| p.0,
    )
}

/// Fig. 5: decision slots to convergence vs task number (20–100, 20 users).
pub fn fig5(ctx: &Ctx) -> Report {
    let sweep: Vec<(usize, usize)> = [20, 40, 60, 80, 100].map(|t| (20, t)).to_vec();
    slots_sweep(
        ctx,
        "fig5",
        "Decision slots vs. task number (paper ordering: MUUN<BUAU<DGRN<BRUN<BATS)",
        tags::FIG5,
        &sweep,
        "tasks",
        |p| p.1,
    )
}

/// Fig. 6: potential-function value and total profit vs decision slot under
/// DGRN (single seeded run per dataset, 35 slots as in the paper).
pub fn fig6(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig6",
        "Potential function value and total profit vs. decision slot (DGRN)",
        &["dataset", "slot", "potential", "total profit"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        let seed = replicate_seed(ctx.base_seed, tags::FIG6, 1);
        let game = build_game(&pool, 30, 40, seed, ScenarioParams::default());
        let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
        for slot in 0..=35usize {
            let entry = &out.slot_trace[slot.min(out.slot_trace.len() - 1)];
            report.push_row(vec![
                dataset.name().to_string(),
                slot.to_string(),
                fmt3(entry.potential),
                fmt3(entry.total_profit),
            ]);
        }
        report.note(format!(
            "{}: potential rises monotonically and plateaus at slot {} (Nash)",
            dataset.name(),
            out.slots
        ));
    }
    report
}

/// Table 3: mean number of users selected per PUU slot vs overlap ratio,
/// Shanghai, tasks 50–90.
pub fn table3(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "table3",
        "Selected user number vs. overlap ratio (MUUN, Shanghai)",
        &["total task #", "overlap ratio", "selected user #"],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    for (i, n_tasks) in [50usize, 60, 70, 80, 90].into_iter().enumerate() {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, tags::TABLE3 + i as u64, rep);
            let game = build_game(&pool, 40, n_tasks, seed, ScenarioParams::default());
            let out = equilibrate(&game, DistributedAlgorithm::Muun, seed);
            (
                overlap_ratio(&game, &out.profile),
                out.mean_updates_per_slot(),
            )
        });
        let n = rows.len() as f64;
        let overlap: f64 = rows.iter().map(|r| r.0).sum::<f64>() / n;
        let selected: f64 = rows.iter().map(|r| r.1).sum::<f64>() / n;
        report.push_row(vec![n_tasks.to_string(), fmt3(overlap), fmt3(selected)]);
    }
    report.note(format!("40 users; {} repetitions per row", ctx.reps));
    report.note("paper: selected user # decreases as the overlap ratio grows");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> Ctx {
        Ctx::for_tests()
    }

    #[test]
    fn fig3_rows_cover_all_datasets_and_slots() {
        let r = fig3(&tiny_ctx());
        assert_eq!(r.rows.len(), 3 * (FIG3_SLOTS + 1));
        assert!(r
            .notes
            .iter()
            .all(|n| n.contains("equilibrium verified: true")));
    }

    #[test]
    fn fig4_ordering_muun_fastest() {
        let ctx = tiny_ctx();
        // Shrink the sweep for test speed: reuse fig5's machinery at one point.
        let sweep = [(30usize, 40usize)];
        let r = slots_sweep(&ctx, "t", "t", 99, &sweep, "users", |p| p.0);
        // Columns: dataset, users, DGRN, BRUN, BUAU, BATS, MUUN.
        for row in &r.rows {
            let dgrn: f64 = row[2].parse().unwrap();
            let bats: f64 = row[5].parse().unwrap();
            let muun: f64 = row[6].parse().unwrap();
            assert!(muun <= dgrn + 1e-9, "MUUN slower than DGRN: {row:?}");
            assert!(dgrn <= bats + 1e-9, "DGRN slower than BATS: {row:?}");
        }
    }

    #[test]
    fn fig6_potential_monotone() {
        let r = fig6(&tiny_ctx());
        for dataset_rows in r.rows.chunks(36) {
            let potentials: Vec<f64> = dataset_rows
                .iter()
                .map(|row| row[2].parse().unwrap())
                .collect();
            for w in potentials.windows(2) {
                assert!(w[1] >= w[0] - 1e-6, "potential decreased: {w:?}");
            }
        }
    }

    #[test]
    fn table3_has_five_rows() {
        let r = table3(&tiny_ctx());
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            let selected: f64 = row[2].parse().unwrap();
            assert!(selected >= 1.0, "PUU selects at least one user per slot");
        }
    }
}
