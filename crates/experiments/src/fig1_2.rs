//! Fig. 1 and Fig. 2: the paper's illustrative instances, reproduced exactly.

use crate::report::{fmt1, fmt3, Report};
use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig};
use vcs_core::examples::{fig1_instance, fig1_profiles, fig2_instance, FIG2_ROWS, FIG_ALPHA};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::response::is_nash;
use vcs_core::Profile;

/// Fig. 1: the three candidate solutions and their (unscaled) profits plus
/// equilibrium classification, then a DGRN run confirming the dynamics land
/// on the distributed equilibrium.
pub fn fig1() -> Report {
    let game = fig1_instance();
    let mut report = Report::new(
        "fig1",
        "Illustrative example: approach, total profit, equilibrium (paper: 6 / 11 / 12)",
        &["approach", "u1", "u2", "u3", "total", "equilibrium"],
    );
    let named: [(&str, &[RouteId; 3]); 3] = [
        ("Maximum reward", &fig1_profiles::MAXIMUM_REWARD),
        (
            "Distributed equilibrium",
            &fig1_profiles::DISTRIBUTED_EQUILIBRIUM,
        ),
        ("Centralized optimal", &fig1_profiles::CENTRALIZED_OPTIMAL),
    ];
    for (name, choices) in named {
        let profile = Profile::new(&game, choices.to_vec());
        let unscale = 1.0 / FIG_ALPHA;
        let profits: Vec<f64> = (0..3)
            .map(|i| profile.profit(&game, UserId(i)) * unscale)
            .collect();
        report.push_row(vec![
            name.to_string(),
            fmt1(profits[0]),
            fmt1(profits[1]),
            fmt1(profits[2]),
            fmt1(profits.iter().sum()),
            if is_nash(&game, &profile) {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    // Confirm the dynamics find the equilibrium from random starts.
    let mut all_equal = true;
    for seed in 0..20 {
        let out = run_distributed(
            &game,
            DistributedAlgorithm::Dgrn,
            &RunConfig::with_seed(seed),
        );
        all_equal &= out.profile.choices() == fig1_profiles::DISTRIBUTED_EQUILIBRIUM.as_slice();
    }
    report.note(format!(
        "DGRN from 20 random starts always reaches the distributed equilibrium: {all_equal}"
    ));
    report
}

/// Fig. 2: platform-weight influence on a 2-user toy — task count, total
/// detour and total congestion at the best-response equilibrium for three
/// `(φ, θ)` settings.
pub fn fig2() -> Report {
    let mut report = Report::new(
        "fig2",
        "Influence of φ and θ (paper: 2/2/4 tasks-detour-congestion; 1/0/6; 1/4/2)",
        &["phi", "theta", "solution", "task #", "detour", "congestion"],
    );
    for (phi, theta) in FIG2_ROWS {
        let game = fig2_instance(phi, theta);
        // Deterministic best-response sweep to equilibrium.
        let mut profile = Profile::all_first(&game);
        for _ in 0..64 {
            let mut moved = false;
            for i in 0..2 {
                let user = UserId(i);
                let br = vcs_core::best_route_set(&game, &profile, user);
                if let Some(route) = br.first() {
                    profile.apply_move(&game, user, route);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        assert!(is_nash(&game, &profile), "Fig. 2 toy must equilibrate");
        let task_count = profile.covered_tasks();
        let detour: f64 = (0..2)
            .map(|i| game.user(UserId(i)).routes[profile.choice(UserId(i)).index()].detour)
            .sum();
        let congestion: f64 = (0..2)
            .map(|i| game.user(UserId(i)).routes[profile.choice(UserId(i)).index()].congestion)
            .sum();
        let solution = format!(
            "u1:r{} u2:r{}",
            profile.choice(UserId(0)).0 + 1,
            profile.choice(UserId(1)).0 + 1
        );
        report.push_row(vec![
            fmt3(phi),
            fmt3(theta),
            solution,
            task_count.to_string(),
            fmt1(detour),
            fmt1(congestion),
        ]);
    }
    report.note("φ≈1 drives both users to the zero-detour route; θ≈1 to the low-congestion route");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_report_matches_paper_totals() {
        let r = fig1();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][4], "6.0");
        assert_eq!(r.rows[1][4], "11.0");
        assert_eq!(r.rows[2][4], "12.0");
        assert_eq!(r.rows[0][5], "no");
        assert_eq!(r.rows[1][5], "yes");
        assert_eq!(r.rows[2][5], "no");
        assert!(r.notes[0].ends_with("true"));
    }

    #[test]
    fn fig2_report_matches_paper_pattern() {
        let r = fig2();
        assert_eq!(r.rows.len(), 3);
        // Small weights: both tasks covered.
        assert_eq!(r.rows[0][3], "2");
        // Large φ: both on r1 → 1 task, zero detour, congestion 6.
        assert_eq!(r.rows[1][3], "1");
        assert_eq!(r.rows[1][4], "0.0");
        assert_eq!(r.rows[1][5], "6.0");
        // Large θ: both on r2 → 1 task, detour 4, congestion 2.
        assert_eq!(r.rows[2][3], "1");
        assert_eq!(r.rows[2][4], "4.0");
        assert_eq!(r.rows[2][5], "2.0");
    }
}
