//! Fig. 13: qualitative map presentation — renders the synthetic city, the
//! task locations and two users' recommended/selected routes as SVG files,
//! standing in for the paper's Google-Maps screenshots.

use crate::common::{build_game, equilibrate, tags};
use crate::context::Ctx;
use crate::report::Report;
use std::fmt::Write as _;
use vcs_algorithms::DistributedAlgorithm;
use vcs_core::ids::UserId;
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

/// Colours for the non-selected recommended routes of the two showcased
/// users.
const ALT_COLOURS: [&str; 2] = ["#6f86ff", "#ff9e6f"];
/// Colour of the selected routes (the paper marks them green).
const SELECTED_COLOUR: &str = "#2ca02c";

/// Renders one dataset's showcase to an SVG string.
pub fn render_dataset(ctx: &Ctx, dataset: Dataset) -> String {
    let pool = ctx.pool(dataset);
    let seed = replicate_seed(ctx.base_seed, tags::FIG13, dataset as u64);
    let game = build_game(&pool, 6, 25, seed, ScenarioParams::default());
    let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
    // Bounding box of the city.
    let graph = &pool.graph;
    let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
    let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
    for n in graph.nodes() {
        min_x = min_x.min(n.pos.0);
        min_y = min_y.min(n.pos.1);
        max_x = max_x.max(n.pos.0);
        max_y = max_y.max(n.pos.1);
    }
    let scale = 60.0;
    let pad = 20.0;
    let sx = |x: f64| pad + (x - min_x) * scale;
    let sy = |y: f64| pad + (max_y - y) * scale; // flip y for SVG
    let width = pad * 2.0 + (max_x - min_x) * scale;
    let height = pad * 2.0 + (max_y - min_y) * scale;

    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0}" height="{height:.0}" viewBox="0 0 {width:.0} {height:.0}">"#
    );
    let _ = writeln!(
        svg,
        r##"<rect width="100%" height="100%" fill="#fbfbf7"/>"##
    );
    let _ = writeln!(svg, "<!-- dataset: {} -->", dataset.name());
    // Street network, congestion encoded as stroke darkness.
    for e in graph.edges() {
        let a = graph.node(e.from).pos;
        let b = graph.node(e.to).pos;
        let grey = 210.0 - 110.0 * e.congestion;
        let _ = writeln!(
            svg,
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="rgb({g:.0},{g:.0},{g:.0})" stroke-width="1.5"/>"#,
            sx(a.0),
            sy(a.1),
            sx(b.0),
            sy(b.1),
            g = grey,
        );
    }
    // Two showcased users: all recommended routes faint, selected bold green.
    for (slot, user_idx) in [0usize, 1].into_iter().enumerate() {
        let user = &game.users()[user_idx];
        let selected = out.profile.choice(UserId::from_index(user_idx));
        for route in &user.routes {
            let Some(geom) = route.geometry.as_ref() else {
                continue;
            };
            let points: Vec<String> = geom
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                .collect();
            let is_selected = route.id == selected;
            let (colour, width, opacity) = if is_selected {
                (SELECTED_COLOUR, 4.0, 0.95)
            } else {
                (ALT_COLOURS[slot], 2.5, 0.6)
            };
            let _ = writeln!(
                svg,
                r#"<polyline points="{}" fill="none" stroke="{colour}" stroke-width="{width}" stroke-opacity="{opacity}"/>"#,
                points.join(" "),
            );
        }
    }
    // Tasks: circles sized by base reward, covered ones filled.
    for task in game.tasks() {
        let (x, y) = task.location.expect("scenario tasks have locations");
        let covered = out.profile.participants(task.id) > 0;
        let r = 2.0 + (task.base_reward - 10.0) * 0.25;
        let fill = if covered { "#d62728" } else { "none" };
        let _ = writeln!(
            svg,
            r##"<circle cx="{:.1}" cy="{:.1}" r="{r:.1}" fill="{fill}" stroke="#d62728" stroke-width="1"/>"##,
            sx(x),
            sy(y),
        );
    }
    let _ = writeln!(svg, "</svg>");
    svg
}

/// Fig. 13 runner: renders all three datasets; writes SVGs when an output
/// directory is configured.
pub fn fig13(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig13",
        "Qualitative presentation: city, tasks and the selected (green) routes per dataset",
        &["dataset", "svg bytes", "file"],
    );
    for dataset in Dataset::ALL {
        let svg = render_dataset(ctx, dataset);
        let file = if let Some(dir) = &ctx.out_dir {
            let path = dir.join(format!("fig13_{}.svg", dataset.name().to_lowercase()));
            std::fs::create_dir_all(dir).expect("create output directory");
            std::fs::write(&path, &svg).expect("write SVG");
            path.display().to_string()
        } else {
            "(not written: no --out dir)".to_string()
        };
        report.push_row(vec![
            dataset.name().to_string(),
            svg.len().to_string(),
            file,
        ]);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_is_well_formed_and_nonempty() {
        let ctx = Ctx::for_tests();
        let svg = render_dataset(&ctx, Dataset::Shanghai);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert!(svg.contains("polyline"), "routes missing");
        assert!(svg.contains("circle"), "tasks missing");
        assert!(svg.contains(SELECTED_COLOUR), "selected route missing");
    }

    #[test]
    fn fig13_reports_all_datasets() {
        let ctx = Ctx::for_tests();
        let r = fig13(&ctx);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let bytes: usize = row[1].parse().unwrap();
            assert!(bytes > 1000, "suspiciously small SVG: {row:?}");
        }
    }
}
