//! Ablation studies beyond the paper's figures (DESIGN.md §8):
//!
//! * `ablation_routes` — how the recommended-route budget (1–5, Table 2's
//!   range) shapes profit, coverage and convergence;
//! * `ablation_mu` — how the reward-increment weight `μ_k` (Eq. 1) shapes
//!   overlap and convergence: larger `μ` softens the sharing penalty, so
//!   users tolerate more co-location;
//! * `ablation_response` — best response vs better response under both
//!   schedulers (completing the paper's DGRN/BRUN comparison with the
//!   missing PUU×better-response cell).

use crate::common::{build_game, equilibrate};
use crate::context::Ctx;
use crate::report::{fmt3, Report};
use vcs_algorithms::{run_anneal, run_rrn, AnnealConfig, DistributedAlgorithm};
use vcs_metrics::{coverage, overlap_ratio, replicate};
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

const USERS: usize = 20;
const TASKS: usize = 40;

/// Extra tags for the ablations (outside the paper's figure numbering).
const TAG_ROUTES: u64 = 201;
const TAG_MU: u64 = 202;
const TAG_RESPONSE: u64 = 203;
const TAG_SCALE: u64 = 205;

/// Route-budget ablation: sweep `max_routes` 1..=5.
pub fn ablation_routes(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "ablation_routes",
        "Ablation: recommended-route budget vs profit/coverage/slots (DGRN, Shanghai)",
        &["max routes", "total profit", "coverage", "slots"],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    for max_routes in 1..=5usize {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, TAG_ROUTES + max_routes as u64, rep);
            let params = ScenarioParams {
                max_routes,
                ..ScenarioParams::default()
            };
            let game = build_game(&pool, USERS, TASKS, seed, params);
            let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
            (
                out.profile.total_profit(&game),
                coverage(&game, &out.profile),
                out.slots as f64,
            )
        });
        let n = rows.len() as f64;
        report.push_row(vec![
            max_routes.to_string(),
            fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
            fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
            fmt3(rows.iter().map(|r| r.2).sum::<f64>() / n),
        ]);
    }
    report.note("a single route leaves no strategic freedom: zero slots, lowest profit");
    report
}

/// Reward-increment ablation: fix every task's `μ_k` to a sweep value.
pub fn ablation_mu(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "ablation_mu",
        "Ablation: reward increment μ vs overlap/slots (DGRN, Shanghai)",
        &["mu", "overlap ratio", "slots", "total profit"],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    for (i, mu) in [0.0f64, 0.25, 0.5, 0.75, 1.0].into_iter().enumerate() {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, TAG_MU + i as u64, rep);
            let params = ScenarioParams {
                mu_range: (mu, mu),
                ..ScenarioParams::default()
            };
            let game = build_game(&pool, USERS, TASKS, seed, params);
            let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
            (
                overlap_ratio(&game, &out.profile),
                out.slots as f64,
                out.profile.total_profit(&game),
            )
        });
        let n = rows.len() as f64;
        report.push_row(vec![
            fmt3(mu),
            fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
            fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
            fmt3(rows.iter().map(|r| r.2).sum::<f64>() / n),
        ]);
    }
    report.note("larger μ raises the reward of shared tasks, so equilibria tolerate more overlap");
    report
}

/// Response-rule ablation: best vs better response, single vs parallel
/// scheduler (the four cells spanned by DGRN/BRUN/MUUN plus BRUN-like
/// randomness under PUU is approximated by BRUN with more samples).
pub fn ablation_response(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "ablation_response",
        "Ablation: response rule × scheduler (slots and final profit, Shanghai)",
        &[
            "algorithm",
            "response",
            "scheduler",
            "slots",
            "total profit",
        ],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    let cells: [(DistributedAlgorithm, &str, &str); 4] = [
        (DistributedAlgorithm::Dgrn, "best", "SUU"),
        (DistributedAlgorithm::Brun, "better", "SUU"),
        (DistributedAlgorithm::Muun, "best", "PUU"),
        (DistributedAlgorithm::Buau, "best", "max-τ"),
    ];
    for (algo, response, scheduler) in cells {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, TAG_RESPONSE, rep);
            let game = build_game(&pool, USERS, TASKS, seed, ScenarioParams::default());
            let out = equilibrate(&game, algo, seed);
            (out.slots as f64, out.profile.total_profit(&game))
        });
        let n = rows.len() as f64;
        report.push_row(vec![
            algo.name().to_string(),
            response.to_string(),
            scheduler.to_string(),
            fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
            fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
        ]);
    }
    report.note("same game replicates across cells: differences are purely the update rule");
    report
}

/// Scale ablation: the Fig. 7 comparison extended past CORN's reach using
/// the simulated-annealing centralized heuristic (Theorem 1 makes the exact
/// optimum infeasible at these sizes).
pub fn ablation_scale(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "ablation_scale",
        "Ablation: DGRN vs centralized annealing vs RRN at large scales (Shanghai)",
        &["users", "DGRN", "ANNEAL", "RRN", "DGRN/ANNEAL"],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    for n_users in [20usize, 40, 60] {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, TAG_SCALE + n_users as u64, rep);
            let game = build_game(&pool, n_users, TASKS, seed, ScenarioParams::default());
            let dgrn = equilibrate(&game, DistributedAlgorithm::Dgrn, seed)
                .profile
                .total_profit(&game);
            let anneal = run_anneal(&game, &AnnealConfig::with_seed(seed)).total_profit;
            let rrn = run_rrn(&game, seed).total_profit(&game);
            (dgrn, anneal, rrn)
        });
        let n = rows.len() as f64;
        let dgrn = rows.iter().map(|r| r.0).sum::<f64>() / n;
        let anneal = rows.iter().map(|r| r.1).sum::<f64>() / n;
        let rrn = rows.iter().map(|r| r.2).sum::<f64>() / n;
        report.push_row(vec![
            n_users.to_string(),
            fmt3(dgrn),
            fmt3(anneal),
            fmt3(rrn),
            fmt3(dgrn / anneal),
        ]);
    }
    report.note(format!("{TASKS} tasks; {} repetitions per point", ctx.reps));
    report.note("the equilibrium stays close to the centralized heuristic even at 60 users");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_budget_one_means_no_choices() {
        let ctx = Ctx::for_tests();
        let r = ablation_routes(&ctx);
        assert_eq!(r.rows.len(), 5);
        // With a single route there is nothing to update.
        let slots_one: f64 = r.rows[0][3].parse().unwrap();
        assert_eq!(slots_one, 0.0);
        // More routes → more coverage (weak, aggregate check).
        let cov_one: f64 = r.rows[0][2].parse().unwrap();
        let cov_five: f64 = r.rows[4][2].parse().unwrap();
        assert!(cov_five >= cov_one - 0.05);
    }

    #[test]
    fn response_cells_share_games() {
        let ctx = Ctx::for_tests();
        let r = ablation_response(&ctx);
        assert_eq!(r.rows.len(), 4);
        let slots: Vec<f64> = r.rows.iter().map(|row| row[3].parse().unwrap()).collect();
        // MUUN (row 2) is the fastest of the four on shared replicates.
        assert!(slots[2] <= slots[0] + 1e-9);
        assert!(slots[2] <= slots[1] + 1e-9);
    }

    #[test]
    fn scale_ablation_ordering() {
        let ctx = Ctx::for_tests();
        let r = ablation_scale(&ctx);
        assert_eq!(r.rows.len(), 3);
        for row in &r.rows {
            let dgrn: f64 = row[1].parse().unwrap();
            let rrn: f64 = row[3].parse().unwrap();
            assert!(dgrn > rrn, "DGRN below RRN: {row:?}");
        }
    }

    #[test]
    fn mu_sweep_rows_complete() {
        let ctx = Ctx::for_tests();
        let r = ablation_mu(&ctx);
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            let overlap: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0).contains(&overlap));
        }
    }
}
