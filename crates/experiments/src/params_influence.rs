//! Parameter-influence experiments: Fig. 12 (platform weights φ, θ) and
//! Table 5 (user weights α_i, β_i, γ_i).

use crate::common::{build_game, equilibrate, tags};
use crate::context::Ctx;
use crate::report::{fmt3, Report};
use vcs_algorithms::DistributedAlgorithm;
use vcs_core::ids::UserId;
use vcs_core::UserPrefs;
use vcs_metrics::{
    average_reward, replicate, total_congestion, total_detour, user_congestion, user_detour,
    user_reward,
};
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

const USERS: usize = 20;
const TASKS: usize = 40;

/// Fig. 12: sweep `(φ, θ)` on Shanghai and record average reward, total
/// detour distance and total congestion level at the DGRN equilibrium.
pub fn fig12(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig12",
        "Influence of φ and θ (Shanghai): avg reward falls, detour falls with φ, congestion falls with θ",
        &["phi", "theta", "avg reward", "detour", "congestion"],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    let grid = [0.05, 0.2, 0.4, 0.6, 0.8];
    for &phi in grid.iter() {
        for &theta in grid.iter() {
            let rows = replicate(ctx.reps, |rep| {
                // Common random numbers: every (φ, θ) cell replays the same
                // replicate games, so the sweep isolates the platform knobs.
                let seed = replicate_seed(ctx.base_seed, tags::FIG12, rep);
                let params = ScenarioParams::with_platform(phi, theta);
                let game = build_game(&pool, USERS, TASKS, seed, params);
                let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
                (
                    average_reward(&game, &out.profile),
                    total_detour(&game, &out.profile),
                    total_congestion(&game, &out.profile),
                )
            });
            let n = rows.len() as f64;
            report.push_row(vec![
                fmt3(phi),
                fmt3(theta),
                fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.2).sum::<f64>() / n),
            ]);
        }
    }
    report.note(format!(
        "{USERS} users, {TASKS} tasks, {} repetitions per cell",
        ctx.reps
    ));
    report
}

/// Which preference weight Table 5 varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Varied {
    Alpha,
    Beta,
    Gamma,
}

impl Varied {
    fn prefs(self, value: f64) -> UserPrefs {
        match self {
            Varied::Alpha => UserPrefs::new(value, 0.5, 0.5),
            Varied::Beta => UserPrefs::new(0.5, value, 0.5),
            Varied::Gamma => UserPrefs::new(0.5, 0.5, value),
        }
    }
}

/// Table 5: vary one user's `α_i` / `β_i` / `γ_i` from 0.1 to 0.8 and record
/// that user's reward / detour / congestion at the DGRN equilibrium.
pub fn table5(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "table5",
        "Influence of the user parameters (Shanghai, observed user 0)",
        &[
            "weight",
            "alpha: reward",
            "beta: detour",
            "gamma: congestion",
        ],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    let observed = UserId(0);
    for step in 0..8usize {
        let value = 0.1 * (step + 1) as f64;
        let mut cells = vec![fmt3(value)];
        for varied in [Varied::Alpha, Varied::Beta, Varied::Gamma] {
            let vals = replicate(ctx.reps, |rep| {
                // Common random numbers across all weight levels.
                let seed = replicate_seed(ctx.base_seed, tags::TABLE5, rep);
                let game = build_game(&pool, USERS, TASKS, seed, ScenarioParams::default())
                    .with_user_prefs(observed, varied.prefs(value))
                    .expect("Table 5 weights are within bounds");
                let out = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
                match varied {
                    Varied::Alpha => user_reward(&game, &out.profile, observed),
                    Varied::Beta => user_detour(&game, &out.profile, observed),
                    Varied::Gamma => user_congestion(&game, &out.profile, observed),
                }
            });
            cells.push(fmt3(vals.iter().sum::<f64>() / vals.len() as f64));
        }
        report.push_row(cells);
    }
    report.note(format!(
        "{USERS} users, {TASKS} tasks, {} repetitions per cell",
        ctx.reps
    ));
    report.note("paper: reward grows with α; detour shrinks with β; congestion shrinks with γ");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_grid_complete() {
        let ctx = Ctx::for_tests();
        let r = fig12(&ctx);
        assert_eq!(r.rows.len(), 25);
        for row in &r.rows {
            for col in 2..5 {
                let v: f64 = row[col].parse().unwrap();
                assert!(v >= 0.0, "negative metric: {row:?}");
            }
        }
    }

    #[test]
    fn fig12_detour_falls_with_phi() {
        // Aggregate over θ: the φ = 0.05 band must show at least as much
        // detour as the φ = 0.8 band (rows are φ-major, 5 θ-cells per band).
        let ctx = Ctx::for_tests();
        let r = fig12(&ctx);
        let band_mean = |rows: &[Vec<String>]| {
            rows.iter()
                .map(|row| row[3].parse::<f64>().unwrap())
                .sum::<f64>()
                / rows.len() as f64
        };
        let low_phi = band_mean(&r.rows[0..5]);
        let high_phi = band_mean(&r.rows[20..25]);
        assert!(
            high_phi <= low_phi + 0.5,
            "detour should not grow with φ: {low_phi} -> {high_phi}"
        );
    }

    #[test]
    fn table5_has_eight_rows() {
        let ctx = Ctx::for_tests();
        let r = table5(&ctx);
        assert_eq!(r.rows.len(), 8);
    }
}
