//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--reps N] [--seed S] [--out DIR] [--threads T] <experiment>... | all | list
//! ```
//!
//! Each experiment prints an aligned table to stdout; with `--out DIR` the
//! table is also written as `DIR/<id>.csv` (and Fig. 13 writes SVGs).
//! `--threads T` (or `VCS_THREADS=T`) pins the rayon pool width; `1` forces
//! the engine's strictly sequential paths, `0`/unset keeps the machine
//! default.

use std::path::PathBuf;
use std::process::ExitCode;
use vcs_experiments::{run_experiment, Ctx, ALL_ABLATIONS, ALL_EXPERIMENTS};

struct Args {
    reps: usize,
    seed: u64,
    out: Option<PathBuf>,
    threads: Option<usize>,
    experiments: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        reps: 500,
        seed: 20210809,
        out: None,
        threads: None,
        experiments: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--reps" => {
                let v = it.next().ok_or("--reps needs a value")?;
                args.reps = v.parse().map_err(|_| format!("bad --reps value {v}"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed value {v}"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(PathBuf::from(v));
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad --threads value {v}"))?);
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: repro [--reps N] [--seed S] [--out DIR] [--threads T] <experiment>... | all | list\n\
                     experiments: {} {}",
                    ALL_EXPERIMENTS.join(" "),
                    ALL_ABLATIONS.join(" ")
                ));
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.experiments.push(other.to_string()),
        }
    }
    if args.experiments.is_empty() {
        return Err("no experiment given; try `repro list`".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Pin the pool before any experiment touches the engine: `--threads`
    // wins over `VCS_THREADS`, `0`/unset keeps the machine default.
    let width = args
        .threads
        .filter(|&n| n > 0)
        .or_else(|| {
            std::env::var("VCS_THREADS")
                .ok()
                .and_then(|raw| raw.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        })
        .unwrap_or(0);
    rayon::ThreadPoolBuilder::new()
        .num_threads(width)
        .build_global()
        .expect("configuring the global pool width cannot fail");
    if args.experiments.iter().any(|e| e == "list") {
        for id in ALL_EXPERIMENTS.iter().chain(ALL_ABLATIONS.iter()) {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let ids: Vec<String> = if args.experiments.iter().any(|e| e == "all") {
        ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect()
    } else {
        args.experiments.clone()
    };
    let ctx = Ctx::new(args.reps, args.seed, args.out.clone());
    let started = std::time::Instant::now();
    for id in &ids {
        let t0 = std::time::Instant::now();
        let Some(report) = run_experiment(&ctx, id) else {
            eprintln!("unknown experiment `{id}`; try `repro list`");
            return ExitCode::FAILURE;
        };
        print!("{}", report.to_table());
        println!("# elapsed: {:.1}s", t0.elapsed().as_secs_f64());
        println!();
        if let Some(dir) = &ctx.out_dir {
            if let Err(err) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(format!("{id}.csv")), report.to_csv()))
            {
                eprintln!("failed to write CSV for {id}: {err}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "ran {} experiment(s) with {} repetitions in {:.1}s",
        ids.len(),
        args.reps,
        started.elapsed().as_secs_f64()
    );
    ExitCode::SUCCESS
}
