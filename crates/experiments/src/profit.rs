//! Profit/coverage/reward/fairness experiments: Fig. 7–11 and Table 4.

use crate::common::{build_game, equilibrate, replicate_means, tags};
use crate::context::Ctx;
use crate::report::{fmt3, Report};
use vcs_algorithms::{run_corn, run_rrn, DistributedAlgorithm};
use vcs_core::poa::{poa_lower_bound, special_case_optimal, SpecialCaseGame, SpecialCaseSpec};
use vcs_metrics::{average_reward, coverage, profile_jain_index, replicate};
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

/// Fewer tasks for the CORN-involving experiments keeps the exact search at
/// the paper's scale.
const CORN_TASKS: usize = 20;

/// Fig. 7: total profit vs user number (10–14) for DGRN, CORN, RRN.
pub fn fig7(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig7",
        "Total profit vs. user number (paper ordering: RRN<DGRN<CORN, DGRN close to CORN)",
        &["dataset", "users", "DGRN", "CORN", "RRN"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        for n_users in 10..=14usize {
            let rows = replicate(ctx.reps, |rep| {
                let seed = replicate_seed(ctx.base_seed, tags::FIG7 + n_users as u64, rep);
                let game = build_game(&pool, n_users, CORN_TASKS, seed, ScenarioParams::default());
                let dgrn = equilibrate(&game, DistributedAlgorithm::Dgrn, seed)
                    .profile
                    .total_profit(&game);
                let corn = run_corn(&game).total_profit;
                let rrn = run_rrn(&game, seed).total_profit(&game);
                (dgrn, corn, rrn)
            });
            let n = rows.len() as f64;
            let mean = |f: fn(&(f64, f64, f64)) -> f64| rows.iter().map(f).sum::<f64>() / n;
            report.push_row(vec![
                dataset.name().to_string(),
                n_users.to_string(),
                fmt3(mean(|r| r.0)),
                fmt3(mean(|r| r.1)),
                fmt3(mean(|r| r.2)),
            ]);
        }
    }
    report.note(format!(
        "{} tasks; {} repetitions per point",
        CORN_TASKS, ctx.reps
    ));
    report
}

/// Platform weights the DGRN ecosystem tunes to for coverage/reward goals
/// (§5.3.2: "DGRN can adjust the settings to increase the coverage of
/// tasks" — the comparison algorithms have no such platform knob, so they
/// stay at the Table 2 midpoint).
const DGRN_TUNED: (f64, f64) = (0.1, 0.1);

/// Fig. 8: task coverage vs user number (20–100) for DGRN, BATS, RRN. DGRN
/// runs with the platform's coverage-oriented weights (see [`DGRN_TUNED`]).
pub fn fig8(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig8",
        "Coverage vs. user number (paper ordering: RRN<BATS<DGRN)",
        &["dataset", "users", "DGRN", "BATS", "RRN"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        for n_users in [20usize, 40, 60, 80, 100] {
            let rows = replicate(ctx.reps, |rep| {
                let seed = replicate_seed(ctx.base_seed, tags::FIG8 + n_users as u64, rep);
                // Same replicate (users, tasks, preferences) under both
                // platform settings: only (φ, θ) differ.
                let game = build_game(&pool, n_users, 60, seed, ScenarioParams::default());
                let tuned = build_game(
                    &pool,
                    n_users,
                    60,
                    seed,
                    ScenarioParams::with_platform(DGRN_TUNED.0, DGRN_TUNED.1),
                );
                let dgrn = equilibrate(&tuned, DistributedAlgorithm::Dgrn, seed);
                let bats = equilibrate(&game, DistributedAlgorithm::Bats, seed);
                let rrn = run_rrn(&game, seed);
                (
                    coverage(&tuned, &dgrn.profile),
                    coverage(&game, &bats.profile),
                    coverage(&game, &rrn),
                )
            });
            let n = rows.len() as f64;
            report.push_row(vec![
                dataset.name().to_string(),
                n_users.to_string(),
                fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.2).sum::<f64>() / n),
            ]);
        }
    }
    report.note(format!("60 tasks; {} repetitions per point", ctx.reps));
    report.note("DGRN runs under the platform's coverage-tuned (φ, θ) = (0.1, 0.1)");
    report
}

/// Fig. 9: average reward vs task number (20–100) for DGRN, BATS, RRN.
pub fn fig9(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig9",
        "Average reward vs. task number (paper ordering: RRN<BATS<DGRN; grows with tasks)",
        &["dataset", "tasks", "DGRN", "BATS", "RRN"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        for n_tasks in [20usize, 40, 60, 80, 100] {
            let rows = replicate(ctx.reps, |rep| {
                let seed = replicate_seed(ctx.base_seed, tags::FIG9 + n_tasks as u64, rep);
                let game = build_game(&pool, 20, n_tasks, seed, ScenarioParams::default());
                let tuned = build_game(
                    &pool,
                    20,
                    n_tasks,
                    seed,
                    ScenarioParams::with_platform(DGRN_TUNED.0, DGRN_TUNED.1),
                );
                let dgrn = equilibrate(&tuned, DistributedAlgorithm::Dgrn, seed);
                let bats = equilibrate(&game, DistributedAlgorithm::Bats, seed);
                let rrn = run_rrn(&game, seed);
                (
                    average_reward(&tuned, &dgrn.profile),
                    average_reward(&game, &bats.profile),
                    average_reward(&game, &rrn),
                )
            });
            let n = rows.len() as f64;
            report.push_row(vec![
                dataset.name().to_string(),
                n_tasks.to_string(),
                fmt3(rows.iter().map(|r| r.0).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.1).sum::<f64>() / n),
                fmt3(rows.iter().map(|r| r.2).sum::<f64>() / n),
            ]);
        }
    }
    report.note(format!("20 users; {} repetitions per point", ctx.reps));
    report.note("DGRN runs under the platform's reward-tuned (φ, θ) = (0.1, 0.1)");
    report
}

/// Fig. 10: Jain's fairness index vs user number (6–14) for DGRN, CORN, RRN.
pub fn fig10(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig10",
        "Jain's fairness index vs. user number (paper: DGRN highest)",
        &["dataset", "users", "DGRN", "CORN", "RRN"],
    );
    for dataset in Dataset::ALL {
        let pool = ctx.pool(dataset);
        for n_users in [6usize, 8, 10, 12, 14] {
            let rows = replicate(ctx.reps, |rep| {
                let seed = replicate_seed(ctx.base_seed, tags::FIG10 + n_users as u64, rep);
                let game = build_game(&pool, n_users, CORN_TASKS, seed, ScenarioParams::default());
                let dgrn = equilibrate(&game, DistributedAlgorithm::Dgrn, seed);
                let corn = run_corn(&game);
                let rrn = run_rrn(&game, seed);
                (
                    profile_jain_index(&game, &dgrn.profile),
                    profile_jain_index(&game, &corn.profile),
                    profile_jain_index(&game, &rrn),
                )
            });
            let n = rows.len() as f64;
            let mean = |f: fn(&(f64, f64, f64)) -> f64| rows.iter().map(f).sum::<f64>() / n;
            report.push_row(vec![
                dataset.name().to_string(),
                n_users.to_string(),
                fmt3(mean(|r| r.0)),
                fmt3(mean(|r| r.1)),
                fmt3(mean(|r| r.2)),
            ]);
        }
    }
    report.note(format!(
        "{} tasks; {} repetitions per point",
        CORN_TASKS, ctx.reps
    ));
    report
}

/// Fig. 11: average reward surface over (task number × user number), DGRN.
pub fn fig11(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "fig11",
        "Average reward vs. task number and user number (DGRN surface)",
        &["dataset", "tasks", "users", "avg reward"],
    );
    for dataset in Dataset::ALL {
        for n_tasks in [20usize, 40, 60, 80, 100, 150, 200] {
            for n_users in [20usize, 40, 60, 80, 100] {
                let means = replicate_means(
                    ctx,
                    dataset,
                    tags::FIG11 + (n_tasks * 1000 + n_users) as u64,
                    n_users,
                    n_tasks,
                    ScenarioParams::default(),
                    1,
                    |game, seed| {
                        let out = equilibrate(game, DistributedAlgorithm::Dgrn, seed);
                        vec![average_reward(game, &out.profile)]
                    },
                );
                report.push_row(vec![
                    dataset.name().to_string(),
                    n_tasks.to_string(),
                    n_users.to_string(),
                    fmt3(means[0]),
                ]);
            }
        }
    }
    report.note("paper: reward grows with tasks, shrinks with users (shared rewards)");
    report
}

/// Table 4: DGRN/CORN total-profit ratio against the Theorem 5 PoA lower
/// bound on the structured special case, users 9–14.
pub fn table4(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "table4",
        "DGRN vs. CORN with the Theorem 5 PoA lower bound (special-case instances)",
        &["user #", "DGRN", "CORN", "ratio", "bound"],
    );
    for n_users in 9..=14usize {
        let rows = replicate(ctx.reps, |rep| {
            let seed = replicate_seed(ctx.base_seed, tags::TABLE4 + n_users as u64, rep);
            // Theorem 5 structure: one private route per user plus a common
            // route set over |L'| shared tasks with reward a + ln x.
            let mut rng_state = seed | 1;
            let mut next = || {
                // xorshift for a few cheap draws.
                rng_state ^= rng_state << 13;
                rng_state ^= rng_state >> 7;
                rng_state ^= rng_state << 17;
                (rng_state >> 11) as f64 / (1u64 << 53) as f64
            };
            let shared_tasks = 4 + (next() * 3.0) as usize; // 4–6
            let a = 10.0 + 5.0 * next();
            let private_rewards: Vec<f64> = (0..n_users).map(|_| 2.0 + 10.0 * next()).collect();
            let sc = SpecialCaseGame::build(SpecialCaseSpec {
                shared_base_reward: a,
                private_rewards,
                shared_tasks,
            });
            let dgrn = equilibrate(&sc.game, DistributedAlgorithm::Dgrn, seed)
                .profile
                .total_profit(&sc.game);
            // The structured special case admits a closed-form optimum
            // (validated against branch-and-bound in the core tests), which
            // keeps Table 4 exact at full replication counts.
            let corn = special_case_optimal(&sc);
            let bound = poa_lower_bound(&sc);
            (dgrn, corn, bound)
        });
        let n = rows.len() as f64;
        let dgrn: f64 = rows.iter().map(|r| r.0).sum::<f64>() / n;
        let corn: f64 = rows.iter().map(|r| r.1).sum::<f64>() / n;
        let bound: f64 = rows.iter().map(|r| r.2).sum::<f64>() / n;
        // Per-replicate ratio mean (the paper reports per-row ratios).
        let ratio: f64 = rows.iter().map(|r| r.0 / r.1).sum::<f64>() / n;
        report.push_row(vec![
            n_users.to_string(),
            fmt3(dgrn),
            fmt3(corn),
            fmt3(ratio),
            fmt3(bound),
        ]);
    }
    report.note("paper: ratio stays above the bound and close to 1");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_ordering_holds() {
        let ctx = Ctx::for_tests();
        let r = fig7(&ctx);
        assert_eq!(r.rows.len(), 15);
        let mut dgrn_total = 0.0;
        let mut rrn_total = 0.0;
        for row in &r.rows {
            let dgrn: f64 = row[2].parse().unwrap();
            let corn: f64 = row[3].parse().unwrap();
            let rrn: f64 = row[4].parse().unwrap();
            // CORN is exact: it weakly dominates everything, row by row.
            assert!(corn >= dgrn - 1e-9, "CORN below DGRN: {row:?}");
            assert!(corn >= rrn - 1e-9, "CORN below RRN: {row:?}");
            dgrn_total += dgrn;
            rrn_total += rrn;
        }
        // DGRN beats RRN in aggregate (per-row can fluctuate at 2 reps).
        assert!(
            dgrn_total > rrn_total,
            "DGRN {dgrn_total} vs RRN {rrn_total}"
        );
    }

    #[test]
    fn table4_ratio_above_bound() {
        let ctx = Ctx::for_tests();
        let r = table4(&ctx);
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            let ratio: f64 = row[3].parse().unwrap();
            let bound: f64 = row[4].parse().unwrap();
            assert!(ratio <= 1.0 + 1e-6);
            assert!(ratio >= bound - 1e-6, "ratio {ratio} below bound {bound}");
        }
    }

    #[test]
    fn fig8_coverage_in_unit_interval_and_grows() {
        let ctx = Ctx::for_tests();
        let r = fig8(&ctx);
        for row in &r.rows {
            for cell in &row[2..5] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
        // Coverage at 100 users ≥ coverage at 20 users for DGRN per dataset.
        for chunk in r.rows.chunks(5) {
            let first: f64 = chunk[0][2].parse().unwrap();
            let last: f64 = chunk[4][2].parse().unwrap();
            assert!(last >= first - 0.05, "coverage did not grow: {chunk:?}");
        }
    }
}
