//! Uniform experiment output: a titled table with typed rows, renderable as
//! an aligned text table and as CSV.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The structured result of one experiment runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Experiment id (`fig4`, `table3`, …).
    pub id: String,
    /// Human-readable title echoing the paper's caption.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (parameters, observations, file outputs).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; pads or truncates to the column count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.columns.len(), String::new());
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }

    /// Renders CSV (RFC-4180-lite: cells containing commas or quotes are
    /// quoted).
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with three decimals (the paper's typical precision).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a float with one decimal.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        let mut r = Report::new("figX", "demo", &["a", "b"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["300".into()]); // short row padded
        r.note("seed=1");
        r
    }

    #[test]
    fn table_contains_everything() {
        let t = report().to_table();
        assert!(t.contains("figX"));
        assert!(t.contains("demo"));
        assert!(t.contains("300"));
        assert!(t.contains("# seed=1"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("t", "t", &["x"]);
        r.push_row(vec!["a,b".into()]);
        r.push_row(vec!["say \"hi\"".into()]);
        let csv = r.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn short_rows_padded() {
        let r = report();
        assert_eq!(r.rows[1].len(), 2);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(1.23456), "1.235");
        assert_eq!(fmt1(1.26), "1.3");
    }
}
