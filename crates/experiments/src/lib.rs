//! # vcs-experiments — per-table/figure experiment runners
//!
//! One runner per table and figure of the paper's evaluation (§5), each
//! returning a uniform [`report::Report`]. The `repro` binary renders them as
//! aligned tables and CSV. See DESIGN.md §4 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured records.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod common;
pub mod communication;
pub mod context;
pub mod convergence;
pub mod fig1_2;
pub mod params_influence;
pub mod profit;
pub mod render;
pub mod report;

pub use context::Ctx;
pub use report::Report;

/// All experiment ids, in the paper's presentation order.
pub const ALL_EXPERIMENTS: [&str; 16] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "table3", "fig7", "fig8", "fig9", "fig10",
    "fig11", "table4", "fig12", "table5", "fig13",
];

/// Ablation studies beyond the paper (DESIGN.md §8).
pub const ALL_ABLATIONS: [&str; 5] = [
    "ablation_routes",
    "ablation_mu",
    "ablation_response",
    "ablation_communication",
    "ablation_scale",
];

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn run_experiment(ctx: &Ctx, id: &str) -> Option<Report> {
    Some(match id {
        "fig1" => fig1_2::fig1(),
        "fig2" => fig1_2::fig2(),
        "fig3" => convergence::fig3(ctx),
        "fig4" => convergence::fig4(ctx),
        "fig5" => convergence::fig5(ctx),
        "fig6" => convergence::fig6(ctx),
        "table3" => convergence::table3(ctx),
        "fig7" => profit::fig7(ctx),
        "fig8" => profit::fig8(ctx),
        "fig9" => profit::fig9(ctx),
        "fig10" => profit::fig10(ctx),
        "fig11" => profit::fig11(ctx),
        "table4" => profit::table4(ctx),
        "fig12" => params_influence::fig12(ctx),
        "table5" => params_influence::table5(ctx),
        "fig13" => render::fig13(ctx),
        "ablation_routes" => ablations::ablation_routes(ctx),
        "ablation_mu" => ablations::ablation_mu(ctx),
        "ablation_response" => ablations::ablation_response(ctx),
        "ablation_communication" => communication::ablation_communication(ctx),
        "ablation_scale" => ablations::ablation_scale(ctx),
        _ => return None,
    })
}
