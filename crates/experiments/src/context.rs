//! Shared experiment context: replication settings and cached per-dataset
//! substrate pools.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use vcs_scenario::{Dataset, UserPool};

/// Settings and caches shared by all experiment runners.
pub struct Ctx {
    /// Number of Monte-Carlo repetitions (paper: 500).
    pub reps: usize,
    /// Base seed; every replicate derives its own via
    /// [`vcs_scenario::replicate_seed`].
    pub base_seed: u64,
    /// Optional directory for CSV/SVG artifacts.
    pub out_dir: Option<PathBuf>,
    pools: Mutex<HashMap<Dataset, Arc<UserPool>>>,
}

impl Ctx {
    /// Creates a context.
    pub fn new(reps: usize, base_seed: u64, out_dir: Option<PathBuf>) -> Self {
        Self {
            reps,
            base_seed,
            out_dir,
            pools: Mutex::new(HashMap::new()),
        }
    }

    /// A fast context for unit tests (2 repetitions).
    pub fn for_tests() -> Self {
        Self::new(2, 12345, None)
    }

    /// The cached substrate pool for `dataset`, built on first use.
    pub fn pool(&self, dataset: Dataset) -> Arc<UserPool> {
        let mut pools = self.pools.lock().expect("pool cache lock");
        Arc::clone(
            pools
                .entry(dataset)
                .or_insert_with(|| Arc::new(UserPool::build(dataset, self.base_seed))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_is_cached() {
        let ctx = Ctx::for_tests();
        let a = ctx.pool(Dataset::Shanghai);
        let b = ctx.pool(Dataset::Shanghai);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
