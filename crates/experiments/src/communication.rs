//! Communication-cost ablation (beyond the paper): what the distributed
//! protocol spends in messages and bytes to reach the equilibrium, per
//! scheduler and population size.
//!
//! The paper motivates the distributed design by the platform's reduced
//! computation and the users' privacy; this experiment quantifies the other
//! side of the ledger — the Alg. 1/Alg. 2 message exchange measured on the
//! actual wire codec.

use crate::common::build_game;
use crate::context::Ctx;
use crate::report::{fmt3, Report};
use vcs_metrics::replicate;
use vcs_runtime::{run_sync, SchedulerKind};
use vcs_scenario::{replicate_seed, Dataset, ScenarioParams};

const TAG_COMM: u64 = 204;

/// Messages/bytes to equilibrium vs user count, SUU vs PUU.
pub fn ablation_communication(ctx: &Ctx) -> Report {
    let mut report = Report::new(
        "ablation_communication",
        "Ablation: protocol cost to equilibrium (messages / KiB), SUU vs PUU",
        &[
            "users",
            "scheduler",
            "slots",
            "messages",
            "KiB",
            "msgs/user",
        ],
    );
    let pool = ctx.pool(Dataset::Shanghai);
    for n_users in [10usize, 20, 40, 80] {
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            let rows = replicate(ctx.reps, |rep| {
                let seed = replicate_seed(ctx.base_seed, TAG_COMM, rep);
                let game = build_game(&pool, n_users, 40, seed, ScenarioParams::default());
                let out = run_sync(&game, scheduler, seed, 1_000_000);
                debug_assert!(out.converged);
                (
                    out.slots as f64,
                    out.telemetry.total_msgs() as f64,
                    out.telemetry.total_bytes() as f64 / 1024.0,
                )
            });
            let n = rows.len() as f64;
            let slots = rows.iter().map(|r| r.0).sum::<f64>() / n;
            let msgs = rows.iter().map(|r| r.1).sum::<f64>() / n;
            let kib = rows.iter().map(|r| r.2).sum::<f64>() / n;
            report.push_row(vec![
                n_users.to_string(),
                format!("{scheduler:?}"),
                fmt3(slots),
                fmt3(msgs),
                fmt3(kib),
                fmt3(msgs / n_users as f64),
            ]);
        }
    }
    report.note(format!(
        "40 tasks; {} repetitions per cell; common random numbers",
        ctx.reps
    ));
    report.note("PUU batches updates, so it needs fewer slots and fewer count-broadcast rounds");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puu_uses_fewer_messages() {
        let ctx = Ctx::for_tests();
        let r = ablation_communication(&ctx);
        assert_eq!(r.rows.len(), 8);
        // Rows come in (SUU, PUU) pairs per user count.
        for pair in r.rows.chunks(2) {
            let suu_msgs: f64 = pair[0][3].parse().unwrap();
            let puu_msgs: f64 = pair[1][3].parse().unwrap();
            assert!(
                puu_msgs <= suu_msgs + 1e-9,
                "PUU messages {puu_msgs} above SUU {suu_msgs}"
            );
        }
    }

    #[test]
    fn message_count_scales_with_users() {
        let ctx = Ctx::for_tests();
        let r = ablation_communication(&ctx);
        let msgs_10: f64 = r.rows[0][3].parse().unwrap();
        let msgs_80: f64 = r.rows[6][3].parse().unwrap();
        assert!(msgs_80 > msgs_10);
    }
}
