//! Helpers shared by the experiment runners.

use crate::context::Ctx;
use vcs_algorithms::{run_distributed, DistributedAlgorithm, RunConfig, RunOutcome};
use vcs_core::Game;
use vcs_metrics::replicate;
use vcs_scenario::{replicate_seed, Dataset, ScenarioConfig, ScenarioParams, UserPool};

/// Builds a replicate game from a pool with Table 2 parameters.
pub fn build_game(
    pool: &UserPool,
    n_users: usize,
    n_tasks: usize,
    seed: u64,
    params: ScenarioParams,
) -> Game {
    pool.instantiate(&ScenarioConfig {
        n_users,
        n_tasks,
        seed,
        params,
    })
}

/// Runs one distributed algorithm to equilibrium on a replicate game.
pub fn equilibrate(game: &Game, algo: DistributedAlgorithm, seed: u64) -> RunOutcome {
    run_distributed(game, algo, &RunConfig::with_seed(seed))
}

/// Monte-Carlo mean of `f(game, replicate_seed)` over `ctx.reps` replicates
/// of a scenario (rayon-parallel, order-deterministic).
pub fn replicate_mean<F>(
    ctx: &Ctx,
    dataset: Dataset,
    experiment_tag: u64,
    n_users: usize,
    n_tasks: usize,
    params: ScenarioParams,
    f: F,
) -> f64
where
    F: Fn(&Game, u64) -> f64 + Sync + Send,
{
    let pool = ctx.pool(dataset);
    let values = replicate(ctx.reps, |rep| {
        let seed = replicate_seed(ctx.base_seed, experiment_tag, rep);
        let game = build_game(&pool, n_users, n_tasks, seed, params);
        f(&game, seed)
    });
    values.iter().sum::<f64>() / values.len().max(1) as f64
}

/// Like [`replicate_mean`] but returns the means of several measurements at
/// once (`f` returns a fixed-size vector of observables).
#[allow(clippy::too_many_arguments)] // sweep coordinates, not an abstraction boundary
pub fn replicate_means<F>(
    ctx: &Ctx,
    dataset: Dataset,
    experiment_tag: u64,
    n_users: usize,
    n_tasks: usize,
    params: ScenarioParams,
    width: usize,
    f: F,
) -> Vec<f64>
where
    F: Fn(&Game, u64) -> Vec<f64> + Sync + Send,
{
    let pool = ctx.pool(dataset);
    let values = replicate(ctx.reps, |rep| {
        let seed = replicate_seed(ctx.base_seed, experiment_tag, rep);
        let game = build_game(&pool, n_users, n_tasks, seed, params);
        let row = f(&game, seed);
        debug_assert_eq!(row.len(), width);
        row
    });
    let n = values.len().max(1) as f64;
    let mut means = vec![0.0; width];
    for row in &values {
        for (m, v) in means.iter_mut().zip(row) {
            *m += v / n;
        }
    }
    means
}

/// Unique numeric tags for seed derivation, one per experiment.
pub mod tags {
    /// Fig. 3 tag.
    pub const FIG3: u64 = 3;
    /// Fig. 4 tag.
    pub const FIG4: u64 = 4;
    /// Fig. 5 tag.
    pub const FIG5: u64 = 5;
    /// Fig. 6 tag.
    pub const FIG6: u64 = 6;
    /// Fig. 7 tag.
    pub const FIG7: u64 = 7;
    /// Fig. 8 tag.
    pub const FIG8: u64 = 8;
    /// Fig. 9 tag.
    pub const FIG9: u64 = 9;
    /// Fig. 10 tag.
    pub const FIG10: u64 = 10;
    /// Fig. 11 tag.
    pub const FIG11: u64 = 11;
    /// Fig. 12 tag.
    pub const FIG12: u64 = 12;
    /// Fig. 13 tag.
    pub const FIG13: u64 = 13;
    /// Table 3 tag.
    pub const TABLE3: u64 = 103;
    /// Table 4 tag.
    pub const TABLE4: u64 = 104;
    /// Table 5 tag.
    pub const TABLE5: u64 = 105;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::response::is_nash;

    #[test]
    fn equilibrate_reaches_nash_on_scenario_game() {
        let ctx = Ctx::for_tests();
        let pool = ctx.pool(Dataset::Shanghai);
        let game = build_game(&pool, 10, 20, 7, ScenarioParams::default());
        let out = equilibrate(&game, DistributedAlgorithm::Dgrn, 7);
        assert!(out.converged);
        assert!(is_nash(&game, &out.profile));
    }

    #[test]
    fn replicate_mean_deterministic() {
        let ctx = Ctx::for_tests();
        let f = |game: &Game, seed: u64| {
            equilibrate(game, DistributedAlgorithm::Muun, seed).slots as f64
        };
        let a = replicate_mean(
            &ctx,
            Dataset::Shanghai,
            1,
            8,
            15,
            ScenarioParams::default(),
            f,
        );
        let b = replicate_mean(
            &ctx,
            Dataset::Shanghai,
            1,
            8,
            15,
            ScenarioParams::default(),
            f,
        );
        assert_eq!(a, b);
    }

    #[test]
    fn replicate_means_width() {
        let ctx = Ctx::for_tests();
        let means = replicate_means(
            &ctx,
            Dataset::Shanghai,
            2,
            6,
            10,
            ScenarioParams::default(),
            2,
            |game, seed| {
                let out = equilibrate(game, DistributedAlgorithm::Dgrn, seed);
                vec![out.slots as f64, out.final_total_profit()]
            },
        );
        assert_eq!(means.len(), 2);
    }
}
