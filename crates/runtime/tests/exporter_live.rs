//! Live-exporter integration: a threaded run with an attached
//! [`LiveMonitor`] must be scrapeable over a real TCP socket — well-formed
//! Prometheus exposition, working `/healthz` and `/snapshot`, and counters
//! that only grow as more work flows through the shared
//! [`StatsSubscriber`]. Plus a many-writer stress test on the subscriber
//! itself (the exporter reads it concurrently with the run's writers, so
//! its totals must be exact under contention).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use vcs_core::examples::fig1_instance;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{ChurnEvent, Route, UserPrefs, UserSpec};
use vcs_obs::{validate_prometheus_text, Event, Obs, SpanKind, StatsSubscriber};
use vcs_runtime::platform::SchedulerKind;
use vcs_runtime::threaded::{
    run_threaded, run_threaded_churn_monitored, run_threaded_monitored, run_threaded_observed,
};

/// Minimal HTTP/1.1 GET over a plain [`TcpStream`]; returns (status line,
/// body).
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect to exporter");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set read timeout");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .expect("write request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split");
    let status = head.lines().next().expect("status line").to_string();
    (status, body.to_string())
}

/// Extracts the value of an un-labelled sample from an exposition.
fn sample(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .find_map(|line| line.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("exposition missing sample {name}"))
        .trim()
        .parse()
        .expect("numeric sample value")
}

#[test]
fn metrics_endpoint_serves_a_live_threaded_run() {
    let game = fig1_instance();
    let (outcome, monitor) =
        run_threaded_monitored(&game, SchedulerKind::Puu, 7, 10_000, "127.0.0.1:0")
            .expect("bind ephemeral exporter");
    let plain = run_threaded(&game, SchedulerKind::Puu, 7, 10_000);
    assert_eq!(outcome, plain, "monitoring perturbed the run");
    let addr = monitor.addr();

    let (status, healthz) = http_get(addr, "/healthz");
    assert!(status.contains("200"), "healthz status: {status}");
    assert_eq!(healthz, "ok\n");

    let (status, first) = http_get(addr, "/metrics");
    assert!(status.contains("200"), "metrics status: {status}");
    validate_prometheus_text(&first).expect("first scrape is valid exposition");
    assert_eq!(sample(&first, "vcs_slots_total"), outcome.slots as f64);
    assert_eq!(sample(&first, "vcs_moves_total"), outcome.updates as f64);
    // Span histograms made it across the socket: every slot was timed.
    assert_eq!(
        sample(&first, "vcs_span_slot_seconds_count"),
        outcome.slots as f64
    );
    assert!(sample(&first, "vcs_span_frame_encode_seconds_count") > 0.0);

    // The monitor keeps serving while more work flows through the same
    // subscriber — run again on its handle, then re-scrape: every counter
    // is non-decreasing and the run counters doubled exactly.
    let again = run_threaded_observed(&game, SchedulerKind::Puu, 7, 10_000, &monitor.obs());
    assert_eq!(again, plain);
    let (_, second) = http_get(addr, "/metrics");
    validate_prometheus_text(&second).expect("second scrape is valid exposition");
    for name in [
        "vcs_slots_total",
        "vcs_moves_total",
        "vcs_frames_sent_total",
        "vcs_frames_received_total",
        "vcs_span_slot_seconds_count",
    ] {
        assert!(
            sample(&second, name) >= sample(&first, name),
            "{name} decreased between scrapes"
        );
    }
    assert_eq!(
        sample(&second, "vcs_slots_total"),
        2.0 * outcome.slots as f64
    );

    let (status, snapshot) = http_get(addr, "/snapshot");
    assert!(status.contains("200"), "snapshot status: {status}");
    assert!(snapshot.contains("\"counters\""), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"spans\""), "snapshot: {snapshot}");
    assert!(snapshot.contains("\"slot\""), "snapshot: {snapshot}");

    let (status, _) = http_get(addr, "/nope");
    assert!(status.contains("404"), "unknown path status: {status}");
}

#[test]
fn churn_monitor_exposes_phi_gauge_and_epoch_counters() {
    let game = fig1_instance();
    let epochs = vec![
        vec![ChurnEvent::Join {
            spec: UserSpec::new(
                UserPrefs::neutral(),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.5, 0.5),
                    Route::new(RouteId(1), vec![TaskId(1)], 0.0, 1.0),
                ],
            ),
            initial: RouteId(1),
        }],
        vec![ChurnEvent::Leave { user: UserId(1) }],
    ];
    let (outcome, monitor) =
        run_threaded_churn_monitored(&game, SchedulerKind::Puu, 3, 10_000, &epochs, "127.0.0.1:0")
            .expect("bind ephemeral exporter");
    let (_, text) = http_get(monitor.addr(), "/metrics");
    validate_prometheus_text(&text).expect("valid exposition");
    assert_eq!(
        sample(&text, "vcs_epochs_started_total"),
        (epochs.len() + 1) as f64
    );
    assert_eq!(
        sample(&text, "vcs_epochs_converged_total"),
        (epochs.len() + 1) as f64
    );
    // The ϕ gauge carries the last certified equilibrium potential.
    let phi = monitor.stats().latest_phi().expect("phi gauge set");
    assert_eq!(sample(&text, "vcs_phi"), phi);
    assert!(sample(&text, "vcs_span_epoch_reconverge_seconds_count") > 0.0);
    assert_eq!(outcome.epoch_slots.len(), epochs.len() + 1);
}

#[test]
fn stats_subscriber_totals_are_exact_under_many_writers() {
    let stats = Arc::new(StatsSubscriber::new());
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let obs = Obs::new(stats.clone());
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    obs.emit(|| Event::SlotCompleted {
                        slot: i + 1,
                        updated: 1,
                        phi: (t * PER_THREAD + i) as f64,
                        total_profit: 1.0,
                    });
                    obs.emit(|| Event::FrameSent {
                        bytes: 8,
                        seq: 1,
                        lamport: 1,
                    });
                    obs.emit(|| Event::SpanRecorded {
                        kind: SpanKind::Slot,
                        nanos: 1_000 + i,
                    });
                }
            });
        }
    });
    assert_eq!(stats.slots(), THREADS * PER_THREAD);
    let (sent, _, dropped) = stats.frames();
    assert_eq!(sent, THREADS * PER_THREAD);
    assert_eq!(dropped, 0);
    let hist = stats.span_histogram(SpanKind::Slot);
    assert_eq!(hist.count(), THREADS * PER_THREAD);
    // Exact sum: each thread recorded Σ(1000+i)·1e-9 seconds.
    let per_thread_nanos: u64 = (0..PER_THREAD).map(|i| 1_000 + i).sum();
    let expected = THREADS as f64 * per_thread_nanos as f64 * 1e-9;
    assert!((hist.sum_seconds() - expected).abs() < 1e-9 * expected);
    // The gauge holds *some* thread's final ϕ write (last writer wins).
    let phi = stats.latest_phi().expect("phi gauge set");
    assert!(
        (0..THREADS).any(|t| phi == (t * PER_THREAD + PER_THREAD - 1) as f64),
        "phi gauge {phi} is not any thread's last write"
    );
    // And the rendered exposition stays internally consistent after the
    // concurrent writes.
    validate_prometheus_text(&stats.prometheus_text()).expect("valid exposition");
}
