//! Observability conformance for the runtime layer: attaching a subscriber
//! must never perturb a run, and the emitted event stream must reconcile
//! with the runtime's own telemetry counters.

use std::sync::Arc;
use vcs_core::examples::fig1_instance;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{ChurnEvent, Route, UserPrefs, UserSpec};
use vcs_obs::{Event, Obs, RingBufferSubscriber, StatsSubscriber};
use vcs_runtime::platform::SchedulerKind;
use vcs_runtime::resilience::{
    run_lossy, run_lossy_observed, run_stale, run_stale_observed, LossConfig,
};
use vcs_runtime::sync_runtime::{
    run_sync, run_sync_churn, run_sync_churn_observed, run_sync_observed,
};
use vcs_runtime::threaded::{run_threaded_churn_observed, run_threaded_observed};

fn stats() -> (Arc<StatsSubscriber>, Obs) {
    let subscriber = Arc::new(StatsSubscriber::new());
    let obs = Obs::new(subscriber.clone());
    (subscriber, obs)
}

#[test]
fn observed_sync_run_is_unperturbed_and_reconciles() {
    let game = fig1_instance();
    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        for seed in 0..4u64 {
            let plain = run_sync(&game, scheduler, seed, 10_000);
            let (subscriber, obs) = stats();
            let observed = run_sync_observed(&game, scheduler, seed, 10_000, &obs);
            assert_eq!(plain, observed, "observation perturbed seed {seed}");
            // Lossless transport: every frame is sent exactly once and
            // received exactly once, and telemetry counts the same frames.
            let (sent, received, dropped) = subscriber.frames();
            assert_eq!(sent, received);
            assert_eq!(dropped, 0);
            assert_eq!(sent, observed.telemetry.total_msgs() as u64);
            assert_eq!(subscriber.slots(), observed.slots as u64);
            assert_eq!(subscriber.moves(), observed.updates as u64);
        }
    }
}

#[test]
fn observed_threaded_run_matches_sync_counters() {
    let game = fig1_instance();
    for seed in 0..3u64 {
        let (sync_sub, sync_obs) = stats();
        let sync = run_sync_observed(&game, SchedulerKind::Puu, seed, 10_000, &sync_obs);
        let (thr_sub, thr_obs) = stats();
        let threaded = run_threaded_observed(&game, SchedulerKind::Puu, seed, 10_000, &thr_obs);
        assert_eq!(sync, threaded, "threaded diverged at seed {seed}");
        assert_eq!(sync_sub.frames(), thr_sub.frames());
        assert_eq!(sync_sub.slots(), thr_sub.slots());
        assert_eq!(sync_sub.moves(), thr_sub.moves());
    }
}

#[test]
fn observed_lossy_run_accounts_for_every_drop() {
    let game = fig1_instance();
    for seed in 0..4u64 {
        let loss = LossConfig::hostile(seed.wrapping_add(7));
        let (plain, plain_stats) = run_lossy(&game, SchedulerKind::Puu, seed, 10_000, &loss);
        let (subscriber, obs) = stats();
        let (observed, obs_stats) =
            run_lossy_observed(&game, SchedulerKind::Puu, seed, 10_000, &loss, &obs);
        assert_eq!(plain, observed);
        assert_eq!(plain_stats, obs_stats);
        let (sent, received, dropped) = subscriber.frames();
        assert_eq!(dropped, obs_stats.dropped_frames as u64);
        assert_eq!(sent, received + dropped, "every sent frame lands or drops");
        assert_eq!(
            subscriber.retransmissions(),
            obs_stats.retransmissions as u64
        );
    }
}

#[test]
fn observed_stale_run_is_unperturbed() {
    let game = fig1_instance();
    for refresh in [1usize, 3] {
        for seed in 0..3u64 {
            let plain = run_stale(&game, SchedulerKind::Suu, seed, 10_000, refresh);
            let (subscriber, obs) = stats();
            let observed =
                run_stale_observed(&game, SchedulerKind::Suu, seed, 10_000, refresh, &obs);
            assert_eq!(plain, observed);
            let (sent, received, dropped) = subscriber.frames();
            assert_eq!(sent, received);
            assert_eq!(dropped, 0);
            assert_eq!(sent, observed.telemetry.total_msgs() as u64);
            assert_eq!(subscriber.slots(), observed.slots as u64);
        }
    }
}

fn fig1_stream() -> Vec<Vec<ChurnEvent>> {
    vec![
        vec![ChurnEvent::Join {
            spec: UserSpec::new(
                UserPrefs::neutral(),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.5, 0.5),
                    Route::new(RouteId(1), vec![TaskId(1)], 0.0, 1.0),
                ],
            ),
            initial: RouteId(1),
        }],
        vec![ChurnEvent::Leave { user: UserId(1) }],
    ]
}

#[test]
fn observed_churn_runs_emit_epoch_brackets() {
    let game = fig1_instance();
    let epochs = fig1_stream();
    for seed in 0..3u64 {
        let plain = run_sync_churn(&game, SchedulerKind::Puu, seed, 10_000, &epochs);
        let ring = Arc::new(RingBufferSubscriber::new(1 << 14));
        let obs = Obs::new(ring.clone());
        let observed =
            run_sync_churn_observed(&game, SchedulerKind::Puu, seed, 10_000, &epochs, &obs);
        assert_eq!(plain, observed);

        let events = ring.events();
        let started: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::EpochStarted { epoch, .. } => Some(*epoch),
                _ => None,
            })
            .collect();
        let converged: Vec<(u32, u64, bool)> = events
            .iter()
            .filter_map(|e| match e {
                Event::EpochConverged {
                    epoch,
                    slots,
                    converged,
                    ..
                } => Some((*epoch, *slots, *converged)),
                _ => None,
            })
            .collect();
        // One bracket per epoch (pre-churn epoch 0 plus one per batch), in
        // order, with per-epoch slot counts matching the outcome.
        let n = epochs.len() + 1;
        assert_eq!(started, (0..n as u32).collect::<Vec<_>>());
        assert_eq!(converged.len(), n);
        for (i, (epoch, slots, ok)) in converged.iter().enumerate() {
            assert_eq!(*epoch, i as u32);
            assert_eq!(*slots, observed.epoch_slots[i] as u64);
            assert!(*ok);
        }
        // Join/leave totals across EpochStarted events match the stream.
        let (joins, leaves) = events
            .iter()
            .filter_map(|e| match e {
                Event::EpochStarted { joins, leaves, .. } => Some((joins, leaves)),
                _ => None,
            })
            .fold((0u32, 0u32), |(j, l), (dj, dl)| (j + dj, l + dl));
        assert_eq!(joins, 1);
        assert_eq!(leaves, 1);

        // The threaded churn runtime produces the same outcome and the same
        // counter totals.
        let (thr_sub, thr_obs) = stats();
        let threaded =
            run_threaded_churn_observed(&game, SchedulerKind::Puu, seed, 10_000, &epochs, &thr_obs);
        assert_eq!(plain, threaded);
        let (epochs_started, epochs_converged) = thr_sub.epochs();
        assert_eq!(epochs_started, n as u64);
        assert_eq!(epochs_converged, n as u64);
    }
}
