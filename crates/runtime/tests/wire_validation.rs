//! Untrusted-wire validation: frames that decode fine but describe invalid
//! game state must be rejected by the platform's fallible constructors, not
//! panic — the codec layer checks only framing, the game layer checks
//! semantics. Exercises `Profile::try_new` rejection paths through
//! `PlatformState::try_new` and the churn (`Join`/`Leave`) admission paths
//! through `PlatformState::apply_churn_msg`.

use vcs_core::examples::fig1_instance;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{GameError, Route, UserPrefs, UserSpec};
use vcs_runtime::{PlatformState, SchedulerKind, UserMsg};

/// Decodes a frame end-to-end first, as the runtimes do, so the tests cover
/// the real wire → platform path rather than hand-built messages.
fn roundtrip(msg: UserMsg) -> UserMsg {
    UserMsg::decode(msg.encode()).expect("well-formed frame decodes")
}

#[test]
fn initial_decisions_with_wrong_user_count_rejected() {
    let game = fig1_instance();
    // Fig. 1 has three users; two initial decisions is a protocol violation.
    let short = PlatformState::try_new(&game, SchedulerKind::Suu, 0, vec![RouteId(0), RouteId(0)]);
    assert!(matches!(short, Err(GameError::InvalidProfile { .. })));
    // Too many decisions is equally invalid.
    let long = PlatformState::try_new(&game, SchedulerKind::Suu, 0, vec![RouteId(0); 4]);
    assert!(matches!(long, Err(GameError::InvalidProfile { .. })));
}

#[test]
fn initial_decision_with_out_of_range_route_rejected() {
    let game = fig1_instance();
    // User 1 has two routes; RouteId(7) points past its recommended set.
    let result = PlatformState::try_new(
        &game,
        SchedulerKind::Puu,
        0,
        vec![RouteId(0), RouteId(7), RouteId(0)],
    );
    assert!(matches!(result, Err(GameError::InvalidProfile { .. })));
}

#[test]
fn join_frame_with_empty_route_set_rejected() {
    let game = fig1_instance();
    let mut platform = PlatformState::new(
        &game,
        SchedulerKind::Suu,
        0,
        vec![RouteId(0), RouteId(0), RouteId(0)],
    );
    let msg = roundtrip(UserMsg::Join {
        spec: UserSpec::new(UserPrefs::neutral(), vec![]),
        initial: RouteId(0),
    });
    assert!(matches!(
        platform.apply_churn_msg(&msg),
        Err(GameError::EmptyRouteSet { .. })
    ));
    // The rejected join left no trace: the next valid join gets id 3.
    assert_eq!(platform.game().user_count(), 3);
}

#[test]
fn join_frame_with_out_of_range_initial_rejected() {
    let game = fig1_instance();
    let mut platform = PlatformState::new(
        &game,
        SchedulerKind::Suu,
        0,
        vec![RouteId(0), RouteId(0), RouteId(0)],
    );
    let msg = roundtrip(UserMsg::Join {
        spec: UserSpec::new(
            UserPrefs::neutral(),
            vec![Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0)],
        ),
        initial: RouteId(5),
    });
    assert!(matches!(
        platform.apply_churn_msg(&msg),
        Err(GameError::InvalidProfile { .. })
    ));
}

#[test]
fn join_frame_with_unknown_task_rejected() {
    let game = fig1_instance();
    let mut platform = PlatformState::new(
        &game,
        SchedulerKind::Puu,
        0,
        vec![RouteId(0), RouteId(0), RouteId(0)],
    );
    // Fig. 1 has three tasks; TaskId(9) does not exist.
    let msg = roundtrip(UserMsg::Join {
        spec: UserSpec::new(
            UserPrefs::neutral(),
            vec![Route::new(RouteId(0), vec![TaskId(9)], 0.0, 0.0)],
        ),
        initial: RouteId(0),
    });
    assert!(matches!(
        platform.apply_churn_msg(&msg),
        Err(GameError::UnknownTask {
            task: TaskId(9),
            ..
        })
    ));
}

#[test]
fn join_frame_with_out_of_bounds_weights_rejected() {
    let game = fig1_instance();
    let mut platform = PlatformState::new(
        &game,
        SchedulerKind::Suu,
        0,
        vec![RouteId(0), RouteId(0), RouteId(0)],
    );
    // α = 0 violates the paper's e_min > 0 bound; the frame decodes fine and
    // is rejected at game validation, never panicking.
    let msg = roundtrip(UserMsg::Join {
        spec: UserSpec::new(
            UserPrefs::new(0.0, 0.5, 0.5),
            vec![Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0)],
        ),
        initial: RouteId(0),
    });
    assert!(matches!(
        platform.apply_churn_msg(&msg),
        Err(GameError::UserWeightOutOfRange { name: "alpha", .. })
    ));
}

#[test]
fn leave_frame_for_unknown_user_rejected() {
    let game = fig1_instance();
    let mut platform = PlatformState::new(
        &game,
        SchedulerKind::Suu,
        0,
        vec![RouteId(0), RouteId(0), RouteId(0)],
    );
    let msg = roundtrip(UserMsg::Leave { user: UserId(42) });
    assert!(matches!(
        platform.apply_churn_msg(&msg),
        Err(GameError::UnknownUser { user: UserId(42) })
    ));
}
