//! Property-based tests of the wire protocol: total decoding (no panics on
//! arbitrary bytes) and lossless round-trips for arbitrary messages.

use bytes::Bytes;
use proptest::prelude::*;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_runtime::{PlatformMsg, UserMsg};

fn arb_task_counts() -> impl Strategy<Value = Vec<(TaskId, u32)>> {
    prop::collection::vec((any::<u32>(), any::<u32>()), 0..20)
        .prop_map(|v| v.into_iter().map(|(t, n)| (TaskId(t), n)).collect())
}

fn arb_platform_msg() -> impl Strategy<Value = PlatformMsg> {
    prop_oneof![
        (
            prop::collection::vec((any::<u32>(), 0.0f64..100.0, 0.0f64..1.0), 0..20),
            arb_task_counts(),
        )
            .prop_map(|(tasks, counts)| PlatformMsg::Init {
                tasks: tasks
                    .into_iter()
                    .map(|(t, a, mu)| (TaskId(t), a, mu))
                    .collect(),
                counts,
            }),
        arb_task_counts().prop_map(|counts| PlatformMsg::Counts { counts }),
        Just(PlatformMsg::Grant),
        Just(PlatformMsg::Deny),
        Just(PlatformMsg::Terminate),
    ]
}

fn arb_user_msg() -> impl Strategy<Value = UserMsg> {
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(u, r)| UserMsg::Initial {
            user: UserId(u),
            route: RouteId(r),
        }),
        (
            any::<u32>(),
            any::<u32>(),
            -1e9f64..1e9,
            -1e9f64..1e9,
            prop::collection::vec(any::<u32>(), 0..16),
        )
            .prop_map(|(u, r, gain, tau, tasks)| UserMsg::Request {
                user: UserId(u),
                new_route: RouteId(r),
                gain,
                tau,
                affected: tasks.into_iter().map(TaskId).collect(),
            }),
        any::<u32>().prop_map(|u| UserMsg::NoRequest { user: UserId(u) }),
        (any::<u32>(), any::<u32>()).prop_map(|(u, r)| UserMsg::Updated {
            user: UserId(u),
            route: RouteId(r),
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn platform_roundtrip(msg in arb_platform_msg()) {
        let frame = msg.encode();
        prop_assert_eq!(PlatformMsg::decode(frame).unwrap(), msg);
    }

    #[test]
    fn user_roundtrip(msg in arb_user_msg()) {
        let frame = msg.encode();
        prop_assert_eq!(UserMsg::decode(frame).unwrap(), msg);
    }

    /// Decoding arbitrary byte garbage never panics; it either errors or
    /// yields a message that re-encodes to a decodable frame.
    #[test]
    fn decoding_is_total(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let frame = Bytes::from(bytes);
        if let Ok(msg) = PlatformMsg::decode(frame.clone()) {
            prop_assert!(PlatformMsg::decode(msg.encode()).is_ok());
        }
        if let Ok(msg) = UserMsg::decode(frame) {
            prop_assert!(UserMsg::decode(msg.encode()).is_ok());
        }
    }

    /// Any truncation of a valid frame is rejected, never mis-parsed into a
    /// different valid message with trailing garbage accepted.
    #[test]
    fn truncations_rejected(msg in arb_user_msg(), cut in 0usize..64) {
        let frame = msg.encode();
        prop_assume!(cut < frame.len());
        let truncated = frame.slice(0..cut);
        if let Ok(decoded) = UserMsg::decode(truncated) {
            // The only way a prefix decodes is if it is itself a complete
            // frame of a *different* message — impossible with this codec
            // because every variant's length is determined by its content.
            prop_assert_eq!(decoded, msg);
        }
    }
}
