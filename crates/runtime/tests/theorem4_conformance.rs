//! Theorem 4 conformance: every runtime's slot count stays below the
//! paper's convergence bound
//! `C < (e_max/ΔP_min)·|U|·(|L|(g_max−g_min) + (e_max/e_min)(d_max+b_max))`,
//! with `ΔP_min` recovered from the observability layer: each committed
//! move's `profit_delta` is the mover's exact profit gain (Eq. 11), so the
//! smallest one over a run is the ΔP_min the bound needs.
//!
//! Covered paths: the sync runtime (both schedulers), the threaded runtime,
//! the lossy channel, the stale-information runtime, and every epoch of the
//! churn runtime (per-epoch game rebuilt via a shadow engine) — ≥ 20 seeds
//! across the lot.

use std::sync::Arc;
use vcs_core::bounds::slot_upper_bound;
use vcs_core::examples::fig1_instance;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{
    apply_churn, ChurnEvent, Engine, Game, PlatformParams, Profile, Route, Task, User, UserPrefs,
    UserSpec,
};
use vcs_obs::{Event, Obs, RingBufferSubscriber};
use vcs_runtime::platform::SchedulerKind;
use vcs_runtime::resilience::{run_lossy_observed, run_stale_observed, LossConfig};
use vcs_runtime::sync_runtime::{run_sync_churn_observed, run_sync_observed};
use vcs_runtime::threaded::run_threaded_observed;

/// A seeded random game, large enough to need a nontrivial convergence.
fn random_game(seed: u64) -> Game {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tasks = rng.random_range(4..=8usize);
    let n_users = rng.random_range(4..=10usize);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let n_routes = rng.random_range(2..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(1..4usize))
                        .map(|_| TaskId::from_index(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..3.0),
                        rng.random_range(0.0..3.0),
                    )
                })
                .collect();
            User::new(
                UserId::from_index(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(
        tasks,
        users,
        PlatformParams::new(rng.random_range(0.1..0.8), rng.random_range(0.1..0.8)),
    )
    .expect("generated instance is valid")
}

/// The smallest committed profit improvement in an event slice — the run's
/// ΔP_min. `None` when no move was committed.
fn delta_p_min(events: &[Event]) -> Option<f64> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::MoveCommitted { profit_delta, .. } => Some(*profit_delta),
            _ => None,
        })
        .min_by(|a, b| a.total_cmp(b))
}

/// Asserts `slots` respects the Theorem 4 bound for `game` given the
/// captured events, and that every accepted move strictly improved.
fn assert_theorem4(game: &Game, slots: usize, events: &[Event], context: &str) {
    let Some(dp_min) = delta_p_min(events) else {
        assert_eq!(slots, 0, "{context}: slots without any committed move");
        return;
    };
    assert!(
        dp_min > 0.0,
        "{context}: accepted a non-improving move (ΔP = {dp_min})"
    );
    let bound = slot_upper_bound(game, dp_min);
    assert!(
        (slots as f64) < bound,
        "{context}: {slots} slots exceed the Theorem 4 bound {bound} (ΔP_min = {dp_min})"
    );
}

fn capture() -> (Arc<RingBufferSubscriber>, Obs) {
    let ring = Arc::new(RingBufferSubscriber::new(1 << 16));
    let obs = Obs::new(ring.clone());
    (ring, obs)
}

#[test]
fn sync_runs_respect_the_slot_bound() {
    // 2 schedulers × (fig. 1 + 10 random games) × 2 seeds ≥ 20 runs.
    for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
        for game_seed in 0..11u64 {
            let game = if game_seed == 0 {
                fig1_instance()
            } else {
                random_game(game_seed)
            };
            for seed in 0..2u64 {
                let (ring, obs) = capture();
                let out = run_sync_observed(&game, scheduler, seed, 100_000, &obs);
                assert!(out.converged);
                assert_theorem4(
                    &game,
                    out.slots,
                    &ring.events(),
                    &format!("sync {scheduler:?} game {game_seed} seed {seed}"),
                );
            }
        }
    }
}

#[test]
fn threaded_runs_respect_the_slot_bound() {
    for game_seed in 1..6u64 {
        let game = random_game(game_seed);
        for seed in 0..4u64 {
            let (ring, obs) = capture();
            let out = run_threaded_observed(&game, SchedulerKind::Puu, seed, 100_000, &obs);
            assert!(out.converged);
            assert_theorem4(
                &game,
                out.slots,
                &ring.events(),
                &format!("threaded game {game_seed} seed {seed}"),
            );
        }
    }
}

#[test]
fn lossy_runs_respect_the_slot_bound() {
    for game_seed in 1..6u64 {
        let game = random_game(game_seed);
        for seed in 0..4u64 {
            let (ring, obs) = capture();
            let loss = LossConfig::hostile(seed.wrapping_add(31));
            let (out, _) =
                run_lossy_observed(&game, SchedulerKind::Puu, seed, 100_000, &loss, &obs);
            assert!(out.converged);
            assert_theorem4(
                &game,
                out.slots,
                &ring.events(),
                &format!("lossy game {game_seed} seed {seed}"),
            );
        }
    }
}

#[test]
fn stale_runs_respect_the_slot_bound() {
    // Staleness costs extra *rounds* but every counted slot still carries a
    // strict improvement, so the bound applies unchanged.
    for refresh in [2usize, 4] {
        for game_seed in 1..6u64 {
            let game = random_game(game_seed);
            for seed in 0..2u64 {
                let (ring, obs) = capture();
                let out =
                    run_stale_observed(&game, SchedulerKind::Suu, seed, 100_000, refresh, &obs);
                assert!(out.converged);
                assert_theorem4(
                    &game,
                    out.slots,
                    &ring.events(),
                    &format!("stale/{refresh} game {game_seed} seed {seed}"),
                );
            }
        }
    }
}

/// A small churn stream against fig. 1: one join, then two departures.
fn fig1_stream() -> Vec<Vec<ChurnEvent>> {
    vec![
        vec![ChurnEvent::Join {
            spec: UserSpec::new(
                UserPrefs::neutral(),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0)], 0.5, 0.5),
                    Route::new(RouteId(1), vec![TaskId(1)], 0.0, 1.0),
                ],
            ),
            initial: RouteId(1),
        }],
        vec![
            ChurnEvent::Leave { user: UserId(3) },
            ChurnEvent::Leave { user: UserId(1) },
        ],
    ]
}

#[test]
fn churn_epochs_respect_the_per_epoch_slot_bound() {
    // Each churn batch redefines the game, so the bound is per-epoch: a
    // shadow engine replays the batches to materialize each epoch's game,
    // and the event stream is segmented at the epoch brackets.
    let game = fig1_instance();
    let epochs = fig1_stream();
    for seed in 0..20u64 {
        let (ring, obs) = capture();
        let out = run_sync_churn_observed(&game, SchedulerKind::Puu, seed, 100_000, &epochs, &obs);
        assert!(out.converged, "seed {seed}");
        let events = ring.events();

        // Epoch games: epoch 0 is the original; epoch e ≥ 1 is the live
        // game after batch e, materialized from the shadow engine.
        let mut epoch_games = vec![game.clone()];
        let mut shadow = Engine::new_owned(game.clone(), Profile::all_first(&game));
        for batch in &epochs {
            for event in batch {
                apply_churn(&mut shadow, event).expect("stream events are valid");
            }
            let (epoch_game, _, _) = shadow.materialize();
            epoch_games.push(epoch_game);
        }

        // Segment events per epoch at the EpochStarted markers.
        let mut segments: Vec<Vec<Event>> = Vec::new();
        for event in &events {
            if matches!(event, Event::EpochStarted { .. }) {
                segments.push(Vec::new());
            }
            if let Some(current) = segments.last_mut() {
                current.push(*event);
            }
        }
        assert_eq!(segments.len(), epoch_games.len(), "seed {seed}");
        assert_eq!(out.epoch_slots.len(), epoch_games.len(), "seed {seed}");
        for (epoch, ((segment, epoch_game), &slots)) in segments
            .iter()
            .zip(&epoch_games)
            .zip(&out.epoch_slots)
            .enumerate()
        {
            assert_theorem4(
                epoch_game,
                slots,
                segment,
                &format!("churn seed {seed} epoch {epoch}"),
            );
        }
    }
}
