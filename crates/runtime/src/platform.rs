//! The platform side of Algorithm 2, shared by both runtimes.
//!
//! The platform keeps the authoritative profile inside an incremental
//! [`Engine`] and exploits its dirty set for the request-collection loop:
//! a user's request depends only on the participant counts of its covered
//! tasks and its own current route, so after a slot's granted moves only the
//! users covering an affected task (plus the movers) can answer differently.
//! The platform caches every agent's last reply and re-polls (`Counts`) only
//! the dirty ones — clean agents are neither messaged nor recomputed, and
//! their standing request (or standing silence) is reused verbatim.

use crate::protocol::{PlatformMsg, UserMsg};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vcs_algorithms::scheduler::{puu, suu};
use vcs_algorithms::UpdateRequest;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Engine, Game, GameError, Profile, UserSpec};
use vcs_obs::{elapsed_nanos, Event, SpanKind};

/// Which user-update scheduler the platform runs (Alg. 2 line 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Single User Update: one random requester per slot (DGRN).
    Suu,
    /// Parallel User Update: Algorithm 3's conflict-free batch (MUUN).
    Puu,
}

/// Platform state: the authoritative strategy profile (inside the
/// incremental [`Engine`]), task counts, and the per-agent request cache.
#[derive(Debug)]
pub struct PlatformState<'g> {
    engine: Engine<'g>,
    /// Each agent's standing request (`None` = last reply was `NoRequest`
    /// or the agent has not been polled yet — all users start dirty).
    cached: Vec<Option<UpdateRequest>>,
    scheduler: SchedulerKind,
    rng: StdRng,
    /// Decision slots elapsed.
    pub slots: usize,
    /// Individual decision updates applied.
    pub updates: usize,
}

impl<'g> PlatformState<'g> {
    /// Creates the platform once all `Initial` decisions are in
    /// (Alg. 2 lines 2–3).
    ///
    /// # Panics
    ///
    /// Panics when the decoded initial choices do not form a valid profile;
    /// callers holding untrusted wire input should prefer [`Self::try_new`].
    pub fn new(
        game: &'g Game,
        scheduler: SchedulerKind,
        seed: u64,
        initial_choices: Vec<RouteId>,
    ) -> Self {
        Self::try_new(game, scheduler, seed, initial_choices)
            .expect("initial decisions form a valid profile")
    }

    /// Fallible constructor: validates the (wire-decoded, hence untrusted)
    /// initial choices against the game before building any state.
    pub fn try_new(
        game: &'g Game,
        scheduler: SchedulerKind,
        seed: u64,
        initial_choices: Vec<RouteId>,
    ) -> Result<Self, GameError> {
        let profile = Profile::try_new(game, initial_choices)?;
        Ok(Self {
            engine: Engine::new(game, profile),
            cached: vec![None; game.user_count()],
            scheduler,
            rng: StdRng::seed_from_u64(seed),
            slots: 0,
            updates: 0,
        })
    }

    /// Attaches an observability handle to the platform's engine: emits the
    /// `EngineInit` anchor now, and every subsequent granted move / churn
    /// application emits its own per-commit event. The runtimes layer their
    /// frame-level and slot-level events on top of the same handle.
    pub fn set_obs(&mut self, obs: vcs_obs::Obs) {
        self.engine.set_obs(obs);
    }

    /// Number of users currently on the platform.
    pub fn active_count(&self) -> usize {
        self.engine.active_count()
    }

    /// The incrementally maintained total profit `Σ_i P_i(s)`.
    pub fn total_profit(&self) -> f64 {
        self.engine.total_profit()
    }

    /// The game the platform currently prices. After a mid-game `Join` this
    /// is the engine's copy-on-write extension, not the construction-time
    /// game reference (and it may contain departed tombstone users).
    pub fn game(&self) -> &Game {
        self.engine.game()
    }

    /// Admits a wire-decoded joining user (a `Join` frame): validates the
    /// spec against the game's task set and weight bounds, assigns the next
    /// user id and starts the user on `initial`. Affected incumbents are
    /// marked dirty and get re-polled on the next slot.
    pub fn try_join(&mut self, spec: &UserSpec, initial: RouteId) -> Result<UserId, GameError> {
        let user = self
            .engine
            .add_user(spec.prefs, spec.routes.clone(), initial)?;
        self.cached.push(None);
        Ok(user)
    }

    /// Retires a user (a `Leave` frame): unwinds its participation, drops its
    /// standing request and tombstones its id. Returns the route it was on.
    pub fn handle_leave(&mut self, user: UserId) -> Result<RouteId, GameError> {
        let route = self.engine.remove_user(user)?;
        self.cached[user.index()] = None;
        Ok(route)
    }

    /// Applies a decoded churn message. Returns the assigned id for a join,
    /// `None` for a leave.
    ///
    /// # Panics
    ///
    /// Panics when `msg` is not a churn message — routing non-churn frames
    /// here is a driver bug, not untrusted input.
    pub fn apply_churn_msg(&mut self, msg: &UserMsg) -> Result<Option<UserId>, GameError> {
        match msg {
            UserMsg::Join { spec, initial } => self.try_join(spec, *initial).map(Some),
            UserMsg::Leave { user } => self.handle_leave(*user).map(|_| None),
            other => panic!("apply_churn_msg on non-churn message {other:?}"),
        }
    }

    /// Whether `user` is on the platform (exists and has not left).
    pub fn is_active(&self, user: UserId) -> bool {
        self.engine.is_active(user)
    }

    /// The incrementally maintained potential ϕ of the live game.
    pub fn potential(&self) -> f64 {
        self.engine.potential()
    }

    /// Densifies the live post-churn state into `(game, choices, id_map)` —
    /// see [`Engine::materialize`].
    pub fn materialize(&self) -> (Game, Vec<RouteId>, Vec<UserId>) {
        self.engine.materialize()
    }

    /// The authoritative profile.
    pub fn profile(&self) -> &Profile {
        self.engine.profile()
    }

    /// Consumes the platform, returning the final profile.
    pub fn into_profile(self) -> Profile {
        self.engine.into_profile()
    }

    /// Users whose standing reply may have changed since they were last
    /// polled (sorted, deduplicated); clears the dirty set. Initially every
    /// user is dirty.
    pub fn dirty_users(&mut self) -> Vec<UserId> {
        self.engine.take_dirty()
    }

    /// Records a freshly polled reply in the request cache, replacing the
    /// user's standing request.
    pub fn record_reply(&mut self, user: UserId, reply: &UserMsg) {
        self.cached[user.index()] = Self::to_request(reply);
    }

    /// This slot's request set: every standing request, in user-id order —
    /// exactly what polling all users densely would have produced, by the
    /// dirty-set soundness invariant.
    pub fn collect_requests(&self) -> Vec<UpdateRequest> {
        self.cached.iter().flatten().cloned().collect()
    }

    /// Participant counts restricted to the tasks covered by `user`'s
    /// recommended routes (the locality of Alg. 1 line 9).
    pub fn counts_for(&self, user: UserId) -> Vec<(TaskId, u32)> {
        let mut tasks: Vec<TaskId> = self.game().users()[user.index()]
            .routes
            .iter()
            .flat_map(|r| r.tasks.iter().copied())
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
            .into_iter()
            .map(|t| (t, self.profile().participants(t)))
            .collect()
    }

    /// The `Init` message for `user` (Alg. 2 line 4): reward parameters and
    /// counts of its covered tasks.
    pub fn init_msg_for(&self, user: UserId) -> PlatformMsg {
        let counts = self.counts_for(user);
        let tasks = counts
            .iter()
            .map(|&(t, _)| {
                let task = self.game().task(t);
                (t, task.base_reward, task.increment)
            })
            .collect();
        PlatformMsg::Init { tasks, counts }
    }

    /// The per-slot `Counts` refresh for `user`.
    pub fn counts_msg_for(&self, user: UserId) -> PlatformMsg {
        PlatformMsg::Counts {
            counts: self.counts_for(user),
        }
    }

    /// Runs the scheduler over this slot's decoded requests (already sorted
    /// by user id for determinism) and returns the indices of granted ones.
    /// Increments the slot counter when any request is granted.
    pub fn select(&mut self, requests: &[UpdateRequest]) -> Vec<usize> {
        if requests.is_empty() {
            return Vec::new();
        }
        let granted = match self.scheduler {
            SchedulerKind::Suu => suu(requests, &mut self.rng),
            SchedulerKind::Puu => puu(requests),
        };
        if !granted.is_empty() {
            self.slots += 1;
        }
        granted
    }

    /// Applies a confirmed decision update (Alg. 2 line 10). The engine
    /// marks the mover and every user covering an affected task dirty, which
    /// drives the next slot's selective `Counts` poll. The commit is recorded
    /// as an [`SpanKind::EngineApply`] span: timing lives here, at the grant
    /// site, rather than inside `Engine::apply_move` itself, so the
    /// single-process dynamics loops (whose Slot span already covers the
    /// apply) don't pay two extra clock reads per slot.
    pub fn apply_update(&mut self, user: UserId, route: RouteId) {
        let start = self.engine.obs().enabled().then(std::time::Instant::now);
        self.engine.apply_move(user, route);
        if let Some(start) = start {
            let nanos = elapsed_nanos(start);
            self.engine.obs().emit(|| Event::SpanRecorded {
                kind: SpanKind::EngineApply,
                nanos,
            });
        }
        self.updates += 1;
    }

    /// Converts a decoded `UserMsg::Request` into the scheduler's request
    /// type. Returns `None` for other message kinds.
    pub fn to_request(msg: &UserMsg) -> Option<UpdateRequest> {
        match msg {
            UserMsg::Request {
                user,
                new_route,
                gain,
                tau,
                affected,
            } => Some(UpdateRequest {
                user: *user,
                new_route: *new_route,
                gain: *gain,
                tau: *tau,
                affected_tasks: affected.clone(),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;

    #[test]
    fn counts_restricted_to_covered_tasks() {
        let game = fig1_instance();
        let platform = PlatformState::new(
            &game,
            SchedulerKind::Suu,
            0,
            vec![RouteId(0), RouteId(0), RouteId(0)],
        );
        // u2 only has r3 covering the $6 task (task 1), which u3's r4 also
        // covers under the all-first profile.
        let counts = platform.counts_for(UserId(1));
        assert_eq!(counts, vec![(TaskId(1), 2)]);
        // u1 covers tasks 0 and 1 across its two routes.
        let counts = platform.counts_for(UserId(0));
        assert_eq!(counts.len(), 2);
    }

    #[test]
    fn init_message_carries_reward_parameters() {
        let game = fig1_instance();
        let platform = PlatformState::new(
            &game,
            SchedulerKind::Puu,
            0,
            vec![RouteId(0), RouteId(0), RouteId(1)],
        );
        match platform.init_msg_for(UserId(2)) {
            PlatformMsg::Init { tasks, counts } => {
                assert_eq!(tasks.len(), 2); // tasks 1 and 2
                assert_eq!(counts.len(), 2);
                let (_, a, mu) = tasks[0];
                assert!(a > 0.0);
                assert_eq!(mu, 0.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn apply_update_moves_profile() {
        let game = fig1_instance();
        let mut platform = PlatformState::new(
            &game,
            SchedulerKind::Suu,
            0,
            vec![RouteId(1), RouteId(0), RouteId(0)],
        );
        platform.apply_update(UserId(0), RouteId(0));
        assert_eq!(platform.profile().choice(UserId(0)), RouteId(0));
        assert_eq!(platform.updates, 1);
    }

    #[test]
    fn join_and_leave_reshape_platform() {
        let game = fig1_instance();
        let mut platform = PlatformState::new(
            &game,
            SchedulerKind::Suu,
            0,
            vec![RouteId(0), RouteId(0), RouteId(0)],
        );
        platform.dirty_users();
        let spec = vcs_core::UserSpec::new(
            vcs_core::UserPrefs::neutral(),
            vec![vcs_core::Route::new(RouteId(0), vec![TaskId(1)], 0.5, 0.5)],
        );
        let joined = platform
            .apply_churn_msg(&UserMsg::Join {
                spec,
                initial: RouteId(0),
            })
            .unwrap()
            .expect("join assigns an id");
        assert_eq!(joined, UserId(3));
        assert!(platform.is_active(joined));
        // The join extends the live game past the construction-time one.
        assert_eq!(platform.game().user_count(), 4);
        assert_eq!(platform.counts_for(joined), vec![(TaskId(1), 3)]);
        // Incumbents sharing task 1 get re-polled.
        assert!(platform.dirty_users().contains(&UserId(1)));
        platform
            .apply_churn_msg(&UserMsg::Leave { user: joined })
            .unwrap();
        assert!(!platform.is_active(joined));
        let (post, choices, id_map) = platform.materialize();
        assert_eq!(post.user_count(), 3);
        assert_eq!(choices.len(), 3);
        assert_eq!(id_map, vec![UserId(0), UserId(1), UserId(2)]);
        // Leaving twice surfaces the engine error, untrusted-frame style.
        assert!(matches!(
            platform.apply_churn_msg(&UserMsg::Leave { user: joined }),
            Err(GameError::UnknownUser { .. })
        ));
    }

    #[test]
    fn select_counts_slots() {
        let game = fig1_instance();
        let mut platform = PlatformState::new(
            &game,
            SchedulerKind::Suu,
            7,
            vec![RouteId(1), RouteId(0), RouteId(1)],
        );
        assert!(platform.select(&[]).is_empty());
        assert_eq!(platform.slots, 0);
        let req = UpdateRequest {
            user: UserId(0),
            new_route: RouteId(0),
            gain: 1.0,
            tau: 2.0,
            affected_tasks: vec![TaskId(0), TaskId(1)],
        };
        let granted = platform.select(&[req]);
        assert_eq!(granted, vec![0]);
        assert_eq!(platform.slots, 1);
    }
}
