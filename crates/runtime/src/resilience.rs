//! Protocol resilience: lossy links and stale information.
//!
//! Two "future work" conditions the paper's deployment sketch would face:
//!
//! * **Message loss** ([`run_lossy`]): every frame is dropped i.i.d. with a
//!   seeded probability; the platform retransmits until delivery. Because
//!   the protocol's messages are idempotent (re-sent `Counts` carry the same
//!   state; a re-sent `Grant` is re-acknowledged with the current route),
//!   the delivered sequence equals the lossless one — the run produces the
//!   **identical outcome**, paying only in retransmissions. This is tested,
//!   not assumed.
//! * **Stale information** ([`run_stale`]): the platform refreshes the
//!   participant counts only every `refresh_every` slots; between refreshes
//!   agents decide on cached (possibly outdated) counts. Termination still
//!   requires a quiet fresh-count slot, so the final profile remains a
//!   verified Nash equilibrium; staleness only costs extra slots.

use crate::agent::UserAgent;
use crate::platform::{PlatformState, SchedulerKind};
use crate::protocol::{PlatformMsg, UserMsg};
use crate::sync_runtime::{spawn_agents, RuntimeOutcome, Telemetry};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::Game;
use vcs_obs::{Event, FrameStamper, Obs, ResponseKind, PLATFORM_SENDER};

/// Loss-model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossConfig {
    /// Per-frame drop probability in `[0, 1)` (applied independently to
    /// both directions).
    pub drop_probability: f64,
    /// Seed of the loss process (independent of the protocol seed).
    pub seed: u64,
    /// Safety cap on consecutive retransmissions of one frame.
    pub max_retries: usize,
}

impl LossConfig {
    /// A moderately hostile channel: 20% frame loss.
    pub fn hostile(seed: u64) -> Self {
        Self {
            drop_probability: 0.2,
            seed,
            max_retries: 10_000,
        }
    }
}

/// Loss statistics of a lossy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LossStats {
    /// Frames the channel dropped (either direction).
    pub dropped_frames: usize,
    /// Retransmissions the platform performed.
    pub retransmissions: usize,
}

/// Delivers one request/response exchange over the lossy channel with
/// retransmission until both directions succeed, mirroring a
/// stop-and-wait ARQ. Returns the reply (if the message type elicits one).
#[allow(clippy::too_many_arguments)] // transport state, not an API
fn deliver_arq(
    agent: &mut UserAgent,
    msg: &PlatformMsg,
    expects_reply: bool,
    loss_rng: &mut StdRng,
    loss: &LossConfig,
    stats: &mut LossStats,
    telemetry: &mut Telemetry,
    stamper: &mut FrameStamper,
    obs: &Obs,
) -> Option<UserMsg> {
    let agent_id = agent.id.index() as u32;
    let mut attempts = 0u64;
    loop {
        attempts += 1;
        assert!(
            attempts as usize <= loss.max_retries + 1,
            "channel never delivered after {attempts} attempts"
        );
        if attempts > 1 {
            stats.retransmissions += 1;
            // The retransmission decision is a local step at the platform
            // (it drives the stop-and-wait timer for both legs).
            let stamp = stamper.local(PLATFORM_SENDER);
            obs.emit(|| Event::Retransmission {
                attempt: attempts as u32,
                seq: stamp.seq,
                lamport: stamp.lamport,
            });
        }
        // Platform → agent leg.
        let frame = msg.encode();
        telemetry.platform_msgs += 1;
        telemetry.platform_bytes += frame.len();
        let tx = stamper.send(PLATFORM_SENDER);
        obs.emit(|| Event::FrameSent {
            bytes: frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        if loss_rng.random_range(0.0..1.0) < loss.drop_probability {
            stats.dropped_frames += 1;
            // The channel annihilated the frame: the drop inherits the TX
            // stamp — nothing at the receiver advanced.
            obs.emit(|| Event::FrameDropped {
                bytes: frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            continue; // timeout ⇒ retransmit
        }
        let rx = stamper.receive(agent_id, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        let decoded = PlatformMsg::decode(frame).expect("self-encoded frame decodes");
        let reply = agent.handle(decoded);
        if !expects_reply {
            // Fire-and-forget messages (Init/Terminate) are covered by
            // the retransmit loop only up to delivery of the request leg.
            debug_assert!(reply.is_none());
            return None;
        }
        let reply = reply.expect("message type elicits a reply");
        // Agent → platform leg.
        let reply_frame = reply.encode();
        telemetry.user_msgs += 1;
        telemetry.user_bytes += reply_frame.len();
        let tx = stamper.send(agent_id);
        obs.emit(|| Event::FrameSent {
            bytes: reply_frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        if loss_rng.random_range(0.0..1.0) < loss.drop_probability {
            stats.dropped_frames += 1;
            obs.emit(|| Event::FrameDropped {
                bytes: reply_frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            continue; // reply lost ⇒ platform re-sends the request
        }
        let rx = stamper.receive(PLATFORM_SENDER, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: reply_frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        return Some(UserMsg::decode(reply_frame).expect("self-encoded frame decodes"));
    }
}

/// Runs the protocol over a lossy channel with stop-and-wait retransmission.
/// Returns the outcome plus loss statistics. The outcome's profile, slots
/// and updates equal the lossless [`crate::sync_runtime::run_sync`] run with
/// the same protocol seed (only telemetry grows).
pub fn run_lossy(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    loss: &LossConfig,
) -> (RuntimeOutcome, LossStats) {
    run_lossy_observed(game, scheduler, seed, max_slots, loss, &Obs::disabled())
}

/// [`run_lossy`] with an observability handle: everything the lossless
/// observed runtimes emit, plus `FrameDropped` per channel drop and
/// `Retransmission` per stop-and-wait retry (the `attempt` field is the
/// 1-based attempt number of that frame, so the first retransmission of a
/// frame carries `attempt: 2`).
pub fn run_lossy_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    loss: &LossConfig,
    obs: &Obs,
) -> (RuntimeOutcome, LossStats) {
    assert!(
        (0.0..1.0).contains(&loss.drop_probability),
        "drop probability must lie in [0, 1)"
    );
    let mut agents = spawn_agents(game, seed);
    let mut loss_rng = StdRng::seed_from_u64(loss.seed);
    let mut stats = LossStats::default();
    let mut telemetry = Telemetry::default();
    let mut stamper = FrameStamper::new();
    // Initial decisions travel over the lossy uplink too (agents re-announce
    // until the platform has everyone's choice).
    let mut initial = vec![RouteId(0); game.user_count()];
    for agent in agents.iter() {
        let agent_id = agent.id.index() as u32;
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(
                attempts <= loss.max_retries + 1,
                "initial decision never arrived"
            );
            if attempts > 1 {
                stats.retransmissions += 1;
                let attempt = attempts as u32;
                // Re-announcement is the agent's own timer firing.
                let stamp = stamper.local(agent_id);
                obs.emit(|| Event::Retransmission {
                    attempt,
                    seq: stamp.seq,
                    lamport: stamp.lamport,
                });
            }
            let frame = agent.initial_message().encode();
            telemetry.user_msgs += 1;
            telemetry.user_bytes += frame.len();
            let tx = stamper.send(agent_id);
            obs.emit(|| Event::FrameSent {
                bytes: frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            if loss_rng.random_range(0.0..1.0) < loss.drop_probability {
                stats.dropped_frames += 1;
                obs.emit(|| Event::FrameDropped {
                    bytes: frame.len() as u32,
                    seq: tx.seq,
                    lamport: tx.lamport,
                });
                continue;
            }
            let rx = stamper.receive(PLATFORM_SENDER, tx);
            obs.emit(|| Event::FrameReceived {
                bytes: frame.len() as u32,
                seq: rx.seq,
                lamport: rx.lamport,
            });
            match UserMsg::decode(frame).expect("self-encoded frame decodes") {
                UserMsg::Initial { user, route } => initial[user.index()] = route,
                other => panic!("expected Initial, got {other:?}"),
            }
            break;
        }
    }
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    for agent in agents.iter_mut() {
        let msg = platform.init_msg_for(agent.id);
        deliver_arq(
            agent,
            &msg,
            false,
            &mut loss_rng,
            loss,
            &mut stats,
            &mut telemetry,
            &mut stamper,
            obs,
        );
    }
    let mut converged = false;
    while platform.slots < max_slots {
        // Dirty-set poll, same as the lossless runtimes: only agents whose
        // standing reply may have changed are re-queried over the channel.
        for user in platform.dirty_users() {
            let msg = platform.counts_msg_for(user);
            let reply = deliver_arq(
                &mut agents[user.index()],
                &msg,
                true,
                &mut loss_rng,
                loss,
                &mut stats,
                &mut telemetry,
                &mut stamper,
                obs,
            )
            .expect("counts elicit a reply");
            obs.emit(|| Event::ResponseEvaluated {
                user: user.index() as u32,
                kind: ResponseKind::Best,
                improving: matches!(reply, UserMsg::Request { .. }),
            });
            platform.record_reply(user, &reply);
        }
        let requests = platform.collect_requests();
        if requests.is_empty() {
            converged = true;
            break;
        }
        let granted = platform.select(&requests);
        // Only granted users hear back; standing requests need no Deny.
        for &g in &granted {
            let user = requests[g].user;
            let reply = deliver_arq(
                &mut agents[user.index()],
                &PlatformMsg::Grant,
                true,
                &mut loss_rng,
                loss,
                &mut stats,
                &mut telemetry,
                &mut stamper,
                obs,
            )
            .expect("grant elicits an update confirmation");
            match reply {
                UserMsg::Updated { user, route } => platform.apply_update(user, route),
                other => panic!("expected Updated, got {other:?}"),
            }
        }
        obs.emit(|| Event::SlotCompleted {
            slot: platform.slots as u64,
            updated: granted.len() as u32,
            phi: platform.potential(),
            total_profit: platform.total_profit(),
        });
    }
    for agent in agents.iter_mut() {
        deliver_arq(
            agent,
            &PlatformMsg::Terminate,
            false,
            &mut loss_rng,
            loss,
            &mut stats,
            &mut telemetry,
            &mut stamper,
            obs,
        );
    }
    obs.emit(|| Event::RunCompleted {
        slots: platform.slots as u64,
        updates: platform.updates as u64,
        converged,
        phi: platform.potential(),
    });
    (
        RuntimeOutcome {
            slots: platform.slots,
            updates: platform.updates,
            profile: platform.into_profile(),
            converged,
            telemetry,
        },
        stats,
    )
}

/// Runs the protocol with periodic count refresh: agents receive fresh
/// `Counts` only every `refresh_every` slots and decide on their cached view
/// in between.
///
/// Stale beliefs alone would break the finite-improvement property (a move
/// that looks improving on old counts can lower the true potential, and the
/// dynamics can cycle). The platform therefore enforces two window rules on
/// stale slots: (1) each agent is granted at most one move per refresh
/// window, and (2) a granted move's affected task set must be disjoint from
/// everything already granted this window. Under those rules every granted
/// move's stale evaluation coincides with the truth, so the potential still
/// strictly increases and convergence is restored. Termination additionally
/// requires an empty request set **on a fresh-count slot**, so the final
/// profile is a Nash equilibrium.
pub fn run_stale(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    refresh_every: usize,
) -> RuntimeOutcome {
    run_stale_observed(
        game,
        scheduler,
        seed,
        max_slots,
        refresh_every,
        &Obs::disabled(),
    )
}

/// [`run_stale`] with an observability handle: frame events for every
/// exchanged frame (stale-slot self-computed requests count as uplink
/// frames, matching telemetry), `ResponseEvaluated` per agent decision,
/// `SlotCompleted` per slot and the engine's per-commit events.
pub fn run_stale_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    refresh_every: usize,
    obs: &Obs,
) -> RuntimeOutcome {
    assert!(refresh_every >= 1, "refresh period must be at least 1");
    let mut agents = spawn_agents(game, seed);
    let mut telemetry = Telemetry::default();
    let mut stamper = FrameStamper::new();
    let mut initial = vec![RouteId(0); game.user_count()];
    for agent in agents.iter() {
        let frame = agent.initial_message().encode();
        telemetry.user_msgs += 1;
        telemetry.user_bytes += frame.len();
        let tx = stamper.send(agent.id.index() as u32);
        obs.emit(|| Event::FrameSent {
            bytes: frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        let rx = stamper.receive(PLATFORM_SENDER, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        match UserMsg::decode(frame).expect("self-encoded frame decodes") {
            UserMsg::Initial { user, route } => initial[user.index()] = route,
            other => panic!("expected Initial, got {other:?}"),
        }
    }
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    let deliver = |agent: &mut UserAgent,
                   msg: &PlatformMsg,
                   telemetry: &mut Telemetry,
                   stamper: &mut FrameStamper| {
        let agent_id = agent.id.index() as u32;
        let frame = msg.encode();
        telemetry.platform_msgs += 1;
        telemetry.platform_bytes += frame.len();
        let tx = stamper.send(PLATFORM_SENDER);
        obs.emit(|| Event::FrameSent {
            bytes: frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        let rx = stamper.receive(agent_id, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        let reply = agent.handle(PlatformMsg::decode(frame).expect("decodes"));
        reply.map(|r| {
            let f = r.encode();
            telemetry.user_msgs += 1;
            telemetry.user_bytes += f.len();
            let tx = stamper.send(agent_id);
            obs.emit(|| Event::FrameSent {
                bytes: f.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            let rx = stamper.receive(PLATFORM_SENDER, tx);
            obs.emit(|| Event::FrameReceived {
                bytes: f.len() as u32,
                seq: rx.seq,
                lamport: rx.lamport,
            });
            UserMsg::decode(f).expect("decodes")
        })
    };
    for agent in agents.iter_mut() {
        let msg = platform.init_msg_for(agent.id);
        deliver(agent, &msg, &mut telemetry, &mut stamper);
    }
    let mut converged = false;
    let mut round = 0usize;
    // Window state: which users moved and which tasks were touched since the
    // last fresh broadcast.
    let mut moved = vec![false; game.user_count()];
    let mut touched = vec![false; game.task_count()];
    while platform.slots < max_slots {
        let fresh = round.is_multiple_of(refresh_every);
        round += 1;
        if fresh {
            moved.fill(false);
            touched.fill(false);
        }
        let mut requests = Vec::new();
        let mut requesters = Vec::new();
        for agent in agents.iter_mut() {
            let reply = if fresh {
                let msg = platform.counts_msg_for(agent.id);
                deliver(agent, &msg, &mut telemetry, &mut stamper).expect("counts elicit a reply")
            } else {
                // Stale slot: the agent recomputes from its cached counts;
                // no platform frame is sent.
                let reply = agent.compute_request();
                let f = reply.encode();
                telemetry.user_msgs += 1;
                telemetry.user_bytes += f.len();
                let tx = stamper.send(agent.id.index() as u32);
                obs.emit(|| Event::FrameSent {
                    bytes: f.len() as u32,
                    seq: tx.seq,
                    lamport: tx.lamport,
                });
                let rx = stamper.receive(PLATFORM_SENDER, tx);
                obs.emit(|| Event::FrameReceived {
                    bytes: f.len() as u32,
                    seq: rx.seq,
                    lamport: rx.lamport,
                });
                UserMsg::decode(f).expect("decodes")
            };
            obs.emit(|| Event::ResponseEvaluated {
                user: agent.id.index() as u32,
                kind: ResponseKind::Best,
                improving: matches!(reply, UserMsg::Request { .. }),
            });
            if let Some(req) = PlatformState::to_request(&reply) {
                // Window rules: on stale information, only first moves over
                // untouched tasks are eligible — their stale evaluation is
                // exact, preserving the potential argument.
                let eligible = fresh
                    || (!moved[req.user.index()]
                        && req.affected_tasks.iter().all(|t| !touched[t.index()]));
                if eligible {
                    requesters.push(agent.id);
                    requests.push(req);
                } else {
                    // The ineligible request came from this very agent.
                    debug_assert_eq!(req.user, agent.id);
                    deliver(agent, &PlatformMsg::Deny, &mut telemetry, &mut stamper);
                }
            }
        }
        if requests.is_empty() {
            if fresh {
                converged = true;
                break;
            }
            continue; // quiet on stale info proves nothing; refresh and retry
        }
        let granted = platform.select(&requests);
        let granted_users: Vec<UserId> = granted.iter().map(|&g| requests[g].user).collect();
        for req in granted.iter().map(|&g| &requests[g]) {
            moved[req.user.index()] = true;
            for t in &req.affected_tasks {
                touched[t.index()] = true;
            }
        }
        for &user in &requesters {
            let verdict = if granted_users.contains(&user) {
                PlatformMsg::Grant
            } else {
                PlatformMsg::Deny
            };
            let agent = &mut agents[user.index()];
            if let Some(UserMsg::Updated { user, route }) =
                deliver(agent, &verdict, &mut telemetry, &mut stamper)
            {
                platform.apply_update(user, route);
            }
        }
        obs.emit(|| Event::SlotCompleted {
            slot: platform.slots as u64,
            updated: granted_users.len() as u32,
            phi: platform.potential(),
            total_profit: platform.total_profit(),
        });
    }
    for agent in agents.iter_mut() {
        deliver(agent, &PlatformMsg::Terminate, &mut telemetry, &mut stamper);
    }
    obs.emit(|| Event::RunCompleted {
        slots: platform.slots as u64,
        updates: platform.updates as u64,
        converged,
        phi: platform.potential(),
    });
    RuntimeOutcome {
        slots: platform.slots,
        updates: platform.updates,
        profile: platform.into_profile(),
        converged,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync_runtime::run_sync;
    use vcs_core::examples::fig1_instance;
    use vcs_core::response::is_nash;

    #[test]
    fn lossy_run_matches_lossless_outcome() {
        let game = fig1_instance();
        let mut total_dropped = 0;
        for seed in 0..5u64 {
            let lossless = run_sync(&game, SchedulerKind::Puu, seed, 10_000);
            let (lossy, stats) = run_lossy(
                &game,
                SchedulerKind::Puu,
                seed,
                10_000,
                &LossConfig::hostile(seed.wrapping_add(99)),
            );
            assert_eq!(lossy.profile, lossless.profile, "seed {seed}");
            assert_eq!(lossy.slots, lossless.slots);
            assert_eq!(lossy.updates, lossless.updates);
            // Every drop costs exactly one retransmission, and each
            // retransmission re-sends one or two frames (request leg alone,
            // or request + re-elicited reply), all visible in telemetry.
            assert_eq!(stats.dropped_frames, stats.retransmissions);
            let extra = lossy.telemetry.total_msgs() - lossless.telemetry.total_msgs();
            assert!(
                extra >= stats.retransmissions && extra <= 2 * stats.retransmissions,
                "seed {seed}: {extra} extra frames for {} retransmissions",
                stats.retransmissions
            );
            total_dropped += stats.dropped_frames;
        }
        // A single short run can survive a 20% channel unscathed (fig. 1
        // converges within a handful of frames), but five hostile seeds in a
        // row cannot all come through clean.
        assert!(total_dropped > 0, "loss process never fired across 5 seeds");
    }

    #[test]
    fn lossless_loss_config_is_identity() {
        let game = fig1_instance();
        let loss = LossConfig {
            drop_probability: 0.0,
            seed: 1,
            max_retries: 0,
        };
        let (lossy, stats) = run_lossy(&game, SchedulerKind::Suu, 3, 10_000, &loss);
        let reference = run_sync(&game, SchedulerKind::Suu, 3, 10_000);
        assert_eq!(lossy, reference);
        assert_eq!(stats, LossStats::default());
    }

    #[test]
    fn stale_runs_still_reach_nash() {
        let game = fig1_instance();
        for refresh in [1usize, 2, 4] {
            for seed in 0..5u64 {
                let out = run_stale(&game, SchedulerKind::Suu, seed, 10_000, refresh);
                assert!(out.converged, "refresh {refresh}, seed {seed}");
                assert!(
                    is_nash(&game, &out.profile),
                    "stale run off-equilibrium (refresh {refresh}, seed {seed})"
                );
            }
        }
    }

    #[test]
    fn refresh_one_equals_sync_runtime() {
        let game = fig1_instance();
        let stale = run_stale(&game, SchedulerKind::Puu, 7, 10_000, 1);
        let sync = run_sync(&game, SchedulerKind::Puu, 7, 10_000);
        assert_eq!(stale.profile, sync.profile);
        assert_eq!(stale.slots, sync.slots);
    }

    #[test]
    #[should_panic(expected = "drop probability must lie in [0, 1)")]
    fn invalid_drop_probability_rejected() {
        let game = fig1_instance();
        let loss = LossConfig {
            drop_probability: 1.0,
            seed: 0,
            max_retries: 10,
        };
        let _ = run_lossy(&game, SchedulerKind::Suu, 0, 10, &loss);
    }
}
