//! Multi-threaded runtime: one OS thread per user agent plus the platform on
//! the calling thread, exchanging **encoded byte frames** over crossbeam
//! channels — the in-process analogue of the networked deployment the paper
//! sketches (each user's smartphone runs Alg. 1, the platform runs Alg. 2).
//!
//! The protocol is slot-synchronous: the platform broadcasts `Counts`, waits
//! for exactly one reply per agent, grants/denies, and waits for the granted
//! agents' confirmations. Because replies are keyed by user id, thread
//! scheduling cannot change the outcome — the run is bit-identical to
//! [`crate::sync_runtime::run_sync`] with the same seed (tested in the
//! workspace integration tests).

use crate::agent::UserAgent;
use crate::platform::{PlatformState, SchedulerKind};
use crate::protocol::{PlatformMsg, UserMsg};
use crate::sync_runtime::{spawn_agents, ChurnOutcome, RuntimeOutcome, Telemetry};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{ChurnEvent, Game};
use vcs_obs::{Event, FrameStamper, LiveMonitor, Obs, ResponseKind, SpanKind, PLATFORM_SENDER};

/// Per-agent mailbox pair: platform keeps the senders, agents the receivers.
struct AgentLink {
    to_agent: Sender<Bytes>,
    // Agents send (user, frame) to a shared platform inbox.
}

/// Runs the agent event loop on its own thread until `Terminate`.
/// `announce` sends the initial decision first (Alg. 1 line 4) — start-up
/// agents announce; agents joining mid-game already shipped their initial
/// choice inside the `Join` frame.
fn agent_thread(
    mut agent: UserAgent,
    inbox: Receiver<Bytes>,
    outbox: Sender<(UserId, Bytes)>,
    trace: Arc<Mutex<Vec<(UserId, &'static str)>>>,
    announce: bool,
) {
    if announce {
        outbox
            .send((agent.id, agent.initial_message().encode()))
            .expect("platform inbox open");
    }
    while let Ok(frame) = inbox.recv() {
        let msg = PlatformMsg::decode(frame).expect("well-formed platform frame");
        let terminate = matches!(msg, PlatformMsg::Terminate);
        if let Some(reply) = agent.handle(msg) {
            let kind = match reply {
                UserMsg::Request { .. } => "request",
                UserMsg::NoRequest { .. } => "no-request",
                UserMsg::Updated { .. } => "updated",
                UserMsg::Initial { .. } => "initial",
                UserMsg::Join { .. } => "join",
                UserMsg::Leave { .. } => "leave",
            };
            trace.lock().push((agent.id, kind));
            outbox
                .send((agent.id, reply.encode()))
                .expect("platform inbox open");
        }
        if terminate {
            break;
        }
    }
}

/// Runs the full protocol with one thread per user agent.
///
/// `seed` drives the same initial decisions and scheduler draws as
/// [`run_sync`](crate::sync_runtime::run_sync); the outcome is identical.
pub fn run_threaded(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
) -> RuntimeOutcome {
    run_threaded_observed(game, scheduler, seed, max_slots, &Obs::disabled())
}

/// [`run_threaded`] with an observability handle: frame-level TX/RX events
/// for every channel frame, `ResponseEvaluated` per dirty-agent reply,
/// `SlotCompleted` per decision slot and the engine's per-commit events.
/// Events are emitted from the platform thread only, so a subscriber sees
/// the same deterministic order as the sync runtime's slot structure.
pub fn run_threaded_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    obs: &Obs,
) -> RuntimeOutcome {
    let m = game.user_count();
    let agents = spawn_agents(game, seed);
    let mut telemetry = Telemetry::default();
    let (to_platform, platform_inbox) = unbounded::<(UserId, Bytes)>();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let mut links: Vec<AgentLink> = Vec::with_capacity(m);
    let mut handles = Vec::with_capacity(m);
    for agent in agents {
        let (tx, rx) = unbounded::<Bytes>();
        links.push(AgentLink { to_agent: tx });
        let outbox = to_platform.clone();
        let trace = Arc::clone(&trace);
        handles.push(std::thread::spawn(move || {
            agent_thread(agent, rx, outbox, trace, true)
        }));
    }
    drop(to_platform);

    // Causal stamps are platform-side bookkeeping: the platform thread is
    // the only emitter, so it stamps uplink frames at receipt on the
    // sender's behalf — deterministic per seed, same protocol as the sync
    // runtime.
    let mut stamper = FrameStamper::new();
    // Collect exactly one frame per agent, keyed by user id, counting bytes.
    let collect_round = |inbox: &Receiver<(UserId, Bytes)>,
                         expect: usize,
                         telemetry: &mut Telemetry,
                         stamper: &mut FrameStamper|
     -> Vec<(UserId, UserMsg)> {
        let mut out: Vec<(UserId, UserMsg)> = Vec::with_capacity(expect);
        for _ in 0..expect {
            let (user, frame) = obs.time(SpanKind::ChannelWait, || {
                inbox.recv().expect("agents alive")
            });
            telemetry.user_msgs += 1;
            telemetry.user_bytes += frame.len();
            let tx = stamper.send(user.index() as u32);
            obs.emit(|| Event::FrameSent {
                bytes: frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            let rx = stamper.receive(PLATFORM_SENDER, tx);
            obs.emit(|| Event::FrameReceived {
                bytes: frame.len() as u32,
                seq: rx.seq,
                lamport: rx.lamport,
            });
            let msg = obs.time(SpanKind::FrameDecode, || {
                UserMsg::decode(frame).expect("well-formed user frame")
            });
            out.push((user, msg));
        }
        out.sort_by_key(|&(user, _)| user);
        out
    };
    // Send a platform frame to `user`, counting it.
    let send_counted = |link: &AgentLink,
                        user: u32,
                        frame: Bytes,
                        telemetry: &mut Telemetry,
                        stamper: &mut FrameStamper| {
        telemetry.platform_msgs += 1;
        telemetry.platform_bytes += frame.len();
        let tx = stamper.send(PLATFORM_SENDER);
        obs.emit(|| Event::FrameSent {
            bytes: frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        let rx = stamper.receive(user, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        link.to_agent.send(frame).expect("agent alive");
    };
    // Encode a platform message under a FrameEncode span.
    let encode_timed = |msg: &PlatformMsg| obs.time(SpanKind::FrameEncode, || msg.encode());

    // Alg. 2 line 2: initial decisions.
    let initial_msgs = collect_round(&platform_inbox, m, &mut telemetry, &mut stamper);
    let mut initial = vec![RouteId(0); m];
    for (user, msg) in initial_msgs {
        match msg {
            UserMsg::Initial { route, .. } => initial[user.index()] = route,
            other => panic!("expected Initial, got {other:?}"),
        }
    }
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    for (i, link) in links.iter().enumerate() {
        let msg = platform.init_msg_for(UserId::from_index(i));
        send_counted(
            link,
            i as u32,
            encode_timed(&msg),
            &mut telemetry,
            &mut stamper,
        );
    }

    let mut converged = false;
    while platform.slots < max_slots {
        // A poll round that yields no request terminates the run — not a
        // decision slot, so the span is cancelled on that path.
        let slot_span = obs.span(SpanKind::Slot);
        // Poll only the dirty agents; everyone else's standing request is
        // reused from the platform cache (no frames exchanged).
        let dirty = platform.dirty_users();
        for &user in &dirty {
            let msg = platform.counts_msg_for(user);
            send_counted(
                &links[user.index()],
                user.index() as u32,
                encode_timed(&msg),
                &mut telemetry,
                &mut stamper,
            );
        }
        let replies = collect_round(&platform_inbox, dirty.len(), &mut telemetry, &mut stamper);
        for (user, msg) in &replies {
            obs.emit(|| Event::ResponseEvaluated {
                user: user.index() as u32,
                kind: ResponseKind::Best,
                improving: matches!(msg, UserMsg::Request { .. }),
            });
            platform.record_reply(*user, msg);
        }
        let requests = platform.collect_requests();
        if requests.is_empty() {
            converged = true;
            slot_span.cancel();
            break;
        }
        let granted = platform.select(&requests);
        let granted_users: Vec<UserId> = granted.iter().map(|&g| requests[g].user).collect();
        // Only granted users hear back; standing requests need no Deny.
        for &user in &granted_users {
            send_counted(
                &links[user.index()],
                user.index() as u32,
                encode_timed(&PlatformMsg::Grant),
                &mut telemetry,
                &mut stamper,
            );
        }
        let confirmations = collect_round(
            &platform_inbox,
            granted_users.len(),
            &mut telemetry,
            &mut stamper,
        );
        for (_, msg) in confirmations {
            match msg {
                UserMsg::Updated { user, route } => platform.apply_update(user, route),
                other => panic!("expected Updated, got {other:?}"),
            }
        }
        slot_span.finish();
        obs.emit(|| Event::SlotCompleted {
            slot: platform.slots as u64,
            updated: granted_users.len() as u32,
            phi: platform.potential(),
            total_profit: platform.total_profit(),
        });
    }
    for (i, link) in links.iter().enumerate() {
        send_counted(
            link,
            i as u32,
            encode_timed(&PlatformMsg::Terminate),
            &mut telemetry,
            &mut stamper,
        );
    }
    for handle in handles {
        handle.join().expect("agent thread panicked");
    }
    obs.emit(|| Event::RunCompleted {
        slots: platform.slots as u64,
        updates: platform.updates as u64,
        converged,
        phi: platform.potential(),
    });
    RuntimeOutcome {
        slots: platform.slots,
        updates: platform.updates,
        profile: platform.into_profile(),
        converged,
        telemetry,
    }
}

/// Runs the churn-enabled protocol with one thread per *live* user agent:
/// agents joining mid-game get their own freshly spawned thread, leaving
/// agents are terminated and joined. Bit-identical to
/// [`run_sync_churn`](crate::sync_runtime::run_sync_churn) for the same seed
/// and event stream (tested in the workspace integration tests).
pub fn run_threaded_churn(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots_per_epoch: usize,
    epochs: &[Vec<ChurnEvent>],
) -> ChurnOutcome {
    run_threaded_churn_observed(
        game,
        scheduler,
        seed,
        max_slots_per_epoch,
        epochs,
        &Obs::disabled(),
    )
}

/// [`run_threaded_churn`] with an observability handle: everything
/// [`run_threaded_observed`] emits plus `EpochStarted` / `EpochConverged`
/// around every re-convergence phase and the engine's join/leave events.
pub fn run_threaded_churn_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots_per_epoch: usize,
    epochs: &[Vec<ChurnEvent>],
    obs: &Obs,
) -> ChurnOutcome {
    let m = game.user_count();
    let agents = spawn_agents(game, seed);
    let mut telemetry = Telemetry::default();
    let (to_platform, platform_inbox) = unbounded::<(UserId, Bytes)>();
    let trace = Arc::new(Mutex::new(Vec::new()));
    let mut links: Vec<Option<AgentLink>> = Vec::with_capacity(m);
    let mut handles: Vec<Option<std::thread::JoinHandle<()>>> = Vec::with_capacity(m);
    for agent in agents {
        let (tx, rx) = unbounded::<Bytes>();
        links.push(Some(AgentLink { to_agent: tx }));
        let outbox = to_platform.clone();
        let trace = Arc::clone(&trace);
        handles.push(Some(std::thread::spawn(move || {
            agent_thread(agent, rx, outbox, trace, true)
        })));
    }

    let mut stamper = FrameStamper::new();
    let collect_round = |inbox: &Receiver<(UserId, Bytes)>,
                         expect: usize,
                         telemetry: &mut Telemetry,
                         stamper: &mut FrameStamper|
     -> Vec<(UserId, UserMsg)> {
        let mut out: Vec<(UserId, UserMsg)> = Vec::with_capacity(expect);
        for _ in 0..expect {
            let (user, frame) = obs.time(SpanKind::ChannelWait, || {
                inbox.recv().expect("agents alive")
            });
            telemetry.user_msgs += 1;
            telemetry.user_bytes += frame.len();
            let tx = stamper.send(user.index() as u32);
            obs.emit(|| Event::FrameSent {
                bytes: frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            let rx = stamper.receive(PLATFORM_SENDER, tx);
            obs.emit(|| Event::FrameReceived {
                bytes: frame.len() as u32,
                seq: rx.seq,
                lamport: rx.lamport,
            });
            let msg = obs.time(SpanKind::FrameDecode, || {
                UserMsg::decode(frame).expect("well-formed user frame")
            });
            out.push((user, msg));
        }
        out.sort_by_key(|&(user, _)| user);
        out
    };
    let send_counted = |link: &AgentLink,
                        user: u32,
                        frame: Bytes,
                        telemetry: &mut Telemetry,
                        stamper: &mut FrameStamper| {
        telemetry.platform_msgs += 1;
        telemetry.platform_bytes += frame.len();
        let tx = stamper.send(PLATFORM_SENDER);
        obs.emit(|| Event::FrameSent {
            bytes: frame.len() as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        let rx = stamper.receive(user, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: frame.len() as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        link.to_agent.send(frame).expect("agent alive");
    };
    let encode_timed = |msg: &PlatformMsg| obs.time(SpanKind::FrameEncode, || msg.encode());

    let initial_msgs = collect_round(&platform_inbox, m, &mut telemetry, &mut stamper);
    let mut initial = vec![RouteId(0); m];
    for (user, msg) in initial_msgs {
        match msg {
            UserMsg::Initial { route, .. } => initial[user.index()] = route,
            other => panic!("expected Initial, got {other:?}"),
        }
    }
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    for (i, link) in links.iter().enumerate() {
        let msg = platform.init_msg_for(UserId::from_index(i));
        send_counted(
            link.as_ref().expect("start-up agent"),
            i as u32,
            encode_timed(&msg),
            &mut telemetry,
            &mut stamper,
        );
    }

    // The improvement loop of one epoch: identical message pattern to
    // `run_threaded`, bounded by a per-epoch slot budget.
    let drive = |platform: &mut PlatformState<'_>,
                 links: &[Option<AgentLink>],
                 telemetry: &mut Telemetry,
                 stamper: &mut FrameStamper|
     -> (usize, bool) {
        let start = platform.slots;
        let mut converged = false;
        while platform.slots - start < max_slots_per_epoch {
            let slot_span = obs.span(SpanKind::Slot);
            let dirty = platform.dirty_users();
            for &user in &dirty {
                let msg = platform.counts_msg_for(user);
                let link = links[user.index()].as_ref().expect("dirty user is active");
                send_counted(
                    link,
                    user.index() as u32,
                    encode_timed(&msg),
                    telemetry,
                    stamper,
                );
            }
            let replies = collect_round(&platform_inbox, dirty.len(), telemetry, stamper);
            for (user, msg) in &replies {
                obs.emit(|| Event::ResponseEvaluated {
                    user: user.index() as u32,
                    kind: ResponseKind::Best,
                    improving: matches!(msg, UserMsg::Request { .. }),
                });
                platform.record_reply(*user, msg);
            }
            let requests = platform.collect_requests();
            if requests.is_empty() {
                converged = true;
                slot_span.cancel();
                break;
            }
            let granted = platform.select(&requests);
            let granted_users: Vec<UserId> = granted.iter().map(|&g| requests[g].user).collect();
            for &user in &granted_users {
                let link = links[user.index()]
                    .as_ref()
                    .expect("granted user is active");
                send_counted(
                    link,
                    user.index() as u32,
                    encode_timed(&PlatformMsg::Grant),
                    telemetry,
                    stamper,
                );
            }
            let confirmations =
                collect_round(&platform_inbox, granted_users.len(), telemetry, stamper);
            for (_, msg) in confirmations {
                match msg {
                    UserMsg::Updated { user, route } => platform.apply_update(user, route),
                    other => panic!("expected Updated, got {other:?}"),
                }
            }
            slot_span.finish();
            obs.emit(|| Event::SlotCompleted {
                slot: platform.slots as u64,
                updated: granted_users.len() as u32,
                phi: platform.potential(),
                total_profit: platform.total_profit(),
            });
        }
        (platform.slots - start, converged)
    };

    let mut epoch_slots = Vec::with_capacity(epochs.len() + 1);
    let mut converged = true;
    obs.emit(|| Event::EpochStarted {
        epoch: 0,
        joins: 0,
        leaves: 0,
        active: platform.active_count() as u32,
    });
    let (slots, ok) = obs.time(SpanKind::EpochReconverge, || {
        drive(&mut platform, &links, &mut telemetry, &mut stamper)
    });
    epoch_slots.push(slots);
    converged &= ok;
    obs.emit(|| Event::EpochConverged {
        epoch: 0,
        slots: slots as u64,
        converged: ok,
        phi: platform.potential(),
    });
    for (epoch_idx, batch) in epochs.iter().enumerate() {
        let mut joins = 0u32;
        let mut leaves = 0u32;
        for event in batch {
            let frame = obs.time(SpanKind::FrameEncode, || {
                UserMsg::from_churn(event).encode()
            });
            telemetry.user_msgs += 1;
            telemetry.user_bytes += frame.len();
            // A `Join` frame comes from the arriving vehicle (which will be
            // numbered `links.len()`); a `Leave` from the departing user.
            let sender = match event {
                ChurnEvent::Join { .. } => links.len() as u32,
                ChurnEvent::Leave { user } => user.index() as u32,
            };
            let tx = stamper.send(sender);
            obs.emit(|| Event::FrameSent {
                bytes: frame.len() as u32,
                seq: tx.seq,
                lamport: tx.lamport,
            });
            let rx = stamper.receive(PLATFORM_SENDER, tx);
            obs.emit(|| Event::FrameReceived {
                bytes: frame.len() as u32,
                seq: rx.seq,
                lamport: rx.lamport,
            });
            let msg = obs.time(SpanKind::FrameDecode, || {
                UserMsg::decode(frame).expect("self-encoded frame decodes")
            });
            match platform
                .apply_churn_msg(&msg)
                .expect("stream events are valid")
            {
                Some(joined) => {
                    joins += 1;
                    let UserMsg::Join { spec, initial } = msg else {
                        unreachable!("join returned an id")
                    };
                    let agent = UserAgent::new(
                        joined,
                        spec.prefs,
                        &spec.routes,
                        game.params().phi,
                        game.params().theta,
                        initial,
                    );
                    let (tx, rx) = unbounded::<Bytes>();
                    let outbox = to_platform.clone();
                    let trace = Arc::clone(&trace);
                    debug_assert_eq!(links.len(), joined.index());
                    links.push(Some(AgentLink { to_agent: tx }));
                    handles.push(Some(std::thread::spawn(move || {
                        agent_thread(agent, rx, outbox, trace, false)
                    })));
                    let init = platform.init_msg_for(joined);
                    send_counted(
                        links[joined.index()].as_ref().expect("just linked"),
                        joined.index() as u32,
                        encode_timed(&init),
                        &mut telemetry,
                        &mut stamper,
                    );
                }
                None => {
                    leaves += 1;
                    let UserMsg::Leave { user } = msg else {
                        unreachable!("leave returns no id")
                    };
                    let link = links[user.index()].take().expect("leaving agent exists");
                    send_counted(
                        &link,
                        user.index() as u32,
                        encode_timed(&PlatformMsg::Terminate),
                        &mut telemetry,
                        &mut stamper,
                    );
                    drop(link);
                    handles[user.index()]
                        .take()
                        .expect("leaving agent has a thread")
                        .join()
                        .expect("agent thread panicked");
                }
            }
        }
        let epoch = (epoch_idx + 1) as u32;
        obs.emit(|| Event::EpochStarted {
            epoch,
            joins,
            leaves,
            active: platform.active_count() as u32,
        });
        let (slots, ok) = obs.time(SpanKind::EpochReconverge, || {
            drive(&mut platform, &links, &mut telemetry, &mut stamper)
        });
        epoch_slots.push(slots);
        converged &= ok;
        obs.emit(|| Event::EpochConverged {
            epoch,
            slots: slots as u64,
            converged: ok,
            phi: platform.potential(),
        });
    }
    drop(to_platform);
    for (i, link) in links.iter().enumerate() {
        let Some(link) = link else { continue };
        send_counted(
            link,
            i as u32,
            encode_timed(&PlatformMsg::Terminate),
            &mut telemetry,
            &mut stamper,
        );
    }
    for handle in handles.iter_mut().filter_map(Option::take) {
        handle.join().expect("agent thread panicked");
    }
    let (game, choices, id_map) = platform.materialize();
    ChurnOutcome {
        game,
        choices,
        id_map,
        epoch_slots,
        updates: platform.updates,
        converged,
        telemetry,
    }
}

/// [`run_threaded_observed`] with a live `/metrics` endpoint: binds a
/// [`LiveMonitor`] on `addr` (use `"127.0.0.1:0"` for an ephemeral port),
/// runs the protocol under its [`vcs_obs::StatsSubscriber`], and returns
/// the outcome together with the still-serving monitor — callers can
/// scrape the run while it is in flight (the exporter thread answers off
/// relaxed atomics) and take a final scrape or
/// [`stats()`](LiveMonitor::stats) snapshot afterwards. The endpoint shuts
/// down when the monitor is dropped.
pub fn run_threaded_monitored(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    addr: impl std::net::ToSocketAddrs,
) -> std::io::Result<(RuntimeOutcome, LiveMonitor)> {
    let monitor = LiveMonitor::bind(addr)?;
    let outcome = run_threaded_observed(game, scheduler, seed, max_slots, &monitor.obs());
    Ok((outcome, monitor))
}

/// [`run_threaded_churn_observed`] with a live `/metrics` endpoint (see
/// [`run_threaded_monitored`]).
pub fn run_threaded_churn_monitored(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots_per_epoch: usize,
    epochs: &[Vec<ChurnEvent>],
    addr: impl std::net::ToSocketAddrs,
) -> std::io::Result<(ChurnOutcome, LiveMonitor)> {
    let monitor = LiveMonitor::bind(addr)?;
    let outcome = run_threaded_churn_observed(
        game,
        scheduler,
        seed,
        max_slots_per_epoch,
        epochs,
        &monitor.obs(),
    );
    Ok((outcome, monitor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync_runtime::run_sync;
    use vcs_core::examples::fig1_instance;
    use vcs_core::response::is_nash;

    #[test]
    fn threaded_reaches_nash() {
        let game = fig1_instance();
        let out = run_threaded(&game, SchedulerKind::Puu, 11, 10_000);
        assert!(out.converged);
        assert!(is_nash(&game, &out.profile));
    }

    #[test]
    fn threaded_matches_sync_bit_for_bit() {
        let game = fig1_instance();
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            for seed in 0..6u64 {
                let sync = run_sync(&game, scheduler, seed, 10_000);
                let threaded = run_threaded(&game, scheduler, seed, 10_000);
                assert_eq!(sync, threaded, "divergence at seed {seed}");
            }
        }
    }

    #[test]
    fn threaded_churn_matches_sync_churn() {
        let game = fig1_instance();
        let epochs = crate::sync_runtime::tests::fig1_stream();
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            for seed in 0..4u64 {
                let sync =
                    crate::sync_runtime::run_sync_churn(&game, scheduler, seed, 10_000, &epochs);
                let threaded = run_threaded_churn(&game, scheduler, seed, 10_000, &epochs);
                assert_eq!(sync, threaded, "churn divergence at seed {seed}");
                assert!(threaded.converged);
            }
        }
    }
}
