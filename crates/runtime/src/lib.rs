//! # vcs-runtime — distributed execution substrate
//!
//! The paper's algorithms are *distributed*: Alg. 1 runs on each user's
//! smartphone against local information only, Alg. 2 on the platform. This
//! crate implements that split literally:
//!
//! * [`protocol`] — the platform↔user message set with a compact binary
//!   codec over [`bytes`] frames;
//! * [`agent::UserAgent`] — the user-side state machine (local profit
//!   evaluation, best-route-set computation, request/grant handling);
//! * [`platform::PlatformState`] — the platform-side bookkeeping and the
//!   SUU/PUU scheduling step;
//! * [`sync_runtime::run_sync`] — single-thread reference execution of the
//!   protocol (frames still pass through the codec);
//! * [`threaded::run_threaded`] — one OS thread per agent over crossbeam
//!   channels, slot-synchronous and bit-identical to the sync runtime;
//! * [`resilience`] — the protocol under message loss (stop-and-wait
//!   retransmission, provably outcome-preserving) and under stale
//!   information (periodic count refresh, still Nash-terminating).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod net;
pub mod platform;
pub mod protocol;
pub mod resilience;
pub mod serve;
pub mod sync_runtime;
pub mod threaded;

pub use agent::{LocalRoute, UserAgent};
pub use platform::{PlatformState, SchedulerKind};
pub use protocol::{CodecError, PlatformMsg, UserMsg};
pub use resilience::{
    run_lossy, run_lossy_observed, run_stale, run_stale_observed, LossConfig, LossStats,
};
pub use serve::{
    RejectReason, ServeReply, ServeReplyBody, ServeRequest, ServeRequestBody, ANY_SHARD,
};
pub use sync_runtime::{
    run_sync, run_sync_churn, run_sync_churn_observed, run_sync_observed, ChurnOutcome,
    RuntimeOutcome, Telemetry,
};
pub use threaded::{
    run_threaded, run_threaded_churn, run_threaded_churn_monitored, run_threaded_churn_observed,
    run_threaded_monitored, run_threaded_observed,
};
