//! The user-side agent of Algorithm 1.
//!
//! A [`UserAgent`] holds **only local information**: its preference weights,
//! its recommended routes (covered task ids, detour, congestion) and the task
//! reward parameters + participant counts the platform shares for its covered
//! tasks. From that it evaluates profits and computes its best route set —
//! the distributed counterpart of `vcs_core::response::best_route_set`, whose
//! equivalence is checked by tests.

use crate::protocol::{PlatformMsg, UserMsg};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::response::EPSILON;
use vcs_core::{Route, UserPrefs};

/// Local description of a recommended route (what the navigation app shows).
#[derive(Debug, Clone, PartialEq)]
pub struct LocalRoute {
    /// Covered task ids.
    pub tasks: Vec<TaskId>,
    /// Detour cost `d(r) = φ·h(r)` as delivered by the platform (Alg. 1
    /// line 7 sends `d(r)` and `b(r)` ready-scaled).
    pub detour_cost: f64,
    /// Congestion cost `b(r) = θ·c(r)`.
    pub congestion_cost: f64,
}

/// The state machine of one mobile user.
#[derive(Debug, Clone)]
pub struct UserAgent {
    /// This user's identifier.
    pub id: UserId,
    /// Preference weights `(α, β, γ)`.
    pub prefs: UserPrefs,
    /// The recommended route set, as local route descriptions.
    pub routes: Vec<LocalRoute>,
    /// Currently selected route.
    pub current: RouteId,
    /// Reward parameters `(a_k, μ_k)` for covered tasks, indexed by task.
    task_info: Vec<(TaskId, f64, f64)>,
    /// Last received participant counts for covered tasks.
    counts: Vec<(TaskId, u32)>,
    /// The pending request (route we asked to switch to), if any.
    pending: Option<RouteId>,
}

impl UserAgent {
    /// Creates an agent from the game-side user description, scaling route
    /// costs by the platform weights exactly as Alg. 1 line 7 delivers them.
    pub fn new(
        id: UserId,
        prefs: UserPrefs,
        routes: &[Route],
        phi: f64,
        theta: f64,
        initial: RouteId,
    ) -> Self {
        let local = routes
            .iter()
            .map(|r| LocalRoute {
                tasks: r.tasks.clone(),
                detour_cost: phi * r.detour,
                congestion_cost: theta * r.congestion,
            })
            .collect();
        Self {
            id,
            prefs,
            routes: local,
            current: initial,
            task_info: Vec::new(),
            counts: Vec::new(),
            pending: None,
        }
    }

    /// The initial decision message (Alg. 1 line 4).
    pub fn initial_message(&self) -> UserMsg {
        UserMsg::Initial {
            user: self.id,
            route: self.current,
        }
    }

    /// Ingests a platform message, returning the reply to send (if any).
    pub fn handle(&mut self, msg: PlatformMsg) -> Option<UserMsg> {
        match msg {
            PlatformMsg::Init { tasks, counts } => {
                self.task_info = tasks;
                self.counts = counts;
                None
            }
            PlatformMsg::Counts { counts } => {
                self.counts = counts;
                Some(self.compute_request())
            }
            PlatformMsg::Grant => {
                // Idempotent: a duplicated Grant (retransmission after a lost
                // confirmation) re-acknowledges the already-applied route.
                let route = self.pending.take().unwrap_or(self.current);
                self.current = route;
                Some(UserMsg::Updated {
                    user: self.id,
                    route,
                })
            }
            PlatformMsg::Deny => {
                self.pending = None;
                None
            }
            PlatformMsg::Terminate => None,
        }
    }

    fn count_of(&self, task: TaskId) -> u32 {
        self.counts
            .iter()
            .find(|&&(t, _)| t == task)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    }

    fn reward_params(&self, task: TaskId) -> (f64, f64) {
        self.task_info
            .iter()
            .find(|&&(t, _, _)| t == task)
            .map(|&(_, a, mu)| (a, mu))
            .expect("platform sent parameters for every covered task")
    }

    fn share(&self, task: TaskId, n: u32) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let (a, mu) = self.reward_params(task);
        (a + mu * f64::from(n).ln()) / f64::from(n)
    }

    /// Profit of route `candidate` under the latest counts, assuming the
    /// agent currently sits on `self.current` (Eq. 2, evaluated locally).
    pub fn profit_of(&self, candidate: RouteId) -> f64 {
        let current = &self.routes[self.current.index()];
        let cand = &self.routes[candidate.index()];
        let mut reward = 0.0;
        for &task in &cand.tasks {
            let n = self.count_of(task);
            let n_eff = if current.tasks.contains(&task) {
                n
            } else {
                n + 1
            };
            reward += self.share(task, n_eff);
        }
        self.prefs.alpha * reward
            - self.prefs.beta * cand.detour_cost
            - self.prefs.gamma * cand.congestion_cost
    }

    /// Computes the best route set `Δ_i(t)` locally and produces either an
    /// update request (remembering it as pending) or a no-request notice.
    pub fn compute_request(&mut self) -> UserMsg {
        let current_profit = self.profit_of(self.current);
        let mut best = self.current;
        let mut best_profit = current_profit;
        for r in 0..self.routes.len() {
            let candidate = RouteId::from_index(r);
            if candidate == self.current {
                continue;
            }
            let p = self.profit_of(candidate);
            if p > best_profit + EPSILON {
                best = candidate;
                best_profit = p;
            }
        }
        if best == self.current {
            self.pending = None;
            return UserMsg::NoRequest { user: self.id };
        }
        let gain = best_profit - current_profit;
        let mut affected: Vec<TaskId> = self.routes[self.current.index()]
            .tasks
            .iter()
            .chain(self.routes[best.index()].tasks.iter())
            .copied()
            .collect();
        affected.sort_unstable();
        affected.dedup();
        self.pending = Some(best);
        UserMsg::Request {
            user: self.id,
            new_route: best,
            gain,
            tau: gain / self.prefs.alpha,
            affected,
        }
    }

    /// The set of task ids covered by any of the agent's routes, sorted.
    pub fn covered_tasks(&self) -> Vec<TaskId> {
        let mut tasks: Vec<TaskId> = self
            .routes
            .iter()
            .flat_map(|r| r.tasks.iter().copied())
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        tasks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::ids::TaskId;

    fn agent() -> UserAgent {
        let routes = vec![
            Route::new(RouteId(0), vec![TaskId(0)], 0.0, 2.0),
            Route::new(RouteId(1), vec![TaskId(1)], 4.0, 1.0),
        ];
        let mut a = UserAgent::new(
            UserId(0),
            UserPrefs::new(0.5, 0.5, 0.5),
            &routes,
            0.5,
            0.5,
            RouteId(0),
        );
        a.handle(PlatformMsg::Init {
            tasks: vec![(TaskId(0), 10.0, 0.0), (TaskId(1), 16.0, 0.0)],
            counts: vec![(TaskId(0), 1), (TaskId(1), 0)],
        });
        a
    }

    #[test]
    fn profit_matches_hand_computation() {
        let a = agent();
        // Route 0: α·10 − β·(φ·0) − γ·(θ·2) = 5 − 0.5 = 4.5.
        assert!((a.profit_of(RouteId(0)) - 4.5).abs() < 1e-12);
        // Route 1 (would join task 1 alone): α·16 − 0.5·2.0 − 0.5·0.5 = 6.75.
        assert!((a.profit_of(RouteId(1)) - 6.75).abs() < 1e-12);
    }

    #[test]
    fn request_emitted_for_better_route() {
        let mut a = agent();
        let msg = a.handle(PlatformMsg::Counts {
            counts: vec![(TaskId(0), 1), (TaskId(1), 0)],
        });
        match msg {
            Some(UserMsg::Request {
                new_route,
                gain,
                tau,
                affected,
                ..
            }) => {
                assert_eq!(new_route, RouteId(1));
                assert!((gain - 2.25).abs() < 1e-12);
                assert!((tau - 4.5).abs() < 1e-12);
                assert_eq!(affected, vec![TaskId(0), TaskId(1)]);
            }
            other => panic!("expected request, got {other:?}"),
        }
    }

    #[test]
    fn no_request_when_on_best_route() {
        let mut a = agent();
        // Crowd task 1 so switching is unattractive: share 16+? with n=9
        // joining makes n=10 → share 1.6.
        let msg = a.handle(PlatformMsg::Counts {
            counts: vec![(TaskId(0), 1), (TaskId(1), 9)],
        });
        assert_eq!(msg, Some(UserMsg::NoRequest { user: UserId(0) }));
    }

    #[test]
    fn grant_applies_pending_switch() {
        let mut a = agent();
        a.handle(PlatformMsg::Counts {
            counts: vec![(TaskId(0), 1), (TaskId(1), 0)],
        });
        let reply = a.handle(PlatformMsg::Grant);
        assert_eq!(
            reply,
            Some(UserMsg::Updated {
                user: UserId(0),
                route: RouteId(1)
            })
        );
        assert_eq!(a.current, RouteId(1));
    }

    #[test]
    fn deny_clears_pending() {
        let mut a = agent();
        a.handle(PlatformMsg::Counts {
            counts: vec![(TaskId(0), 1), (TaskId(1), 0)],
        });
        assert_eq!(a.handle(PlatformMsg::Deny), None);
        assert_eq!(a.current, RouteId(0));
        assert!(a.pending.is_none());
    }

    #[test]
    fn covered_tasks_deduplicated_sorted() {
        let a = agent();
        assert_eq!(a.covered_tasks(), vec![TaskId(0), TaskId(1)]);
    }
}
