//! Wire protocol of the long-lived serving mode (`platform_serve`).
//!
//! A serving process accepts an open-ended stream of requests — Join /
//! Leave / BestRespond / Query / Shutdown — instead of running one batch
//! to a fixpoint. Requests and replies are binary messages carried over
//! the PR-8 length-guarded [`net`](crate::net) frame codec (`VCSM` magic,
//! 64 MiB cap), one message per frame, many frames per connection.
//!
//! Every request carries a client-chosen `id`, echoed verbatim on the
//! reply. The server may interleave replies from different lanes on one
//! connection, so the id — not arrival order — is the correlation key,
//! and it is what the ingress stamps into the request-scoped span
//! pipeline (`IngressQueue` / `ConvergeWait` / `Reply`).
//!
//! Join carries a *shard hint*, not a user spec: the server synthesizes
//! paper-range vehicles from its own seeded RNG, which keeps join frames
//! 14 bytes, makes a serving run reproducible from `(seed, request
//! stream)` alone, and lets one loadgen drive ~100k agents without
//! shipping route tables. The codec is hostile-input safe in the same
//! style as [`protocol`](crate::protocol): truncation, unknown tags and
//! trailing bytes all fail with [`CodecError`], never a panic.

use crate::protocol::CodecError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Join target meaning "any lane" (server picks round-robin).
pub const ANY_SHARD: u32 = u32::MAX;

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The referenced user id is not (or no longer) admitted.
    UnknownUser,
    /// The shard hint names a lane the server does not host.
    UnknownShard,
    /// The server is shutting down and no longer admits work.
    ShuttingDown,
}

impl RejectReason {
    fn code(self) -> u8 {
        match self {
            RejectReason::UnknownUser => 1,
            RejectReason::UnknownShard => 2,
            RejectReason::ShuttingDown => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, CodecError> {
        Ok(match code {
            1 => RejectReason::UnknownUser,
            2 => RejectReason::UnknownShard,
            3 => RejectReason::ShuttingDown,
            _ => return Err(CodecError("unknown reject reason")),
        })
    }
}

/// One client request. `id` is echoed on the matching reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Client-chosen correlation id, echoed on the reply.
    pub id: u64,
    /// What the client asks for.
    pub body: ServeRequestBody,
}

/// Request payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeRequestBody {
    /// Admit one synthetic vehicle on the hinted lane ([`ANY_SHARD`] =
    /// server's choice).
    Join {
        /// Target lane, or [`ANY_SHARD`].
        shard: u32,
    },
    /// Retire a previously admitted vehicle (global id from `Joined`).
    Leave {
        /// Global user id.
        user: u64,
    },
    /// Evaluate (and commit, if improving) one best response for a vehicle.
    BestRespond {
        /// Global user id.
        user: u64,
    },
    /// Read-only serving stats (population, cumulative slots, ϕ).
    Query,
    /// Stop accepting requests and exit the serving loop.
    Shutdown,
}

/// One server reply, correlated by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReply {
    /// The request's correlation id, echoed.
    pub id: u64,
    /// The outcome.
    pub body: ServeReplyBody,
}

/// Reply payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeReplyBody {
    /// Join succeeded: the admitted vehicle's global id and the decision
    /// slots the lane spent re-converging before replying.
    Joined {
        /// Global user id (`shard << 32 | local`).
        user: u64,
        /// Convergence slots charged to this request.
        slots: u64,
    },
    /// Leave succeeded.
    Left {
        /// Convergence slots charged to this request.
        slots: u64,
    },
    /// BestRespond evaluated; `moved` says whether an improving move was
    /// committed.
    Responded {
        /// Whether the vehicle changed route.
        moved: bool,
    },
    /// Query result.
    Stats {
        /// Vehicles currently admitted across all lanes.
        users: u64,
        /// Cumulative decision slots across all lanes.
        slots: u64,
        /// Sum of per-lane potentials ϕ.
        phi: f64,
    },
    /// Shutdown acknowledged; the connection closes after this reply.
    ShuttingDown,
    /// The request was not served.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
}

const REQ_JOIN: u8 = 1;
const REQ_LEAVE: u8 = 2;
const REQ_BEST_RESPOND: u8 = 3;
const REQ_QUERY: u8 = 4;
const REQ_SHUTDOWN: u8 = 5;

const REP_JOINED: u8 = 1;
const REP_LEFT: u8 = 2;
const REP_RESPONDED: u8 = 3;
const REP_STATS: u8 = 4;
const REP_SHUTTING_DOWN: u8 = 5;
const REP_REJECTED: u8 = 6;

fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError("truncated u64"));
    }
    Ok(buf.get_u64())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError("truncated f64"));
    }
    Ok(buf.get_f64())
}

fn finish<T>(frame: Bytes, msg: T) -> Result<T, CodecError> {
    if frame.has_remaining() {
        return Err(CodecError("trailing bytes"));
    }
    Ok(msg)
}

impl ServeRequest {
    /// Encodes into a binary frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(18);
        buf.put_u64(self.id);
        match self.body {
            ServeRequestBody::Join { shard } => {
                buf.put_u8(REQ_JOIN);
                buf.put_u32(shard);
            }
            ServeRequestBody::Leave { user } => {
                buf.put_u8(REQ_LEAVE);
                buf.put_u64(user);
            }
            ServeRequestBody::BestRespond { user } => {
                buf.put_u8(REQ_BEST_RESPOND);
                buf.put_u64(user);
            }
            ServeRequestBody::Query => buf.put_u8(REQ_QUERY),
            ServeRequestBody::Shutdown => buf.put_u8(REQ_SHUTDOWN),
        }
        buf.freeze()
    }

    /// Decodes a binary frame payload.
    pub fn decode(mut frame: Bytes) -> Result<Self, CodecError> {
        let id = get_u64(&mut frame)?;
        let body = match get_u8(&mut frame)? {
            REQ_JOIN => ServeRequestBody::Join {
                shard: get_u32(&mut frame)?,
            },
            REQ_LEAVE => ServeRequestBody::Leave {
                user: get_u64(&mut frame)?,
            },
            REQ_BEST_RESPOND => ServeRequestBody::BestRespond {
                user: get_u64(&mut frame)?,
            },
            REQ_QUERY => ServeRequestBody::Query,
            REQ_SHUTDOWN => ServeRequestBody::Shutdown,
            _ => return Err(CodecError("unknown serve request tag")),
        };
        finish(frame, ServeRequest { id, body })
    }
}

impl ServeReply {
    /// Encodes into a binary frame payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(33);
        buf.put_u64(self.id);
        match self.body {
            ServeReplyBody::Joined { user, slots } => {
                buf.put_u8(REP_JOINED);
                buf.put_u64(user);
                buf.put_u64(slots);
            }
            ServeReplyBody::Left { slots } => {
                buf.put_u8(REP_LEFT);
                buf.put_u64(slots);
            }
            ServeReplyBody::Responded { moved } => {
                buf.put_u8(REP_RESPONDED);
                buf.put_u8(u8::from(moved));
            }
            ServeReplyBody::Stats { users, slots, phi } => {
                buf.put_u8(REP_STATS);
                buf.put_u64(users);
                buf.put_u64(slots);
                buf.put_f64(phi);
            }
            ServeReplyBody::ShuttingDown => buf.put_u8(REP_SHUTTING_DOWN),
            ServeReplyBody::Rejected { reason } => {
                buf.put_u8(REP_REJECTED);
                buf.put_u8(reason.code());
            }
        }
        buf.freeze()
    }

    /// Decodes a binary frame payload.
    pub fn decode(mut frame: Bytes) -> Result<Self, CodecError> {
        let id = get_u64(&mut frame)?;
        let body = match get_u8(&mut frame)? {
            REP_JOINED => ServeReplyBody::Joined {
                user: get_u64(&mut frame)?,
                slots: get_u64(&mut frame)?,
            },
            REP_LEFT => ServeReplyBody::Left {
                slots: get_u64(&mut frame)?,
            },
            REP_RESPONDED => ServeReplyBody::Responded {
                moved: match get_u8(&mut frame)? {
                    0 => false,
                    1 => true,
                    _ => return Err(CodecError("malformed bool")),
                },
            },
            REP_STATS => ServeReplyBody::Stats {
                users: get_u64(&mut frame)?,
                slots: get_u64(&mut frame)?,
                phi: get_f64(&mut frame)?,
            },
            REP_SHUTTING_DOWN => ServeReplyBody::ShuttingDown,
            REP_REJECTED => ServeReplyBody::Rejected {
                reason: RejectReason::from_code(get_u8(&mut frame)?)?,
            },
            _ => return Err(CodecError("unknown serve reply tag")),
        };
        finish(frame, ServeReply { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn requests() -> Vec<ServeRequest> {
        vec![
            ServeRequest {
                id: 0,
                body: ServeRequestBody::Join { shard: ANY_SHARD },
            },
            ServeRequest {
                id: 1,
                body: ServeRequestBody::Join { shard: 3 },
            },
            ServeRequest {
                id: u64::MAX,
                body: ServeRequestBody::Leave {
                    user: (7u64 << 32) | 42,
                },
            },
            ServeRequest {
                id: 9,
                body: ServeRequestBody::BestRespond { user: 5 },
            },
            ServeRequest {
                id: 10,
                body: ServeRequestBody::Query,
            },
            ServeRequest {
                id: 11,
                body: ServeRequestBody::Shutdown,
            },
        ]
    }

    fn replies() -> Vec<ServeReply> {
        vec![
            ServeReply {
                id: 1,
                body: ServeReplyBody::Joined {
                    user: (3u64 << 32) | 1,
                    slots: 17,
                },
            },
            ServeReply {
                id: 2,
                body: ServeReplyBody::Left { slots: 0 },
            },
            ServeReply {
                id: 3,
                body: ServeReplyBody::Responded { moved: true },
            },
            ServeReply {
                id: 4,
                body: ServeReplyBody::Stats {
                    users: 100,
                    slots: 12345,
                    phi: -3.5,
                },
            },
            ServeReply {
                id: 5,
                body: ServeReplyBody::ShuttingDown,
            },
            ServeReply {
                id: 6,
                body: ServeReplyBody::Rejected {
                    reason: RejectReason::UnknownUser,
                },
            },
        ]
    }

    #[test]
    fn requests_and_replies_roundtrip() {
        for req in requests() {
            let decoded = ServeRequest::decode(req.encode()).expect("request roundtrip");
            assert_eq!(decoded, req);
        }
        for rep in replies() {
            let decoded = ServeReply::decode(rep.encode()).expect("reply roundtrip");
            assert_eq!(decoded, rep);
        }
    }

    #[test]
    fn hostile_frames_fail_without_panicking() {
        assert!(ServeRequest::decode(Bytes::new()).is_err());
        assert!(ServeReply::decode(Bytes::new()).is_err());
        for msg in requests() {
            let full = msg.encode();
            // Every strict prefix is a truncation error.
            for cut in 0..full.len() {
                assert!(ServeRequest::decode(full.slice(0..cut)).is_err());
            }
            // Trailing garbage is rejected.
            let mut long = full.as_ref().to_vec();
            long.push(0xFF);
            assert!(ServeRequest::decode(Bytes::from(long)).is_err());
        }
        // Unknown tags.
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u8(0xEE);
        assert!(ServeRequest::decode(buf.clone().freeze()).is_err());
        assert!(ServeReply::decode(buf.freeze()).is_err());
        // Malformed bool and reject code.
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u8(REP_RESPONDED);
        buf.put_u8(7);
        assert!(ServeReply::decode(buf.freeze()).is_err());
        let mut buf = BytesMut::new();
        buf.put_u64(1);
        buf.put_u8(REP_REJECTED);
        buf.put_u8(0);
        assert!(ServeReply::decode(buf.freeze()).is_err());
    }
}
