//! Deterministic in-process runtime: agents and platform exchange **encoded**
//! protocol frames, but everything runs on one thread in a fixed order. The
//! reference implementation of the protocol; the threaded runtime must
//! produce bit-identical results (tested in `tests/`).

use crate::agent::UserAgent;
use crate::platform::{PlatformState, SchedulerKind};
use crate::protocol::{PlatformMsg, UserMsg};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{ChurnEvent, Game, Profile};
use vcs_obs::{Event, FrameStamper, Obs, ResponseKind, SpanKind, PLATFORM_SENDER};

/// Communication telemetry of a protocol run: how many frames and bytes
/// crossed the platform↔user boundary. The paper motivates the distributed
/// design by the platform's reduced computation; this quantifies the price
/// paid in communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Telemetry {
    /// Frames sent by the platform to users.
    pub platform_msgs: usize,
    /// Bytes in those frames.
    pub platform_bytes: usize,
    /// Frames sent by users to the platform.
    pub user_msgs: usize,
    /// Bytes in those frames.
    pub user_bytes: usize,
}

impl Telemetry {
    /// Total frames in both directions.
    pub fn total_msgs(&self) -> usize {
        self.platform_msgs + self.user_msgs
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.platform_bytes + self.user_bytes
    }
}

/// Outcome of a runtime execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOutcome {
    /// Final strategy profile (a Nash equilibrium on normal termination).
    pub profile: Profile,
    /// Decision slots elapsed.
    pub slots: usize,
    /// Individual updates applied.
    pub updates: usize,
    /// Whether the run terminated with an empty request set (equilibrium)
    /// rather than the slot cap.
    pub converged: bool,
    /// Communication counters (identical between the sync and threaded
    /// runtimes for the same seed).
    pub telemetry: Telemetry,
}

/// Derives the agent-local seed for its initial random route choice.
pub fn agent_seed(seed: u64, user: UserId) -> u64 {
    seed ^ (u64::from(user.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
}

/// Builds the agents with their random initial decisions (Alg. 1 lines 1–4).
pub fn spawn_agents(game: &Game, seed: u64) -> Vec<UserAgent> {
    game.users()
        .iter()
        .map(|u| {
            let mut rng = StdRng::seed_from_u64(agent_seed(seed, u.id));
            let initial = RouteId::from_index(rng.random_range(0..u.routes.len()));
            UserAgent::new(
                u.id,
                u.prefs,
                &u.routes,
                game.params().phi,
                game.params().theta,
                initial,
            )
        })
        .collect()
}

/// Sends a platform message through the codec (encode + decode), counting
/// frames/bytes in both directions and stamping every frame event with the
/// sender's causal `(seq, lamport)` (see `vcs_obs::causal`). Panics only on
/// codec bugs — the codec is total on well-formed messages.
fn deliver_to_agent(
    agent: &mut UserAgent,
    msg: &PlatformMsg,
    telemetry: &mut Telemetry,
    stamper: &mut FrameStamper,
    obs: &Obs,
) -> Option<UserMsg> {
    let agent_id = agent.id.index() as u32;
    let frame = obs.time(SpanKind::FrameEncode, || msg.encode());
    telemetry.platform_msgs += 1;
    telemetry.platform_bytes += frame.len();
    let bytes = frame.len();
    let tx = stamper.send(PLATFORM_SENDER);
    obs.emit(|| Event::FrameSent {
        bytes: bytes as u32,
        seq: tx.seq,
        lamport: tx.lamport,
    });
    let decoded = obs.time(SpanKind::FrameDecode, || {
        PlatformMsg::decode(frame).expect("self-encoded frame decodes")
    });
    let rx = stamper.receive(agent_id, tx);
    obs.emit(|| Event::FrameReceived {
        bytes: bytes as u32,
        seq: rx.seq,
        lamport: rx.lamport,
    });
    agent.handle(decoded).map(|reply| {
        let reply_frame = obs.time(SpanKind::FrameEncode, || reply.encode());
        telemetry.user_msgs += 1;
        telemetry.user_bytes += reply_frame.len();
        let bytes = reply_frame.len();
        let tx = stamper.send(agent_id);
        obs.emit(|| Event::FrameSent {
            bytes: bytes as u32,
            seq: tx.seq,
            lamport: tx.lamport,
        });
        let decoded = obs.time(SpanKind::FrameDecode, || {
            UserMsg::decode(reply_frame).expect("self-encoded frame decodes")
        });
        let rx = stamper.receive(PLATFORM_SENDER, tx);
        obs.emit(|| Event::FrameReceived {
            bytes: bytes as u32,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        decoded
    })
}

/// Counts (and observes) one uplink frame outside the request/reply helper:
/// initial announcements and churn event frames. `sender` is the emitting
/// user's id (the platform is always the receiver here).
fn count_uplink(
    frame_len: usize,
    sender: u32,
    telemetry: &mut Telemetry,
    stamper: &mut FrameStamper,
    obs: &Obs,
) {
    telemetry.user_msgs += 1;
    telemetry.user_bytes += frame_len;
    let tx = stamper.send(sender);
    obs.emit(|| Event::FrameSent {
        bytes: frame_len as u32,
        seq: tx.seq,
        lamport: tx.lamport,
    });
    let rx = stamper.receive(PLATFORM_SENDER, tx);
    obs.emit(|| Event::FrameReceived {
        bytes: frame_len as u32,
        seq: rx.seq,
        lamport: rx.lamport,
    });
}

/// Runs the full protocol to termination on a single thread.
pub fn run_sync(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
) -> RuntimeOutcome {
    run_sync_observed(game, scheduler, seed, max_slots, &Obs::disabled())
}

/// [`run_sync`] with an observability handle: frame-level TX/RX events for
/// every protocol frame, `ResponseEvaluated` per dirty-agent poll,
/// `SlotCompleted` per decision slot and the engine's per-commit events.
/// With a disabled handle this *is* `run_sync` — observation never
/// influences the protocol.
pub fn run_sync_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
    obs: &Obs,
) -> RuntimeOutcome {
    let mut agents = spawn_agents(game, seed);
    let mut telemetry = Telemetry::default();
    let mut stamper = FrameStamper::new();
    // Alg. 2 line 2: receive initial decisions.
    let initial: Vec<RouteId> = agents
        .iter()
        .map(|a| {
            let frame = a.initial_message().encode();
            let len = frame.len();
            let route = match UserMsg::decode(frame).unwrap() {
                UserMsg::Initial { route, .. } => route,
                other => panic!("unexpected initial message {other:?}"),
            };
            count_uplink(len, a.id.index() as u32, &mut telemetry, &mut stamper, obs);
            route
        })
        .collect();
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    // Alg. 2 line 4: send Init.
    for agent in agents.iter_mut() {
        let msg = platform.init_msg_for(agent.id);
        let reply = deliver_to_agent(agent, &msg, &mut telemetry, &mut stamper, obs);
        debug_assert!(reply.is_none());
    }
    let mut converged = false;
    while platform.slots < max_slots {
        // A poll round with no request terminates — not a decision slot, so
        // the span is cancelled on that path.
        let slot_span = obs.span(SpanKind::Slot);
        // Slot: poll only the users whose standing reply the previous slot's
        // moves may have changed (initially everyone); clean agents'
        // cached requests are reused without any message exchange.
        for user in platform.dirty_users() {
            let msg = platform.counts_msg_for(user);
            let reply = deliver_to_agent(
                &mut agents[user.index()],
                &msg,
                &mut telemetry,
                &mut stamper,
                obs,
            )
            .expect("counts always answered");
            obs.emit(|| Event::ResponseEvaluated {
                user: user.index() as u32,
                kind: ResponseKind::Best,
                improving: matches!(reply, UserMsg::Request { .. }),
            });
            platform.record_reply(user, &reply);
        }
        let requests = platform.collect_requests();
        if requests.is_empty() {
            converged = true;
            slot_span.cancel();
            break;
        }
        let granted = platform.select(&requests);
        // Only granted users hear back; a standing request needs no Deny —
        // it simply stays cached until granted or invalidated by a fresh
        // poll. (`pending` on the agent keeps matching the cached request
        // because only a new `Counts` overwrites it.)
        for &g in &granted {
            let user = requests[g].user;
            let agent = &mut agents[user.index()];
            if let Some(UserMsg::Updated { user, route }) = deliver_to_agent(
                agent,
                &PlatformMsg::Grant,
                &mut telemetry,
                &mut stamper,
                obs,
            ) {
                platform.apply_update(user, route);
            }
        }
        slot_span.finish();
        obs.emit(|| Event::SlotCompleted {
            slot: platform.slots as u64,
            updated: granted.len() as u32,
            phi: platform.potential(),
            total_profit: platform.total_profit(),
        });
    }
    // Alg. 2 line 12: terminate everyone.
    for agent in agents.iter_mut() {
        let reply = deliver_to_agent(
            agent,
            &PlatformMsg::Terminate,
            &mut telemetry,
            &mut stamper,
            obs,
        );
        debug_assert!(reply.is_none());
    }
    // Cross-check: the agents' local choices agree with the platform.
    for agent in &agents {
        debug_assert_eq!(agent.current, platform.profile().choice(agent.id));
    }
    obs.emit(|| Event::RunCompleted {
        slots: platform.slots as u64,
        updates: platform.updates as u64,
        converged,
        phi: platform.potential(),
    });
    RuntimeOutcome {
        slots: platform.slots,
        updates: platform.updates,
        profile: platform.into_profile(),
        converged,
        telemetry,
    }
}

/// Outcome of a churn-enabled protocol run ([`run_sync_churn`] /
/// [`run_threaded_churn`](crate::threaded::run_threaded_churn)): the final
/// live state densified to a standalone post-churn game plus per-epoch
/// convergence accounting. Note ϕ is per-epoch — each churn event redefines
/// the potential, so slot counts are comparable *within* an epoch only.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnOutcome {
    /// The post-churn game (tombstones dropped, users densely renumbered).
    pub game: Game,
    /// Final route choices, indexed like `game`'s users.
    pub choices: Vec<RouteId>,
    /// `id_map[dense] = live id` of each surviving user.
    pub id_map: Vec<UserId>,
    /// Decision slots per epoch; entry 0 is the pre-churn convergence, entry
    /// `e ≥ 1` the re-convergence after the `e`-th event batch.
    pub epoch_slots: Vec<usize>,
    /// Individual updates applied across all epochs.
    pub updates: usize,
    /// Whether every epoch reached an empty request set within its slot cap.
    pub converged: bool,
    /// Communication counters (identical between the sync and threaded
    /// churn runtimes for the same seed and stream).
    pub telemetry: Telemetry,
}

/// Runs the platform's improvement loop until the request set drains or
/// `max_slots` decision slots elapse. Returns `(slots_used, converged)`.
fn drive_to_equilibrium(
    platform: &mut PlatformState<'_>,
    agents: &mut [Option<UserAgent>],
    telemetry: &mut Telemetry,
    stamper: &mut FrameStamper,
    max_slots: usize,
    obs: &Obs,
) -> (usize, bool) {
    let start = platform.slots;
    let mut converged = false;
    while platform.slots - start < max_slots {
        let slot_span = obs.span(SpanKind::Slot);
        for user in platform.dirty_users() {
            let msg = platform.counts_msg_for(user);
            let agent = agents[user.index()].as_mut().expect("dirty user is active");
            let reply = deliver_to_agent(agent, &msg, telemetry, stamper, obs)
                .expect("counts always answered");
            obs.emit(|| Event::ResponseEvaluated {
                user: user.index() as u32,
                kind: ResponseKind::Best,
                improving: matches!(reply, UserMsg::Request { .. }),
            });
            platform.record_reply(user, &reply);
        }
        let requests = platform.collect_requests();
        if requests.is_empty() {
            converged = true;
            slot_span.cancel();
            break;
        }
        let granted = platform.select(&requests);
        for &g in &granted {
            let user = requests[g].user;
            let agent = agents[user.index()]
                .as_mut()
                .expect("granted user is active");
            if let Some(UserMsg::Updated { user, route }) =
                deliver_to_agent(agent, &PlatformMsg::Grant, telemetry, stamper, obs)
            {
                platform.apply_update(user, route);
            }
        }
        slot_span.finish();
        obs.emit(|| Event::SlotCompleted {
            slot: platform.slots as u64,
            updated: granted.len() as u32,
            phi: platform.potential(),
            total_profit: platform.total_profit(),
        });
    }
    (platform.slots - start, converged)
}

/// Runs the protocol with **churn**: converge, then alternate event batches
/// (delivered as encoded `Join`/`Leave` frames) with re-convergence phases,
/// all on one thread in a fixed order. The reference implementation;
/// [`run_threaded_churn`](crate::threaded::run_threaded_churn) must produce
/// an identical [`ChurnOutcome`].
///
/// # Panics
///
/// Panics when the stream is invalid against the live game (leave of an
/// unknown user, join rejected by validation) — streams are produced by
/// trusted generators; untrusted frames should go through
/// [`PlatformState::apply_churn_msg`] directly.
pub fn run_sync_churn(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots_per_epoch: usize,
    epochs: &[Vec<ChurnEvent>],
) -> ChurnOutcome {
    run_sync_churn_observed(
        game,
        scheduler,
        seed,
        max_slots_per_epoch,
        epochs,
        &Obs::disabled(),
    )
}

/// [`run_sync_churn`] with an observability handle: everything
/// [`run_sync_observed`] emits, plus `EpochStarted` / `EpochConverged`
/// around every (re-)convergence phase and the engine's `UserJoined` /
/// `UserLeft` per churn frame.
pub fn run_sync_churn_observed(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots_per_epoch: usize,
    epochs: &[Vec<ChurnEvent>],
    obs: &Obs,
) -> ChurnOutcome {
    let mut agents: Vec<Option<UserAgent>> =
        spawn_agents(game, seed).into_iter().map(Some).collect();
    let mut telemetry = Telemetry::default();
    let mut stamper = FrameStamper::new();
    let initial: Vec<RouteId> = agents
        .iter()
        .flatten()
        .map(|a| {
            let frame = a.initial_message().encode();
            let len = frame.len();
            let route = match UserMsg::decode(frame).unwrap() {
                UserMsg::Initial { route, .. } => route,
                other => panic!("unexpected initial message {other:?}"),
            };
            count_uplink(len, a.id.index() as u32, &mut telemetry, &mut stamper, obs);
            route
        })
        .collect();
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    platform.set_obs(obs.clone());
    for agent in agents.iter_mut().flatten() {
        let msg = platform.init_msg_for(agent.id);
        let reply = deliver_to_agent(agent, &msg, &mut telemetry, &mut stamper, obs);
        debug_assert!(reply.is_none());
    }
    let mut epoch_slots = Vec::with_capacity(epochs.len() + 1);
    let mut converged = true;
    obs.emit(|| Event::EpochStarted {
        epoch: 0,
        joins: 0,
        leaves: 0,
        active: platform.active_count() as u32,
    });
    let (slots, ok) = obs.time(SpanKind::EpochReconverge, || {
        drive_to_equilibrium(
            &mut platform,
            &mut agents,
            &mut telemetry,
            &mut stamper,
            max_slots_per_epoch,
            obs,
        )
    });
    epoch_slots.push(slots);
    converged &= ok;
    obs.emit(|| Event::EpochConverged {
        epoch: 0,
        slots: slots as u64,
        converged: ok,
        phi: platform.potential(),
    });
    for (epoch_idx, batch) in epochs.iter().enumerate() {
        let mut joins = 0u32;
        let mut leaves = 0u32;
        for event in batch {
            // Ship the event as a real wire frame, exactly what a networked
            // vehicle would send.
            let frame = UserMsg::from_churn(event).encode();
            // A `Join` frame is sent by the arriving vehicle, which the
            // platform will number `agents.len()`; a `Leave` by the departing
            // user itself.
            let sender = match event {
                ChurnEvent::Join { .. } => agents.len() as u32,
                ChurnEvent::Leave { user } => user.index() as u32,
            };
            count_uplink(frame.len(), sender, &mut telemetry, &mut stamper, obs);
            let msg = UserMsg::decode(frame).expect("self-encoded frame decodes");
            match platform
                .apply_churn_msg(&msg)
                .expect("stream events are valid")
            {
                Some(joined) => {
                    joins += 1;
                    let UserMsg::Join { spec, initial } = msg else {
                        unreachable!("join returned an id")
                    };
                    let mut agent = UserAgent::new(
                        joined,
                        spec.prefs,
                        &spec.routes,
                        game.params().phi,
                        game.params().theta,
                        initial,
                    );
                    let init = platform.init_msg_for(joined);
                    let reply =
                        deliver_to_agent(&mut agent, &init, &mut telemetry, &mut stamper, obs);
                    debug_assert!(reply.is_none());
                    debug_assert_eq!(agents.len(), joined.index());
                    agents.push(Some(agent));
                }
                None => {
                    leaves += 1;
                    let UserMsg::Leave { user } = msg else {
                        unreachable!("leave returns no id")
                    };
                    let mut agent = agents[user.index()].take().expect("leaving agent exists");
                    let reply = deliver_to_agent(
                        &mut agent,
                        &PlatformMsg::Terminate,
                        &mut telemetry,
                        &mut stamper,
                        obs,
                    );
                    debug_assert!(reply.is_none());
                }
            }
        }
        let epoch = (epoch_idx + 1) as u32;
        obs.emit(|| Event::EpochStarted {
            epoch,
            joins,
            leaves,
            active: platform.active_count() as u32,
        });
        let (slots, ok) = obs.time(SpanKind::EpochReconverge, || {
            drive_to_equilibrium(
                &mut platform,
                &mut agents,
                &mut telemetry,
                &mut stamper,
                max_slots_per_epoch,
                obs,
            )
        });
        epoch_slots.push(slots);
        converged &= ok;
        obs.emit(|| Event::EpochConverged {
            epoch,
            slots: slots as u64,
            converged: ok,
            phi: platform.potential(),
        });
    }
    for agent in agents.iter_mut().flatten() {
        let reply = deliver_to_agent(
            agent,
            &PlatformMsg::Terminate,
            &mut telemetry,
            &mut stamper,
            obs,
        );
        debug_assert!(reply.is_none());
    }
    for agent in agents.iter().flatten() {
        debug_assert_eq!(agent.current, platform.profile().choice(agent.id));
    }
    let (game, choices, id_map) = platform.materialize();
    ChurnOutcome {
        game,
        choices,
        id_map,
        epoch_slots,
        updates: platform.updates,
        converged,
        telemetry,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;
    use vcs_core::response::is_nash;

    #[test]
    fn sync_runtime_reaches_nash_fig1() {
        let game = fig1_instance();
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            for seed in 0..10u64 {
                let out = run_sync(&game, scheduler, seed, 10_000);
                assert!(out.converged);
                assert!(is_nash(&game, &out.profile), "seed {seed} not Nash");
                // Fig. 1 has a unique equilibrium.
                assert_eq!(out.profile.choices(), &[RouteId(0), RouteId(0), RouteId(0)]);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let game = fig1_instance();
        let a = run_sync(&game, SchedulerKind::Puu, 3, 10_000);
        let b = run_sync(&game, SchedulerKind::Puu, 3, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn agent_seeds_differ_per_user() {
        assert_ne!(agent_seed(1, UserId(0)), agent_seed(1, UserId(1)));
        assert_ne!(agent_seed(1, UserId(0)), agent_seed(2, UserId(0)));
    }

    /// A hand-built two-epoch stream on Fig. 1: one join, then that user's
    /// departure plus an incumbent's departure.
    pub(crate) fn fig1_stream() -> Vec<Vec<ChurnEvent>> {
        use vcs_core::ids::TaskId;
        use vcs_core::{Route, UserPrefs, UserSpec};
        vec![
            vec![ChurnEvent::Join {
                spec: UserSpec::new(
                    UserPrefs::neutral(),
                    vec![
                        Route::new(RouteId(0), vec![TaskId(0)], 0.5, 0.5),
                        Route::new(RouteId(1), vec![TaskId(1)], 0.0, 1.0),
                    ],
                ),
                initial: RouteId(1),
            }],
            vec![
                ChurnEvent::Leave { user: UserId(3) },
                ChurnEvent::Leave { user: UserId(1) },
            ],
        ]
    }

    #[test]
    fn sync_churn_reconverges_every_epoch() {
        let game = fig1_instance();
        let epochs = fig1_stream();
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            for seed in 0..5u64 {
                let out = run_sync_churn(&game, scheduler, seed, 10_000, &epochs);
                assert!(out.converged, "seed {seed} hit the slot cap");
                assert_eq!(out.epoch_slots.len(), 3);
                // Users 0 and 2 survive; user 1 and the joiner left.
                assert_eq!(out.id_map, vec![UserId(0), UserId(2)]);
                assert_eq!(out.game.user_count(), 2);
                let profile = Profile::new(&out.game, out.choices.clone());
                assert!(
                    vcs_core::response::is_nash(&out.game, &profile),
                    "seed {seed}: final state not Nash on the post-churn game"
                );
            }
        }
    }

    #[test]
    fn sync_churn_with_empty_stream_matches_plain_run() {
        let game = fig1_instance();
        let plain = run_sync(&game, SchedulerKind::Puu, 5, 10_000);
        let churn = run_sync_churn(&game, SchedulerKind::Puu, 5, 10_000, &[]);
        assert_eq!(churn.epoch_slots, vec![plain.slots]);
        assert_eq!(churn.updates, plain.updates);
        assert_eq!(churn.choices, plain.profile.choices());
        assert_eq!(churn.telemetry, plain.telemetry);
    }
}
