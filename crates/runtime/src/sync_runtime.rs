//! Deterministic in-process runtime: agents and platform exchange **encoded**
//! protocol frames, but everything runs on one thread in a fixed order. The
//! reference implementation of the protocol; the threaded runtime must
//! produce bit-identical results (tested in `tests/`).

use crate::agent::UserAgent;
use crate::platform::{PlatformState, SchedulerKind};
use crate::protocol::{PlatformMsg, UserMsg};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{Game, Profile};

/// Communication telemetry of a protocol run: how many frames and bytes
/// crossed the platform↔user boundary. The paper motivates the distributed
/// design by the platform's reduced computation; this quantifies the price
/// paid in communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Telemetry {
    /// Frames sent by the platform to users.
    pub platform_msgs: usize,
    /// Bytes in those frames.
    pub platform_bytes: usize,
    /// Frames sent by users to the platform.
    pub user_msgs: usize,
    /// Bytes in those frames.
    pub user_bytes: usize,
}

impl Telemetry {
    /// Total frames in both directions.
    pub fn total_msgs(&self) -> usize {
        self.platform_msgs + self.user_msgs
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.platform_bytes + self.user_bytes
    }
}

/// Outcome of a runtime execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeOutcome {
    /// Final strategy profile (a Nash equilibrium on normal termination).
    pub profile: Profile,
    /// Decision slots elapsed.
    pub slots: usize,
    /// Individual updates applied.
    pub updates: usize,
    /// Whether the run terminated with an empty request set (equilibrium)
    /// rather than the slot cap.
    pub converged: bool,
    /// Communication counters (identical between the sync and threaded
    /// runtimes for the same seed).
    pub telemetry: Telemetry,
}

/// Derives the agent-local seed for its initial random route choice.
pub fn agent_seed(seed: u64, user: UserId) -> u64 {
    seed ^ (u64::from(user.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
}

/// Builds the agents with their random initial decisions (Alg. 1 lines 1–4).
pub fn spawn_agents(game: &Game, seed: u64) -> Vec<UserAgent> {
    game.users()
        .iter()
        .map(|u| {
            let mut rng = StdRng::seed_from_u64(agent_seed(seed, u.id));
            let initial = RouteId::from_index(rng.random_range(0..u.routes.len()));
            UserAgent::new(
                u.id,
                u.prefs,
                &u.routes,
                game.params().phi,
                game.params().theta,
                initial,
            )
        })
        .collect()
}

/// Sends a platform message through the codec (encode + decode), counting
/// frames/bytes in both directions. Panics only on codec bugs — the codec is
/// total on well-formed messages.
fn deliver_to_agent(
    agent: &mut UserAgent,
    msg: &PlatformMsg,
    telemetry: &mut Telemetry,
) -> Option<UserMsg> {
    let frame = msg.encode();
    telemetry.platform_msgs += 1;
    telemetry.platform_bytes += frame.len();
    let decoded = PlatformMsg::decode(frame).expect("self-encoded frame decodes");
    agent.handle(decoded).map(|reply| {
        let reply_frame = reply.encode();
        telemetry.user_msgs += 1;
        telemetry.user_bytes += reply_frame.len();
        UserMsg::decode(reply_frame).expect("self-encoded frame decodes")
    })
}

/// Runs the full protocol to termination on a single thread.
pub fn run_sync(
    game: &Game,
    scheduler: SchedulerKind,
    seed: u64,
    max_slots: usize,
) -> RuntimeOutcome {
    let mut agents = spawn_agents(game, seed);
    let mut telemetry = Telemetry::default();
    // Alg. 2 line 2: receive initial decisions.
    let initial: Vec<RouteId> = agents
        .iter()
        .map(|a| {
            let frame = a.initial_message().encode();
            telemetry.user_msgs += 1;
            telemetry.user_bytes += frame.len();
            match UserMsg::decode(frame).unwrap() {
                UserMsg::Initial { route, .. } => route,
                other => panic!("unexpected initial message {other:?}"),
            }
        })
        .collect();
    let mut platform = PlatformState::new(game, scheduler, seed, initial);
    // Alg. 2 line 4: send Init.
    for agent in agents.iter_mut() {
        let msg = platform.init_msg_for(agent.id);
        let reply = deliver_to_agent(agent, &msg, &mut telemetry);
        debug_assert!(reply.is_none());
    }
    let mut converged = false;
    while platform.slots < max_slots {
        // Slot: poll only the users whose standing reply the previous slot's
        // moves may have changed (initially everyone); clean agents'
        // cached requests are reused without any message exchange.
        for user in platform.dirty_users() {
            let msg = platform.counts_msg_for(user);
            let reply = deliver_to_agent(&mut agents[user.index()], &msg, &mut telemetry)
                .expect("counts always answered");
            platform.record_reply(user, &reply);
        }
        let requests = platform.collect_requests();
        if requests.is_empty() {
            converged = true;
            break;
        }
        let granted = platform.select(&requests);
        // Only granted users hear back; a standing request needs no Deny —
        // it simply stays cached until granted or invalidated by a fresh
        // poll. (`pending` on the agent keeps matching the cached request
        // because only a new `Counts` overwrites it.)
        for &g in &granted {
            let user = requests[g].user;
            let agent = &mut agents[user.index()];
            if let Some(UserMsg::Updated { user, route }) =
                deliver_to_agent(agent, &PlatformMsg::Grant, &mut telemetry)
            {
                platform.apply_update(user, route);
            }
        }
    }
    // Alg. 2 line 12: terminate everyone.
    for agent in agents.iter_mut() {
        let reply = deliver_to_agent(agent, &PlatformMsg::Terminate, &mut telemetry);
        debug_assert!(reply.is_none());
    }
    // Cross-check: the agents' local choices agree with the platform.
    for agent in &agents {
        debug_assert_eq!(agent.current, platform.profile().choice(agent.id));
    }
    RuntimeOutcome {
        slots: platform.slots,
        updates: platform.updates,
        profile: platform.into_profile(),
        converged,
        telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;
    use vcs_core::response::is_nash;

    #[test]
    fn sync_runtime_reaches_nash_fig1() {
        let game = fig1_instance();
        for scheduler in [SchedulerKind::Suu, SchedulerKind::Puu] {
            for seed in 0..10u64 {
                let out = run_sync(&game, scheduler, seed, 10_000);
                assert!(out.converged);
                assert!(is_nash(&game, &out.profile), "seed {seed} not Nash");
                // Fig. 1 has a unique equilibrium.
                assert_eq!(out.profile.choices(), &[RouteId(0), RouteId(0), RouteId(0)]);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let game = fig1_instance();
        let a = run_sync(&game, SchedulerKind::Puu, 3, 10_000);
        let b = run_sync(&game, SchedulerKind::Puu, 3, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn agent_seeds_differ_per_user() {
        assert_ne!(agent_seed(1, UserId(0)), agent_seed(1, UserId(1)));
        assert_ne!(agent_seed(1, UserId(0)), agent_seed(2, UserId(0)));
    }
}
