//! Shared socket plumbing: length-guarded stream framing and bounded-backoff
//! connect.
//!
//! Everything that ships this workspace's binary frames over a real byte
//! stream uses the same discipline the PR-2 codecs established: a fixed
//! magic so a desynchronized stream fails loudly, a length prefix validated
//! against a hard cap *before* any allocation, and the payload bytes
//! verbatim (the payload carries its own tag/codec). The `/metrics`
//! exporter's scrape clients and the shard boundary-sync transport both sit
//! on these helpers, so framing bugs have exactly one home.

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Wire magic prefixed to every framed message: "VCSM" (VCS Message).
pub const MSG_MAGIC: [u8; 4] = *b"VCSM";

/// Hard cap on a framed message's payload length. Large enough for a full
/// shard commit log at deployment sizes, small enough that a corrupted
/// length prefix cannot drive an allocation into the gigabytes.
pub const MAX_MSG_LEN: usize = 64 << 20;

/// Writes one length-guarded frame: magic, big-endian `u32` payload length,
/// payload.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads above [`MAX_MSG_LEN`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_MSG_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame payload {} exceeds cap {MAX_MSG_LEN}", payload.len()),
        ));
    }
    w.write_all(&MSG_MAGIC)?;
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-guarded frame written by [`write_frame`], returning the
/// payload bytes.
///
/// # Errors
///
/// `UnexpectedEof` on a closed stream, `InvalidData` on magic mismatch or a
/// length prefix above [`MAX_MSG_LEN`] — a desynchronized or hostile stream
/// is detected before any payload allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut head = [0u8; 8];
    r.read_exact(&mut head)?;
    if head[0..4] != MSG_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad frame magic {:02x?}", &head[0..4]),
        ));
    }
    let len = u32::from_be_bytes(head[4..8].try_into().expect("4 bytes")) as usize;
    if len > MAX_MSG_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_MSG_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Connects to `addr` with bounded exponential backoff: `attempts` tries,
/// sleeping `base_delay · 2^k` (capped at one second) between consecutive
/// failures. Returns the last error when every attempt fails.
///
/// This is the reconnect discipline of every long-lived peer link in the
/// workspace — shard workers dialing their coordinator (including after a
/// coordinator-side restart) and scrape clients dialing the `/metrics`
/// exporter before its accept loop is up.
pub fn connect_with_backoff(
    addr: impl ToSocketAddrs + Clone,
    attempts: u32,
    base_delay: Duration,
) -> io::Result<TcpStream> {
    let mut delay = base_delay;
    let mut last_err = io::Error::new(io::ErrorKind::TimedOut, "no connect attempts made");
    for attempt in 0..attempts.max(1) {
        match TcpStream::connect(addr.clone()) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = e,
        }
        if attempt + 1 < attempts.max(1) {
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_secs(1));
        }
    }
    Err(last_err)
}

/// One blocking `GET <path>` against a workspace HTTP endpoint (the
/// `/metrics` exporter), returning `(status_line, body)`. This is the
/// scrape client the fleet smoke tests and CI jobs share: request written
/// in one shot, response read to EOF (the exporter closes per request),
/// both sides bounded by `timeout`.
///
/// # Errors
///
/// Propagates connect/read/write errors; a response without a blank-line
/// header terminator is `InvalidData`.
pub fn http_get(
    addr: impl ToSocketAddrs + Clone,
    path: &str,
    timeout: Duration,
) -> io::Result<(String, String)> {
    let mut stream = connect_with_backoff(addr, 5, Duration::from_millis(20))?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: vcs\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            "response without header terminator",
        )
    })?;
    let status = head.lines().next().unwrap_or("").to_string();
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn frames_roundtrip_over_a_real_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let got = read_frame(&mut conn).unwrap();
            write_frame(&mut conn, &got).unwrap();
        });
        let mut client = connect_with_backoff(addr, 5, Duration::from_millis(1)).unwrap();
        let payload = vec![7u8; 10_000];
        write_frame(&mut client, &payload).unwrap();
        assert_eq!(read_frame(&mut client).unwrap(), payload);
        server.join().unwrap();
    }

    #[test]
    fn bad_magic_and_oversize_length_are_rejected() {
        let mut bad_magic: &[u8] = b"XXXX\x00\x00\x00\x00";
        assert_eq!(
            read_frame(&mut bad_magic).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut huge = Vec::from(MSG_MAGIC);
        huge.extend_from_slice(&u32::MAX.to_be_bytes());
        assert_eq!(
            read_frame(&mut huge.as_slice()).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &[0u8; 1]).is_ok());
    }

    #[test]
    fn truncated_stream_is_eof() {
        let mut cut: &[u8] = &{
            let mut buf = Vec::from(MSG_MAGIC);
            buf.extend_from_slice(&8u32.to_be_bytes());
            buf.extend_from_slice(&[1, 2, 3]); // promised 8, delivered 3
            buf
        };
        assert_eq!(
            read_frame(&mut cut).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn http_get_scrapes_a_minimal_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 512];
            let n = conn.read(&mut buf).unwrap();
            assert!(std::str::from_utf8(&buf[..n])
                .unwrap()
                .starts_with("GET /metrics "));
            let body = "vcs_ok 1\n";
            write!(
                conn,
                "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .unwrap();
        });
        let (status, body) = http_get(addr, "/metrics", Duration::from_secs(2)).unwrap();
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, "vcs_ok 1\n");
        server.join().unwrap();
    }

    #[test]
    fn backoff_connect_eventually_fails_cleanly() {
        // Port 1 on localhost: nothing listens there in this sandbox.
        let err = connect_with_backoff("127.0.0.1:1", 2, Duration::from_millis(1));
        assert!(err.is_err());
    }
}
