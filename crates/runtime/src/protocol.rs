//! The wire protocol between the platform (Alg. 2) and user agents (Alg. 1),
//! with a compact binary codec.
//!
//! Every exchange of the paper's algorithms is a message here:
//!
//! * platform → user: task parameters and counts (`Init`, Alg. 2 lines 1–4 /
//!   `Counts`, Alg. 1 line 9), update grants/denials (Alg. 2 line 9), and
//!   termination (Alg. 2 line 12);
//! * user → platform: the initial decision (Alg. 1 line 4), update requests
//!   carrying `B_i` and `τ_i` for PUU (Alg. 1 line 12 / Alg. 3), explicit
//!   no-request notices, and the applied decision (Alg. 1 line 15).
//!
//! Messages are encoded into length-free, tag-prefixed binary frames with
//! [`bytes`], so the threaded runtime ships real byte buffers between
//! threads — the same frames a networked deployment would exchange.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{ChurnEvent, Route, UserPrefs, UserSpec};

/// Task metadata a user needs to evaluate rewards locally: `(k, a_k, μ_k)`.
pub type TaskInfo = (TaskId, f64, f64);

/// Platform → user messages.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformMsg {
    /// Initialization: reward parameters of the tasks covered by the user's
    /// recommended routes, plus the initial participant counts.
    Init {
        /// Reward parameters for each covered task.
        tasks: Vec<TaskInfo>,
        /// Initial `n_k` for each covered task.
        counts: Vec<(TaskId, u32)>,
    },
    /// Per-slot refresh of `n_k` for the user's covered tasks.
    Counts {
        /// Current `n_k` for each covered task.
        counts: Vec<(TaskId, u32)>,
    },
    /// The user won the update opportunity for this slot.
    Grant,
    /// The user's request was not granted this slot.
    Deny,
    /// The game has reached equilibrium; stop.
    Terminate,
}

/// User → platform messages.
#[derive(Debug, Clone, PartialEq)]
pub enum UserMsg {
    /// Initial random route decision (Alg. 1 line 4).
    Initial {
        /// The sender.
        user: UserId,
        /// The chosen route.
        route: RouteId,
    },
    /// Update request: the user found a strictly better route.
    Request {
        /// The sender.
        user: UserId,
        /// The route it wants to switch to.
        new_route: RouteId,
        /// Profit gain of the switch.
        gain: f64,
        /// `τ_i = gain / α_i` (potential increase).
        tau: f64,
        /// `B_i`: tasks covered by the current or the new route (sorted).
        affected: Vec<TaskId>,
    },
    /// The user cannot improve this slot.
    NoRequest {
        /// The sender.
        user: UserId,
    },
    /// Confirmation that the granted switch was applied.
    Updated {
        /// The sender.
        user: UserId,
        /// The route now selected.
        route: RouteId,
    },
    /// A new vehicle enters the platform mid-game: its preference weights,
    /// its recommended route set and its initial route choice (the Alg. 1
    /// line 4 random decision, made locally before first contact). The
    /// platform assigns the user id and answers with `Init`. Route polyline
    /// geometry is display-only and is **not** carried on the wire.
    Join {
        /// Weights and recommended routes of the arriving user.
        spec: UserSpec,
        /// Index into `spec.routes` of the initial choice.
        initial: RouteId,
    },
    /// The vehicle with id `user` leaves the platform.
    Leave {
        /// The departing user.
        user: UserId,
    },
}

impl UserMsg {
    /// The wire frame corresponding to a churn event (see
    /// [`vcs_core::ChurnEvent`]).
    pub fn from_churn(event: &ChurnEvent) -> Self {
        match event {
            ChurnEvent::Join { spec, initial } => UserMsg::Join {
                spec: spec.clone(),
                initial: *initial,
            },
            ChurnEvent::Leave { user } => UserMsg::Leave { user: *user },
        }
    }
}

// ---- Codec ---------------------------------------------------------------

const TAG_INIT: u8 = 1;
const TAG_COUNTS: u8 = 2;
const TAG_GRANT: u8 = 3;
const TAG_DENY: u8 = 4;
const TAG_TERMINATE: u8 = 5;
const TAG_INITIAL: u8 = 16;
const TAG_REQUEST: u8 = 17;
const TAG_NO_REQUEST: u8 = 18;
const TAG_UPDATED: u8 = 19;
const TAG_JOIN: u8 = 20;
const TAG_LEAVE: u8 = 21;

/// Codec error: truncated or malformed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub &'static str);

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

fn put_task_counts(buf: &mut BytesMut, counts: &[(TaskId, u32)]) {
    buf.put_u32(u32::try_from(counts.len()).expect("count list fits u32"));
    for &(task, n) in counts {
        buf.put_u32(task.0);
        buf.put_u32(n);
    }
}

/// Reads a length prefix and validates it against the bytes actually present
/// (`entry_size` bytes per entry), so hostile frames cannot trigger huge
/// allocations before the truncation is detected.
fn get_len(buf: &mut Bytes, entry_size: usize) -> Result<usize, CodecError> {
    let len = get_u32(buf)? as usize;
    if len.saturating_mul(entry_size) > buf.remaining() {
        return Err(CodecError("length prefix exceeds frame size"));
    }
    Ok(len)
}

fn get_task_counts(buf: &mut Bytes) -> Result<Vec<(TaskId, u32)>, CodecError> {
    let len = get_len(buf, 8)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let task = TaskId(get_u32(buf)?);
        let n = get_u32(buf)?;
        out.push((task, n));
    }
    Ok(out)
}

fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_f64(buf: &mut Bytes) -> Result<f64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError("truncated f64"));
    }
    Ok(buf.get_f64())
}

impl PlatformMsg {
    /// Encodes into a binary frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            PlatformMsg::Init { tasks, counts } => {
                buf.put_u8(TAG_INIT);
                buf.put_u32(u32::try_from(tasks.len()).expect("task list fits u32"));
                for &(task, a, mu) in tasks {
                    buf.put_u32(task.0);
                    buf.put_f64(a);
                    buf.put_f64(mu);
                }
                put_task_counts(&mut buf, counts);
            }
            PlatformMsg::Counts { counts } => {
                buf.put_u8(TAG_COUNTS);
                put_task_counts(&mut buf, counts);
            }
            PlatformMsg::Grant => buf.put_u8(TAG_GRANT),
            PlatformMsg::Deny => buf.put_u8(TAG_DENY),
            PlatformMsg::Terminate => buf.put_u8(TAG_TERMINATE),
        }
        buf.freeze()
    }

    /// Decodes a binary frame.
    pub fn decode(mut frame: Bytes) -> Result<Self, CodecError> {
        let msg = match get_u8(&mut frame)? {
            TAG_INIT => {
                let n = get_len(&mut frame, 20)?;
                let mut tasks = Vec::with_capacity(n);
                for _ in 0..n {
                    let task = TaskId(get_u32(&mut frame)?);
                    let a = get_f64(&mut frame)?;
                    let mu = get_f64(&mut frame)?;
                    tasks.push((task, a, mu));
                }
                let counts = get_task_counts(&mut frame)?;
                PlatformMsg::Init { tasks, counts }
            }
            TAG_COUNTS => PlatformMsg::Counts {
                counts: get_task_counts(&mut frame)?,
            },
            TAG_GRANT => PlatformMsg::Grant,
            TAG_DENY => PlatformMsg::Deny,
            TAG_TERMINATE => PlatformMsg::Terminate,
            _ => return Err(CodecError("unknown platform tag")),
        };
        if frame.has_remaining() {
            return Err(CodecError("trailing bytes"));
        }
        Ok(msg)
    }
}

impl UserMsg {
    /// Encodes into a binary frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            UserMsg::Initial { user, route } => {
                buf.put_u8(TAG_INITIAL);
                buf.put_u32(user.0);
                buf.put_u32(route.0);
            }
            UserMsg::Request {
                user,
                new_route,
                gain,
                tau,
                affected,
            } => {
                buf.put_u8(TAG_REQUEST);
                buf.put_u32(user.0);
                buf.put_u32(new_route.0);
                buf.put_f64(*gain);
                buf.put_f64(*tau);
                buf.put_u32(u32::try_from(affected.len()).expect("task list fits u32"));
                for t in affected {
                    buf.put_u32(t.0);
                }
            }
            UserMsg::NoRequest { user } => {
                buf.put_u8(TAG_NO_REQUEST);
                buf.put_u32(user.0);
            }
            UserMsg::Updated { user, route } => {
                buf.put_u8(TAG_UPDATED);
                buf.put_u32(user.0);
                buf.put_u32(route.0);
            }
            UserMsg::Join { spec, initial } => {
                buf.put_u8(TAG_JOIN);
                buf.put_f64(spec.prefs.alpha);
                buf.put_f64(spec.prefs.beta);
                buf.put_f64(spec.prefs.gamma);
                buf.put_u32(initial.0);
                buf.put_u32(u32::try_from(spec.routes.len()).expect("route list fits u32"));
                for route in &spec.routes {
                    buf.put_u32(u32::try_from(route.tasks.len()).expect("task list fits u32"));
                    for t in &route.tasks {
                        buf.put_u32(t.0);
                    }
                    buf.put_f64(route.detour);
                    buf.put_f64(route.congestion);
                }
            }
            UserMsg::Leave { user } => {
                buf.put_u8(TAG_LEAVE);
                buf.put_u32(user.0);
            }
        }
        buf.freeze()
    }

    /// Decodes a binary frame.
    pub fn decode(mut frame: Bytes) -> Result<Self, CodecError> {
        let msg = match get_u8(&mut frame)? {
            TAG_INITIAL => UserMsg::Initial {
                user: UserId(get_u32(&mut frame)?),
                route: RouteId(get_u32(&mut frame)?),
            },
            TAG_REQUEST => {
                let user = UserId(get_u32(&mut frame)?);
                let new_route = RouteId(get_u32(&mut frame)?);
                let gain = get_f64(&mut frame)?;
                let tau = get_f64(&mut frame)?;
                let n = get_len(&mut frame, 4)?;
                let mut affected = Vec::with_capacity(n);
                for _ in 0..n {
                    affected.push(TaskId(get_u32(&mut frame)?));
                }
                UserMsg::Request {
                    user,
                    new_route,
                    gain,
                    tau,
                    affected,
                }
            }
            TAG_NO_REQUEST => UserMsg::NoRequest {
                user: UserId(get_u32(&mut frame)?),
            },
            TAG_UPDATED => UserMsg::Updated {
                user: UserId(get_u32(&mut frame)?),
                route: RouteId(get_u32(&mut frame)?),
            },
            TAG_JOIN => {
                let alpha = get_f64(&mut frame)?;
                let beta = get_f64(&mut frame)?;
                let gamma = get_f64(&mut frame)?;
                let initial = RouteId(get_u32(&mut frame)?);
                // Each route is at least a task count + detour + congestion.
                let n_routes = get_len(&mut frame, 20)?;
                let mut routes = Vec::with_capacity(n_routes);
                for r in 0..n_routes {
                    let n_tasks = get_len(&mut frame, 4)?;
                    let mut tasks = Vec::with_capacity(n_tasks);
                    for _ in 0..n_tasks {
                        tasks.push(TaskId(get_u32(&mut frame)?));
                    }
                    let detour = get_f64(&mut frame)?;
                    let congestion = get_f64(&mut frame)?;
                    routes.push(Route::new(
                        RouteId::from_index(r),
                        tasks,
                        detour,
                        congestion,
                    ));
                }
                UserMsg::Join {
                    spec: UserSpec::new(UserPrefs::new(alpha, beta, gamma), routes),
                    initial,
                }
            }
            TAG_LEAVE => UserMsg::Leave {
                user: UserId(get_u32(&mut frame)?),
            },
            _ => return Err(CodecError("unknown user tag")),
        };
        if frame.has_remaining() {
            return Err(CodecError("trailing bytes"));
        }
        Ok(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_messages_roundtrip() {
        let msgs = vec![
            PlatformMsg::Init {
                tasks: vec![(TaskId(3), 12.5, 0.25), (TaskId(9), 18.0, 1.0)],
                counts: vec![(TaskId(3), 2), (TaskId(9), 0)],
            },
            PlatformMsg::Counts {
                counts: vec![(TaskId(1), 7)],
            },
            PlatformMsg::Counts { counts: vec![] },
            PlatformMsg::Grant,
            PlatformMsg::Deny,
            PlatformMsg::Terminate,
        ];
        for msg in msgs {
            let frame = msg.encode();
            assert_eq!(PlatformMsg::decode(frame).unwrap(), msg);
        }
    }

    #[test]
    fn user_messages_roundtrip() {
        let msgs = vec![
            UserMsg::Initial {
                user: UserId(4),
                route: RouteId(2),
            },
            UserMsg::Request {
                user: UserId(0),
                new_route: RouteId(1),
                gain: 1.75,
                tau: 3.5,
                affected: vec![TaskId(0), TaskId(5), TaskId(6)],
            },
            UserMsg::NoRequest { user: UserId(9) },
            UserMsg::Updated {
                user: UserId(1),
                route: RouteId(0),
            },
            UserMsg::Join {
                spec: UserSpec::new(
                    UserPrefs::new(0.3, 0.6, 0.2),
                    vec![
                        Route::new(RouteId(0), vec![TaskId(1), TaskId(4)], 1.5, 0.25),
                        Route::new(RouteId(1), vec![], 0.0, 3.0),
                    ],
                ),
                initial: RouteId(1),
            },
            UserMsg::Join {
                spec: UserSpec::new(UserPrefs::neutral(), vec![]),
                initial: RouteId(0),
            },
            UserMsg::Leave { user: UserId(17) },
        ];
        for msg in msgs {
            let frame = msg.encode();
            assert_eq!(UserMsg::decode(frame).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_frames_rejected() {
        let frame = UserMsg::Initial {
            user: UserId(4),
            route: RouteId(2),
        }
        .encode();
        let cut = frame.slice(0..frame.len() - 1);
        assert!(UserMsg::decode(cut).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[0xFF]);
        assert!(PlatformMsg::decode(frame.clone()).is_err());
        assert!(UserMsg::decode(frame).is_err());
    }

    #[test]
    fn join_frame_matches_churn_event() {
        let event = ChurnEvent::Join {
            spec: UserSpec::new(
                UserPrefs::new(0.4, 0.4, 0.4),
                vec![Route::new(RouteId(0), vec![TaskId(2)], 0.5, 0.5)],
            ),
            initial: RouteId(0),
        };
        let msg = UserMsg::from_churn(&event);
        let decoded = UserMsg::decode(msg.encode()).unwrap();
        assert_eq!(decoded, msg);
        let leave = ChurnEvent::Leave { user: UserId(3) };
        assert_eq!(
            UserMsg::from_churn(&leave),
            UserMsg::Leave { user: UserId(3) }
        );
    }

    #[test]
    fn truncated_join_rejected() {
        let frame = UserMsg::Join {
            spec: UserSpec::new(
                UserPrefs::neutral(),
                vec![Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 1.0, 1.0)],
            ),
            initial: RouteId(0),
        }
        .encode();
        for cut in [1, 8, 20, frame.len() - 1] {
            assert!(UserMsg::decode(frame.slice(0..cut)).is_err(), "cut {cut}");
        }
        // A hostile length prefix larger than the frame is caught before any
        // allocation.
        let mut buf = BytesMut::new();
        buf.put_u8(20);
        buf.put_f64(0.5);
        buf.put_f64(0.5);
        buf.put_f64(0.5);
        buf.put_u32(0);
        buf.put_u32(u32::MAX); // absurd route count
        assert_eq!(
            UserMsg::decode(buf.freeze()),
            Err(CodecError("length prefix exceeds frame size"))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u8(3); // Grant
        buf.put_u8(0); // junk
        assert_eq!(
            PlatformMsg::decode(buf.freeze()),
            Err(CodecError("trailing bytes"))
        );
    }
}
