//! Serving-mode soak: a live 2-lane `platform_serve` under open-loop
//! loadgen, scraped repeatedly mid-run. Asserts the scrape-consistency
//! contract of the `/metrics` endpoint:
//!
//! * every exposition parses under the Prometheus text validator;
//! * counters are monotone non-decreasing across scrapes (a counter that
//!   moves backwards means a reset or double-registration bug);
//! * at quiescence the latency histogram's sample count equals the sum of
//!   the ok/rejected reply counters (one sample per reply, no more, no
//!   fewer);
//! * the run sustains nonzero decision slots and a clean SLO at a
//!   generous budget, and the server shuts down without leaking threads.

use std::collections::HashMap;
use std::time::Duration;
use vcs_obs::{validate_prometheus_text, SloConfig};
use vcs_online::ServeCoreConfig;
use vcs_runtime::net::http_get;
use vcs_shard::{run_loadgen, start_platform_serve, LoadgenOptions, ServeOptions};

/// Parses counter samples (`name{labels} value` lines whose metric name
/// ends in `_total`) into an exact-match key → value map.
fn counter_samples(body: &str) -> HashMap<String, u64> {
    let mut out = HashMap::new();
    for line in body.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let name = key.split('{').next().unwrap_or(key);
        if !name.ends_with("_total") {
            continue;
        }
        // Counters in this workspace render as integers; skip any that
        // do not (future-proofing, not expected).
        if let Ok(v) = value.parse::<u64>() {
            out.insert(key.to_string(), v);
        }
    }
    out
}

fn metric_value(body: &str, key: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(key) && l[key.len()..].starts_with(' '))
        .and_then(|l| l[key.len() + 1..].trim().parse().ok())
}

#[test]
fn metrics_scrapes_stay_monotone_and_consistent_under_load() {
    let handle = start_platform_serve(&ServeOptions {
        shards: 2,
        core: ServeCoreConfig {
            n_tasks: 10,
            initial_users: 16,
            seed: 77,
            ..ServeCoreConfig::default()
        },
        window: Duration::from_millis(100),
        // Generous budget: the soak asserts a clean pass, not a burn.
        slo: SloConfig {
            p99_budget_nanos: 5_000_000_000,
            burn_windows: 3,
        },
        ..ServeOptions::default()
    })
    .expect("start server");
    let metrics_addr = handle.metrics_addr();
    let serve_addr = handle.addr().to_string();

    let loadgen = std::thread::spawn(move || {
        run_loadgen(&LoadgenOptions {
            addr: serve_addr,
            rate_hz: 300.0,
            duration: Duration::from_millis(2500),
            seed: 4,
            max_agents: 60,
            shutdown_after: false,
            ..LoadgenOptions::default()
        })
        .expect("loadgen run")
    });

    // Scrape while the load runs: every exposition valid, every counter
    // monotone against the previous scrape.
    let mut previous: HashMap<String, u64> = HashMap::new();
    let mut scrapes = 0u32;
    while !loadgen.is_finished() {
        let (status, body) =
            http_get(metrics_addr, "/metrics", Duration::from_secs(2)).expect("scrape");
        assert!(status.contains("200"), "scrape status {status}");
        validate_prometheus_text(&body).expect("mid-run exposition is valid");
        let current = counter_samples(&body);
        for (key, prev) in &previous {
            let now = current.get(key).copied().unwrap_or_else(|| {
                panic!("counter {key} disappeared between scrapes");
            });
            assert!(
                now >= *prev,
                "counter {key} went backwards: {prev} -> {now}"
            );
        }
        previous = current;
        scrapes += 1;
        std::thread::sleep(Duration::from_millis(150));
    }
    let report = loadgen.join().expect("loadgen thread");
    assert!(scrapes >= 3, "the soak actually scraped mid-run: {scrapes}");
    assert_eq!(report.rejected, 0, "clean run: {report:?}");
    assert!(report.sustained_slots_per_sec > 0.0);

    // Quiescent consistency: one latency sample per reply.
    std::thread::sleep(Duration::from_millis(250));
    let (_, body) = http_get(metrics_addr, "/metrics", Duration::from_secs(2)).expect("scrape");
    validate_prometheus_text(&body).expect("final exposition is valid");
    let samples = metric_value(&body, "vcs_serve_latency_samples_total")
        .expect("latency samples counter present");
    let ok = metric_value(&body, "vcs_serve_replies_total{status=\"ok\"}").expect("ok counter");
    let rejected = metric_value(&body, "vcs_serve_replies_total{status=\"rejected\"}")
        .expect("rejected counter");
    assert_eq!(
        samples,
        ok + rejected,
        "histogram totals match reply counter sums"
    );
    assert_eq!(rejected, 0.0);
    assert!(
        ok >= report.replies_ok as f64,
        "server counted at least the loadgen's replies"
    );

    // Fleet plane saw the lanes; SLO stayed clean at the generous budget.
    assert!(metric_value(&body, "vcs_fleet_processes").unwrap_or(0.0) >= 2.0);
    assert_eq!(
        metric_value(&body, "vcs_slo_burn_rate_alerts_total"),
        Some(0.0)
    );
    assert_eq!(metric_value(&body, "vcs_slo_burning"), Some(0.0));
    assert!(metric_value(&body, "vcs_slo_windows_total").unwrap_or(0.0) >= 1.0);

    handle.shutdown();
}
