//! Oracle equivalence of the sharded deployment against a single-engine
//! run of the full game:
//!
//! * the merged commit log replays on one full-game engine with a
//!   monotonically improving `ϕ` trajectory whose endpoint matches the
//!   merged profile's potential to `1e-9`;
//! * on exhaustively enumerable games (≤ 6 users) the *fixpoint set* of
//!   the sharded dynamics equals the Nash-equilibrium set of the full game
//!   in both directions: every converged sharded run lands in the NE set,
//!   and every NE is a zero-move fixpoint of the sharded protocol;
//! * per-shard event dumps, tagged with their shard's causal stamps, pass
//!   the merge-aware cross-stream validator.

use std::sync::Arc;
use vcs_core::ids::RouteId;
use vcs_core::{is_nash, potential, Engine, Game, Profile};
use vcs_obs::{
    merge_stamped_streams, validate_causal_order_merged, Event, Obs, RingBufferSubscriber,
    StampedStream,
};
use vcs_shard::{localized_game, ShardConfig, ShardedSim};

/// Every profile of `game`, enumerated as choice vectors (≤ 6 users keeps
/// this ≤ 4^6 = 4096 profiles under the generator's 2–4 routes per user).
fn all_profiles(game: &Game) -> Vec<Vec<RouteId>> {
    let mut out = vec![Vec::new()];
    for u in game.users() {
        let mut next = Vec::with_capacity(out.len() * u.routes.len());
        for prefix in &out {
            for r in 0..u.routes.len() {
                let mut p = prefix.clone();
                p.push(RouteId::from_index(r));
                next.push(p);
            }
        }
        out = next;
    }
    out
}

#[test]
fn exhaustive_ne_set_equals_sharded_fixpoint_set_at_six_users() {
    for (game_seed, shards) in [(5u64, 2usize), (19, 3), (87, 2)] {
        let game = localized_game(6, 10, 2, game_seed);
        let ne_set: Vec<Vec<RouteId>> = all_profiles(&game)
            .into_iter()
            .filter(|choices| is_nash(&game, &Profile::new(&game, choices.clone())))
            .collect();
        assert!(
            !ne_set.is_empty(),
            "a weighted potential game has at least one pure NE"
        );

        // Direction 1: every converged sharded run is in the NE set.
        for run_seed in 0..12u64 {
            let mut sim = ShardedSim::new(
                game.clone(),
                ShardConfig::new(shards, game_seed.wrapping_mul(131).wrapping_add(run_seed)),
            );
            let outcome = sim.run();
            assert!(outcome.converged);
            assert!(
                ne_set.contains(&outcome.choices),
                "sharded fixpoint must be in the enumerated NE set"
            );
        }

        // Direction 2: every NE is a zero-move fixpoint of the protocol.
        for ne in &ne_set {
            let mut sim = ShardedSim::with_initial(
                game.clone(),
                ShardConfig::new(shards, game_seed),
                ne.clone(),
            );
            let outcome = sim.run();
            assert!(outcome.converged);
            assert_eq!(outcome.rounds, 1, "one quiet round certifies the fixpoint");
            assert!(outcome.log.is_empty(), "an NE admits no improving move");
            assert_eq!(&outcome.choices, ne);
        }
    }
}

#[test]
fn merged_log_replay_matches_single_engine_phi_within_1e9() {
    for (users, tasks, window, shards, seed) in [
        (120, 100, 5, 2, 7u64),
        (150, 150, 6, 4, 23),
        (90, 80, 4, 3, 71),
    ] {
        let game = localized_game(users, tasks, window, seed);
        let mut sim = ShardedSim::new(game.clone(), ShardConfig::new(shards, seed));
        let outcome = sim.run();
        assert!(outcome.converged, "{shards} shards must converge");
        assert!(sim.replicas_consistent());

        let mut oracle =
            Engine::new_owned(game.clone(), Profile::new(&game, outcome.initial.clone()));
        let mut prev_phi = oracle.potential();
        let trajectory = oracle.replay_moves(&outcome.log);
        for &(phi, _) in &trajectory {
            assert!(
                phi > prev_phi - 1e-12,
                "every committed move improves phi (Eq. 11): {prev_phi} -> {phi}"
            );
            prev_phi = phi;
        }
        let merged_phi = potential(&game, &Profile::new(&game, outcome.choices.clone()));
        assert!(
            (prev_phi - merged_phi).abs() <= 1e-9,
            "replayed phi {prev_phi} vs merged phi {merged_phi}"
        );
        assert_eq!(
            oracle.profile().choices(),
            &outcome.choices[..],
            "oracle replay reconstructs the merged profile exactly"
        );
        assert!(is_nash(&game, oracle.profile()));
    }
}

#[test]
fn per_shard_dumps_pass_merge_aware_causal_validation() {
    let shards = 3;
    let game = localized_game(100, 90, 5, 13);
    let mut sim = ShardedSim::new(game, ShardConfig::new(shards, 13));
    let rings: Vec<Arc<RingBufferSubscriber>> = (0..shards)
        .map(|s| {
            let ring = Arc::new(RingBufferSubscriber::new(1 << 16));
            sim.set_shard_obs(s, Obs::new(ring.clone()));
            ring
        })
        .collect();
    let outcome = sim.run();
    assert!(outcome.converged);
    assert!(
        outcome.frames_sent > 0,
        "boundary sync must exchange frames"
    );

    let streams: Vec<StampedStream> = rings
        .iter()
        .enumerate()
        .map(|(s, ring)| StampedStream::new(s as u32, ring.events()))
        .collect();
    let violations = validate_causal_order_merged(&streams);
    assert!(
        violations.is_empty(),
        "clean multi-shard dumps must validate: {violations:?}"
    );

    // The merged view is a permutation of all per-shard events that keeps
    // each stream's order and the cross-shard happens-before edges.
    let merged = merge_stamped_streams(&streams);
    let total: usize = streams.iter().map(|s| s.events.len()).sum();
    assert_eq!(merged.len(), total);
    let tx_count = merged
        .iter()
        .filter(|(_, e)| matches!(e, Event::FrameSent { .. }))
        .count();
    assert_eq!(tx_count as u64, outcome.frames_sent);
}
