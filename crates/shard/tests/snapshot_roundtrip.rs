//! Shard-scoped checkpoint/resume properties:
//!
//! * a run checkpointed at any coordinator-round boundary and resumed into
//!   fresh engines retraces the *identical* remaining trajectory — same
//!   continuation log, same final profile, merged `ϕ` within `1e-9`;
//! * the [`Snapshot`] codec underneath round-trips engines that carry
//!   tombstones: capture materializes departed users away, and a second
//!   capture of the restored engine reproduces the same bytes.

use proptest::prelude::*;
use vcs_core::ids::UserId;
use vcs_core::{potential, Engine, Profile};
use vcs_online::Snapshot;
use vcs_shard::{localized_game, partition, ShardConfig, ShardedSim};

proptest! {
    /// Checkpoint each shard mid-convergence, restore into fresh engines,
    /// and the resumed run retraces the original trajectory exactly.
    #[test]
    fn checkpoint_resume_retraces_identical_trajectory(
        seed in any::<u64>(),
        users in 8usize..40,
        shards in 1usize..5,
        pre_rounds in 0u32..3,
    ) {
        let game = localized_game(users, users.max(12), 3, seed);
        let config = ShardConfig::new(shards, seed);
        let mut full = ShardedSim::new(game.clone(), config.clone());
        for _ in 0..pre_rounds {
            if full.is_converged() {
                break;
            }
            full.step_round();
        }
        let checkpoint = full.checkpoint();
        let split = full.log().len();
        let a = full.run();

        let mut resumed = ShardedSim::resume(game.clone(), config, checkpoint)
            .expect("a just-captured checkpoint decodes");
        let b = resumed.run();

        prop_assert_eq!(&a.choices, &b.choices);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.converged, b.converged);
        prop_assert_eq!(&a.log[split..], &b.log[..]);
        let phi_a = potential(&game, &Profile::new(&game, a.choices.clone()));
        let phi_b = potential(&game, &Profile::new(&game, b.choices.clone()));
        prop_assert!((phi_a - phi_b).abs() <= 1e-9);
    }

    /// The snapshot codec under the shard checkpoint covers the tombstone/
    /// materialize path: capture an engine with departed users, restore,
    /// re-capture — the bytes are reproduced and `ϕ` is preserved.
    #[test]
    fn tombstoned_shard_engines_roundtrip_through_the_codec(
        seed in any::<u64>(),
        users in 10usize..30,
        removals in 1usize..4,
    ) {
        let game = localized_game(users, users, 3, seed);
        let plan = partition(&game, 2);
        let members = plan.members(0);
        prop_assume!(members.len() > removals + 1);
        let sub = game.subgame(&members);
        let profile = Profile::all_first(&sub);
        let mut engine = Engine::new_owned(sub, profile);

        // Tombstone a few users mid-life, then let the dynamics move on so
        // the captured state is not the trivial post-churn profile.
        for k in 0..removals {
            let victim = UserId::from_index((seed as usize + k * 7) % members.len());
            if engine.is_active(victim) && engine.active_count() > 1 {
                engine.remove_user(victim).expect("active user removes");
            }
        }
        let movers: Vec<UserId> = engine.active_users().take(4).collect();
        for user in movers {
            if let Some(route) = engine.best_route_set(user).first() {
                engine.apply_move(user, route);
            }
        }

        let bytes = Snapshot::capture(&engine).encode();
        let restored = Snapshot::decode(bytes.clone()).expect("own encoding decodes").restore();
        prop_assert_eq!(restored.game().users().len(), engine.active_count());
        prop_assert!((restored.potential() - engine.potential()).abs() <= 1e-9);
        let again = Snapshot::capture(&restored).encode();
        // Re-capture of a restored engine is a codec fixpoint.
        prop_assert_eq!(again, bytes);
    }
}
