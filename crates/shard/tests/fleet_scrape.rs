//! The fleet observability plane, end to end against live multi-process
//! deployments:
//!
//! * a lossy-UDP deployment run with `--telemetry --metrics-port 0` serves
//!   one coordinator `/metrics` endpoint that is scraped **mid-run**,
//!   validates as Prometheus exposition text, and carries per-shard
//!   `shard="<id>"` labels plus the coordinator's own `shard="coord"`
//!   series;
//! * a `--kill-shard` TCP run ships the SIGKILLed worker's flight-recorder
//!   tail into `merged.jsonl` as causally-merged `"recorder":true` lines;
//! * telemetry is strictly out-of-band: the deterministic artifacts of a
//!   telemetry-on run are byte-identical to the telemetry-off run of the
//!   same config (the transport-oracle contract survives the plane).

use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::time::{Duration, Instant};

use vcs_obs::validate_prometheus_text;
use vcs_runtime::net::http_get;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_runtime")
}

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fleet_scrape_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn base_cmd(dir: &Path, users: usize, shards: usize) -> Command {
    let mut cmd = Command::new(bin());
    cmd.args([
        "--users",
        &users.to_string(),
        "--window",
        "5",
        "--shards",
        &shards.to_string(),
        "--seed",
        "11",
        "--out-dir",
        dir.to_str().unwrap(),
    ]);
    cmd
}

fn finish(child: Child, what: &str) {
    let output = child.wait_with_output().expect("wait for deployment");
    assert!(
        output.status.success(),
        "{what} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
}

/// Polls `out_dir/metrics.addr` until the coordinator has bound its
/// exporter and published the address.
fn wait_for_metrics_addr(dir: &Path) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(addr) = std::fs::read_to_string(dir.join("metrics.addr")) {
            let addr = addr.trim().to_string();
            if !addr.is_empty() {
                return addr;
            }
        }
        assert!(
            Instant::now() < deadline,
            "coordinator never published metrics.addr"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn live_metrics_endpoint_serves_per_shard_series_mid_run() {
    let shards = 3usize;
    let dir = out_dir("scrape");
    // Loss + RTT keep the deployment alive for many seconds — a wide window
    // in which the endpoint must answer concurrent scrapes.
    let child = base_cmd(&dir, 240, shards)
        .args([
            "--transport",
            "udp",
            "--loss",
            "0.15",
            "--rtt-ms",
            "4",
            "--jitter-ms",
            "3",
            "--telemetry",
            "--metrics-port",
            "0",
        ])
        .spawn()
        .expect("spawn shard_runtime");
    let addr = wait_for_metrics_addr(&dir);

    // Scrape repeatedly while the fleet is running, until every worker's
    // first telemetry frame has landed in the registry.
    let deadline = Instant::now() + Duration::from_secs(120);
    let body = loop {
        let (status, body) =
            http_get(addr.as_str(), "/metrics", Duration::from_secs(5)).expect("mid-run scrape");
        assert!(status.contains("200"), "bad status {status}");
        validate_prometheus_text(&body).expect("exposition must validate");
        let all_shards = (0..shards).all(|s| body.contains(&format!("shard=\"{s}\"")));
        if all_shards && body.contains("shard=\"coord\"") {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "registry never filled: latest exposition:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };

    // The aggregated exposition carries the fleet families: per-shard
    // counters, ARQ health, watchdog latches, and the fleet-rollup span
    // histograms fed by the new span kinds.
    for family in [
        "vcs_fleet_slots_total",
        "vcs_fleet_net_retransmissions_total",
        "vcs_fleet_watchdog_alerts_total",
        "vcs_fleet_span_interior_converge_seconds",
        "vcs_fleet_span_net_wait_seconds",
    ] {
        assert!(body.contains(family), "exposition lacks {family}:\n{body}");
    }
    finish(child, "scraped lossy-UDP deployment");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn killed_workers_recorder_tail_reaches_the_merged_post_mortem() {
    let dir = out_dir("kill");
    let child = base_cmd(&dir, 150, 3)
        .args([
            "--transport",
            "tcp",
            "--telemetry",
            "--ckpt-every",
            "1",
            "--kill-shard",
            "1:2",
            "--verify",
        ])
        .spawn()
        .expect("spawn shard_runtime");
    finish(child, "kill-shard telemetry deployment");

    // The dead incarnation's checkpoint-cadence dump was stashed at respawn…
    assert!(
        dir.join("recorder-1.dead.jsonl").exists(),
        "no stashed recorder dump for the killed shard"
    );
    // …and shipped into the merged post-mortem as tagged recorder lines.
    let merged = std::fs::read_to_string(dir.join("merged.jsonl")).expect("merged.jsonl");
    let recorder_lines: Vec<&str> = merged
        .lines()
        .filter(|l| l.contains("\"recorder\":true"))
        .collect();
    assert!(
        !recorder_lines.is_empty(),
        "merged.jsonl carries no recorder lines"
    );
    assert!(
        recorder_lines
            .iter()
            .any(|l| l.starts_with("{\"shard\":1,")),
        "no recorder line from the killed shard 1"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn telemetry_leaves_the_deterministic_artifacts_byte_identical() {
    let shards = 3usize;
    let plain_dir = out_dir("plain");
    let plain = base_cmd(&plain_dir, 150, shards)
        .args(["--transport", "tcp"])
        .spawn()
        .expect("spawn shard_runtime");
    finish(plain, "telemetry-off deployment");
    let tele_dir = out_dir("tele");
    let tele = base_cmd(&tele_dir, 150, shards)
        .args(["--transport", "tcp", "--telemetry", "--metrics-port", "0"])
        .spawn()
        .expect("spawn shard_runtime");
    finish(tele, "telemetry-on deployment");

    // The deterministic core and every per-shard dump: byte-identical.
    for name in (0..shards)
        .map(|s| format!("shard-{s}.jsonl"))
        .chain(["outcome.txt".to_string()])
    {
        let off = std::fs::read(plain_dir.join(&name)).expect("telemetry-off artifact");
        let on = std::fs::read(tele_dir.join(&name)).expect("telemetry-on artifact");
        assert_eq!(off, on, "{name} differs with telemetry on");
    }
    // merged.jsonl: the main causal section is identical; telemetry adds
    // only the trailing `"recorder":true` lines.
    let off = std::fs::read_to_string(plain_dir.join("merged.jsonl")).expect("merged off");
    let on = std::fs::read_to_string(tele_dir.join("merged.jsonl")).expect("merged on");
    let on_main: Vec<&str> = on
        .lines()
        .filter(|l| !l.contains("\"recorder\":true"))
        .collect();
    assert_eq!(
        off.lines().collect::<Vec<_>>(),
        on_main,
        "telemetry leaked into the merged causal section"
    );
    let _ = std::fs::remove_dir_all(&plain_dir);
    let _ = std::fs::remove_dir_all(&tele_dir);
}
