//! Process-kill/resume conformance: SIGKILL one shard worker mid-round,
//! let the coordinator respawn it from its checkpoint and replay it back
//! to the present, and require the remaining trajectory to retrace the
//! clean run **identically** — same deterministic outcome core, zero
//! Theorem-4 watchdog alerts, a valid merged post-mortem, and a certified
//! Nash equilibrium.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_runtime")
}

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("process_restart_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(tag: &str, extra: &[&str]) -> (PathBuf, String) {
    let dir = out_dir(tag);
    let mut cmd = Command::new(bin());
    cmd.args([
        "--users",
        "240",
        "--window",
        "5",
        "--shards",
        "4",
        "--seed",
        "11",
        "--out-dir",
        dir.to_str().unwrap(),
        "--verify",
    ]);
    cmd.args(extra);
    let output = cmd.output().expect("spawn shard_runtime");
    let stderr = String::from_utf8_lossy(&output.stderr).into_owned();
    assert!(
        output.status.success(),
        "deployment {extra:?} failed:\n{stderr}"
    );
    (dir, stderr)
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{}/{name}: {e}", dir.display()))
}

/// Normalizes a merged post-mortem for post-recovery comparison: drops
/// `engine_init` lines and blanks the float-accumulator fields (`"phi"`,
/// `"total_profit"`) that legitimately re-base across a snapshot restore.
/// Everything else — event kinds, users, routes, slots, per-move deltas,
/// frame seq/lamport stamps — must survive byte-for-byte.
fn normalized(bytes: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(bytes).expect("utf-8 jsonl");
    text.lines()
        .filter(|line| !line.contains("\"type\":\"engine_init\""))
        .map(|line| {
            let mut out = String::with_capacity(line.len());
            let mut rest = line;
            while let Some(at) = ["\"phi\":", "\"total_profit\":"]
                .iter()
                .filter_map(|key| rest.find(key).map(|i| (i, key.len())))
                .min()
            {
                let (i, key_len) = at;
                out.push_str(&rest[..i + key_len]);
                out.push('_');
                let tail = &rest[i + key_len..];
                let end = tail.find([',', '}']).expect("number terminated by , or }");
                rest = &tail[end..];
            }
            out.push_str(rest);
            out
        })
        .collect()
}

fn count_engine_inits(bytes: &[u8]) -> usize {
    std::str::from_utf8(bytes)
        .expect("utf-8 jsonl")
        .lines()
        .filter(|line| line.contains("\"type\":\"engine_init\""))
        .count()
}

fn assert_zero_alerts(dir: &Path) {
    let stats = String::from_utf8(read(dir, "stats.txt")).unwrap();
    assert!(
        stats.lines().any(|l| l == "alerts=0"),
        "{}: watchdog alerts after recovery: {stats}",
        dir.display()
    );
}

#[test]
fn sigkilled_tcp_worker_resumes_from_checkpoint_and_retraces_identically() {
    let (clean, _) = run("tcp_clean", &["--transport", "tcp"]);
    // Kill shard 2 right after its round-2 interior phase: its round-1
    // checkpoint exists, round 2 is in flight.
    let (killed, stderr) = run("tcp_kill", &["--transport", "tcp", "--kill-shard", "2:2"]);
    assert!(
        stderr.contains("injecting SIGKILL into shard 2"),
        "kill hook never fired:\n{stderr}"
    );
    assert!(
        stderr.contains("shard 2 recovered"),
        "recovery never completed:\n{stderr}"
    );
    assert_eq!(
        read(&clean, "outcome.txt"),
        read(&killed, "outcome.txt"),
        "post-recovery trajectory diverged from the clean run"
    );
    // The merged post-mortem retraces the clean run's logical trajectory
    // exactly — same moves, users, routes, frames, and causal stamps —
    // modulo two documented recovery artifacts: the restarted engine emits
    // one extra `engine_init` at its resume point, and the incrementally
    // accumulated ϕ / total-profit fields re-base at the restored profile,
    // so post-restore events may differ in their final ulps (per-move
    // deltas still match bit-for-bit; `outcome.txt` recomputes ϕ from the
    // final profile and matched byte-identically above).
    let clean_merged = normalized(&read(&clean, "merged.jsonl"));
    let killed_merged = normalized(&read(&killed, "merged.jsonl"));
    assert_eq!(
        clean_merged, killed_merged,
        "post-recovery merged post-mortem diverged beyond the accumulator re-base"
    );
    let extra_inits = count_engine_inits(&read(&killed, "merged.jsonl"))
        - count_engine_inits(&read(&clean, "merged.jsonl"));
    assert_eq!(extra_inits, 1, "exactly one restart happened");
    assert_zero_alerts(&killed);
    for dir in [clean, killed] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn sigkilled_udp_worker_rejoins_from_a_fresh_port_under_loss() {
    let (clean, _) = run("udp_clean", &["--transport", "tcp"]);
    // UDP restart is the harder path: the respawned worker binds a fresh
    // ephemeral port and re-registers through the unknown-address Hello
    // gate while the injector keeps dropping datagrams.
    let (killed, stderr) = run(
        "udp_kill",
        &[
            "--transport",
            "udp",
            "--loss",
            "0.1",
            "--reorder",
            "0.05",
            "--rtt-ms",
            "4",
            "--kill-shard",
            "1:2",
        ],
    );
    assert!(
        stderr.contains("shard 1 recovered"),
        "recovery never completed:\n{stderr}"
    );
    assert_eq!(
        read(&clean, "outcome.txt"),
        read(&killed, "outcome.txt"),
        "lossy-UDP recovery diverged from the clean trajectory"
    );
    assert_zero_alerts(&killed);
    for dir in [clean, killed] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
