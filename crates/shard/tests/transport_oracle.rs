//! Transport-oracle conformance: the same seeded 4-shard game run over the
//! in-process channel coordinator, multi-process TCP, and multi-process
//! lossy UDP must produce **byte-identical** artifacts — per-shard JSONL
//! dumps, the merged causally-ordered post-mortem, and the deterministic
//! outcome core — and each run's merged commit log must replay on a single
//! full-game oracle engine to the same certified Nash equilibrium.
//!
//! This is the determinism contract of `crates/shard/src/deploy.rs` in
//! test form: the ARQ delivers control messages reliably in order, the
//! boundary tie-break RNG is consumed coordinator-side, and the workers
//! run the same lane code as the channel coordinator — so loss, reorder,
//! duplication, and latency must not leak into the trajectory.

use std::path::{Path, PathBuf};
use std::process::Command;

const SHARDS: usize = 4;

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_runtime")
}

fn out_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("transport_oracle_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one deployment with `--verify` (in-binary oracle replay + NE
/// certificate) and returns its artifact directory.
fn run(tag: &str, extra: &[&str]) -> PathBuf {
    let dir = out_dir(tag);
    let mut cmd = Command::new(bin());
    cmd.args([
        "--users",
        "240",
        "--window",
        "5",
        "--shards",
        &SHARDS.to_string(),
        "--seed",
        "11",
        "--out-dir",
        dir.to_str().unwrap(),
        "--verify",
    ]);
    cmd.args(extra);
    let output = cmd.output().expect("spawn shard_runtime");
    assert!(
        output.status.success(),
        "deployment over {extra:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    dir
}

fn read(dir: &Path, name: &str) -> Vec<u8> {
    std::fs::read(dir.join(name)).unwrap_or_else(|e| panic!("{}/{name}: {e}", dir.display()))
}

#[test]
fn channel_tcp_and_lossy_udp_produce_identical_certified_outcomes() {
    let chan = run("chan", &["--transport", "channel"]);
    let tcp = run("tcp", &["--transport", "tcp"]);
    let udp = run(
        "udp",
        &[
            "--transport",
            "udp",
            "--loss",
            "0.15",
            "--dup",
            "0.08",
            "--reorder",
            "0.1",
            "--rtt-ms",
            "4",
            "--jitter-ms",
            "3",
        ],
    );

    // The deterministic core and the full event history must agree byte
    // for byte across all three transports.
    let mut files: Vec<String> = vec!["outcome.txt".into(), "merged.jsonl".into()];
    files.extend((0..SHARDS).map(|s| format!("shard-{s}.jsonl")));
    for name in &files {
        let reference = read(&chan, name);
        assert!(
            !reference.is_empty(),
            "channel run produced an empty {name}"
        );
        assert_eq!(
            reference,
            read(&tcp, name),
            "{name}: channel vs tcp artifacts differ"
        );
        assert_eq!(
            reference,
            read(&udp, name),
            "{name}: channel vs lossy-udp artifacts differ"
        );
    }

    // The lossy run really was lossy — otherwise this test exercises
    // nothing beyond the clean paths.
    let stats = String::from_utf8(read(&udp, "stats.txt")).unwrap();
    let field = |key: &str| -> u64 {
        stats
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("stats.txt missing {key}: {stats}"))
            .parse()
            .unwrap()
    };
    assert!(
        field("drops") > 0,
        "15% injected loss produced zero drops: {stats}"
    );
    assert!(
        field("retransmissions") > 0,
        "dropped datagrams must force ARQ retransmissions: {stats}"
    );
    // Watchdogs stay silent on every transport.
    for dir in [&chan, &tcp, &udp] {
        let stats = String::from_utf8(read(dir, "stats.txt")).unwrap();
        assert!(
            stats.lines().any(|l| l == "alerts=0"),
            "{}: watchdog alerts in a clean run: {stats}",
            dir.display()
        );
    }

    for dir in [chan, tcp, udp] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The in-process library path: a channel deployment through
/// `run_deployment` + `verify_outcome` (no subprocesses), with the merged
/// post-mortem revalidated from disk by the test itself.
#[test]
fn library_deployment_certifies_and_merged_post_mortem_validates() {
    use vcs_obs::{validate_causal_order_merged, StampedStream};
    use vcs_shard::{run_deployment, verify_outcome, DeployConfig, TransportKind};

    let dir = out_dir("lib");
    let mut cfg = DeployConfig::new(180, 180, 5, 3, 23);
    cfg.out_dir = dir.clone();
    let outcome = run_deployment(&cfg, TransportKind::Channel).expect("channel deployment");
    assert!(outcome.converged, "small localized game must converge");
    verify_outcome(&cfg, &outcome).expect("oracle certification");

    let streams: Vec<StampedStream> = (0..3)
        .map(|s| {
            let events = vcs_obs::trace::read_trace(&dir.join(format!("shard-{s}.jsonl"))).unwrap();
            StampedStream::new(s as u32, events)
        })
        .collect();
    assert!(
        validate_causal_order_merged(&streams).is_empty(),
        "merged causal validation must accept the dumps"
    );
    let _ = std::fs::remove_dir_all(dir);
}
