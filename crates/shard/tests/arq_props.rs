//! Property-based fault matrix for the UDP ARQ primitives: under arbitrary
//! combinations of datagram loss, duplication, and reordering (acks
//! included), every payload stream reaches its fixpoint — all messages
//! delivered, **exactly once**, in sequence order — and the receiver never
//! delivers a payload twice no matter how hard the wire duplicates.
//!
//! Two adversarial regressions ride along: a drop-everything-then-heal
//! blackout (pure RTO recovery) and a 50× duplicate storm (pure
//! de-duplication).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_shard::{ArqReceiver, ArqSender, FaultConfig, FaultInjector};

/// One simulated lossy wire: carries `(deliver_at_ms, payload_bytes)` in
/// arrival-time order, faults decided by the given RNG.
struct Wire {
    rng: StdRng,
    loss: f64,
    dup: f64,
    reorder: f64,
    queue: Vec<(u64, u64, Vec<u8>)>, // (deliver_at, tie, datagram)
    tie: u64,
}

impl Wire {
    fn put(&mut self, bytes: Vec<u8>, now: u64) {
        if self.rng.random_bool(self.loss) {
            return;
        }
        let copies = if self.rng.random_bool(self.dup) { 2 } else { 1 };
        for _ in 0..copies {
            let delay = if self.rng.random_bool(self.reorder) {
                5 + self.rng.random_range(0..20)
            } else {
                1
            };
            self.tie += 1;
            self.queue.push((now + delay, self.tie, bytes.clone()));
        }
    }

    fn take_due(&mut self, now: u64) -> Vec<Vec<u8>> {
        self.queue.sort();
        let mut out = Vec::new();
        let mut rest = Vec::new();
        for item in self.queue.drain(..) {
            if item.0 <= now {
                out.push(item.2);
            } else {
                rest.push(item);
            }
        }
        self.queue = rest;
        out
    }
}

/// Runs `n` payloads through sender → faulty wire → receiver with acked
/// retransmission until the stream fixpoint, and asserts exactly-once
/// in-order delivery. Returns (delivered, retransmissions).
fn run_stream(n: usize, loss: f64, dup: f64, reorder: f64, seed: u64) -> (Vec<Vec<u8>>, u64) {
    let mut tx = ArqSender::new();
    let mut rx = ArqReceiver::new();
    let mut data_wire = Wire {
        rng: StdRng::seed_from_u64(seed),
        loss,
        dup,
        reorder,
        queue: Vec::new(),
        tie: 0,
    };
    // Acks travel over their own equally-faulty wire, as raw cum values.
    let mut ack_rng = StdRng::seed_from_u64(seed ^ 0xACC5);
    let mut delivered: Vec<Vec<u8>> = Vec::new();
    let rto = 40u64;
    let mut now = 0u64;
    for i in 0..n {
        let (_, bytes) = tx.send(format!("msg-{i}").into_bytes(), now);
        data_wire.put(bytes, now);
    }
    // 4000 ticks × 5ms ≫ worst-case recovery for n ≤ 64 at 90% loss.
    for _ in 0..4000 {
        now += 5;
        for (seq, _attempt, bytes) in tx.due(now, rto) {
            let _ = seq;
            data_wire.put(bytes, now);
        }
        for bytes in data_wire.take_due(now) {
            let d = vcs_shard::arq::Datagram::decode(&bytes).expect("wire carries datagrams");
            let out = rx.on_data(d.seq, d.payload);
            delivered.extend(out.delivered);
            // Ack (and nak-triggered fast retransmit), both lossy.
            if !ack_rng.random_bool(loss) {
                tx.on_ack(out.cum_ack, now);
            }
            if let Some(missing) = out.gap {
                if !ack_rng.random_bool(loss) {
                    if let Some((_, resend)) = tx.on_nak(missing, now) {
                        data_wire.put(resend, now);
                    }
                }
            }
        }
        if delivered.len() == n && tx.in_flight() == 0 {
            break;
        }
    }
    (delivered, tx.retransmissions())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fault matrix: loss × duplication × reorder, all applied to data
    /// AND acks. The stream always reaches its fixpoint with exactly-once
    /// in-order delivery.
    #[test]
    fn stream_fixpoint_under_loss_dup_reorder(
        n in 1usize..48,
        loss in 0.0f64..0.6,
        dup in 0.0f64..0.5,
        reorder in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let (delivered, _) = run_stream(n, loss, dup, reorder, seed);
        prop_assert!(delivered.len() == n, "stream never reached fixpoint");
        for (i, payload) in delivered.iter().enumerate() {
            prop_assert!(
                payload.as_slice() == format!("msg-{i}").as_bytes(),
                "delivery out of order or duplicated at {}", i
            );
        }
    }

    /// The receiver alone, fed raw sequence numbers in arbitrary order
    /// with arbitrary repetition: every sequence delivers at most once,
    /// and the cumulative ack never runs ahead of the in-order prefix.
    #[test]
    fn receiver_never_delivers_twice(
        seqs in prop::collection::vec(1u64..24, 1..200),
    ) {
        let mut rx = ArqReceiver::new();
        let mut seen: Vec<u64> = Vec::new();
        for &seq in &seqs {
            let out = rx.on_data(seq, seq.to_be_bytes().to_vec());
            for payload in out.delivered {
                let got = u64::from_be_bytes(payload.as_slice().try_into().unwrap());
                seen.push(got);
            }
            prop_assert_eq!(out.cum_ack, rx.cum_ack());
        }
        // Delivered = exactly the contiguous prefix of distinct sequences
        // starting at 1, each exactly once, in order.
        let expected: Vec<u64> = (1..).take_while(|s| seqs.contains(s)).collect();
        prop_assert_eq!(seen, expected);
    }

    /// The fault injector is probability-faithful at the extremes: loss=1
    /// admits nothing (and counts every drop), loss=0 admits ≥ 1 copy.
    #[test]
    fn injector_extremes(seed in any::<u64>(), n in 1usize..50) {
        let mut black_hole = FaultInjector::new(
            FaultConfig { loss: 1.0, ..FaultConfig::clean() },
            seed,
        );
        for i in 0..n {
            prop_assert!(black_hole.admit(vec![i as u8], i as u64).is_empty());
        }
        prop_assert_eq!(black_hole.dropped(), n as u64);
        let mut clean = FaultInjector::new(FaultConfig::clean(), seed);
        for i in 0..n {
            prop_assert_eq!(clean.admit(vec![i as u8], i as u64).len(), 1);
        }
        prop_assert_eq!(clean.dropped(), 0);
    }
}

/// Adversarial regression: total blackout, then heal. Every original
/// transmission is lost; recovery is pure RTO-driven retransmission.
#[test]
fn drop_all_then_heal_recovers_the_full_stream() {
    let n = 20usize;
    let (delivered, retransmissions) = run_stream(n, 1.0, 0.0, 0.0, 0x00B5_C0DE);
    // loss=1.0 would never heal — run_stream's wire uses the loss for the
    // whole run. Emulate the blackout directly instead:
    assert!(delivered.is_empty());
    assert!(
        retransmissions > 0,
        "RTO must have fired during the blackout"
    );

    let mut tx = ArqSender::new();
    let mut rx = ArqReceiver::new();
    let mut dropped_originals = 0;
    for i in 0..n {
        let (_, _bytes) = tx.send(format!("msg-{i}").into_bytes(), 0);
        dropped_originals += 1; // the wire eats every original transmission
    }
    assert_eq!(dropped_originals, n);
    assert_eq!(tx.in_flight(), n);
    // The wire heals; the next RTO sweep retransmits everything in order.
    let healed = tx.due(1_000, 40);
    assert_eq!(healed.len(), n);
    let mut delivered = Vec::new();
    for (_, _, bytes) in healed {
        let d = vcs_shard::arq::Datagram::decode(&bytes).unwrap();
        let out = rx.on_data(d.seq, d.payload);
        assert!(out.gap.is_none(), "in-order retransmission reveals no gap");
        delivered.extend(out.delivered);
        tx.on_ack(out.cum_ack, 1_000);
    }
    assert_eq!(delivered.len(), n);
    for (i, payload) in delivered.iter().enumerate() {
        assert_eq!(payload.as_slice(), format!("msg-{i}").as_bytes());
    }
    assert_eq!(tx.in_flight(), 0, "cumulative acks must clear the window");
    assert!(tx.retransmissions() >= n as u64);
}

/// Adversarial regression: a 50× duplicate storm of every datagram, in
/// order and shuffled — each payload still delivers exactly once.
#[test]
fn duplicate_storm_delivers_exactly_once() {
    let n = 16usize;
    let mut tx = ArqSender::new();
    let mut datagrams = Vec::new();
    for i in 0..n {
        let (_, bytes) = tx.send(format!("msg-{i}").into_bytes(), 0);
        datagrams.push(bytes);
    }
    // In-order storm.
    let mut rx = ArqReceiver::new();
    let mut delivered = Vec::new();
    let mut duplicates = 0u64;
    for bytes in &datagrams {
        for _ in 0..50 {
            let d = vcs_shard::arq::Datagram::decode(bytes).unwrap();
            let out = rx.on_data(d.seq, d.payload);
            delivered.extend(out.delivered);
            duplicates += u64::from(out.duplicate);
        }
    }
    assert_eq!(delivered.len(), n);
    assert_eq!(duplicates, (50 - 1) * n as u64);
    // Shuffled storm: interleave all copies in a fixed scrambled order.
    let mut rx = ArqReceiver::new();
    let mut delivered = Vec::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mut copies: Vec<usize> = (0..n * 50).map(|k| k % n).collect();
    for i in (1..copies.len()).rev() {
        let j = rng.random_range(0..=i);
        copies.swap(i, j);
    }
    for idx in copies {
        let d = vcs_shard::arq::Datagram::decode(&datagrams[idx]).unwrap();
        let out = rx.on_data(d.seq, d.payload);
        delivered.extend(out.delivered);
    }
    assert_eq!(delivered.len(), n, "shuffled storm must deliver each once");
    for (i, payload) in delivered.iter().enumerate() {
        assert_eq!(payload.as_slice(), format!("msg-{i}").as_bytes());
    }
}
