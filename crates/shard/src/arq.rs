//! UDP reliability layer: a seq/ack/nak ARQ over datagrams, plus the seeded
//! fault injector the conformance suite drives it with.
//!
//! The boundary-sync control protocol assumes a reliable in-order byte
//! channel per peer. TCP provides that natively; the UDP transport builds
//! it here from three pieces, all **pure state machines** (time is an
//! explicit `now_ms` argument, no sockets, no `Instant`) so the proptest
//! fault matrix can drive them through loss × reorder × duplication
//! schedules without touching the network:
//!
//! * [`ArqSender`] — assigns per-link sequence numbers, keeps unacked
//!   payloads, resends on NAK or retransmission timeout;
//! * [`ArqReceiver`] — reorders, de-duplicates, delivers strictly in order,
//!   and reports the first missing sequence number so the link can NAK it
//!   (the retransmit-request half of the gap-detection contract);
//! * [`FaultInjector`] — deterministic per-seed loss / duplication /
//!   reorder / RTT+jitter delay applied to outbound datagrams.
//!
//! The datagram codec follows the workspace framing discipline: fixed
//! magic (`VCSD`), explicit lengths validated before allocation, corruption
//! surfaced as a decode error.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;
use std::fmt;

/// Wire magic of every ARQ datagram: "VCSD" (VCS Datagram).
pub const DGRAM_MAGIC: [u8; 4] = *b"VCSD";

/// Fixed datagram header length: magic, kind, seq, payload length.
pub const DGRAM_HEADER: usize = 4 + 1 + 8 + 4;

/// Hard cap on a datagram payload — control messages chunk themselves well
/// below typical UDP MTU-with-fragmentation limits, and a corrupted length
/// field cannot drive an allocation past this.
pub const MAX_DGRAM_PAYLOAD: usize = 8192;

/// Datagram discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgramKind {
    /// Sequenced payload carrying one encoded control message.
    Data,
    /// Cumulative acknowledgement: every `seq' <= seq` was delivered.
    Ack,
    /// Retransmit request for exactly `seq` (the receiver's first gap).
    Nak,
}

/// One ARQ datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// What the datagram means.
    pub kind: DgramKind,
    /// `Data`: the sender's 1-based link sequence number. `Ack`: the
    /// cumulative acknowledged sequence. `Nak`: the missing sequence.
    pub seq: u64,
    /// Encoded control message (`Data` only; empty for `Ack`/`Nak`).
    pub payload: Vec<u8>,
}

/// Why a byte buffer failed to decode as a [`Datagram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DgramError {
    /// Shorter than the fixed header.
    Short(usize),
    /// Magic mismatch.
    BadMagic([u8; 4]),
    /// Unknown kind byte.
    BadKind(u8),
    /// Promised payload length above [`MAX_DGRAM_PAYLOAD`].
    Oversize(usize),
    /// Promised payload length disagrees with the bytes present.
    BadLength {
        /// Length the header promised.
        promised: usize,
        /// Payload bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for DgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DgramError::Short(n) => write!(f, "datagram shorter than header: {n} bytes"),
            DgramError::BadMagic(m) => write!(f, "datagram magic mismatch: {m:02x?}"),
            DgramError::BadKind(k) => write!(f, "unknown datagram kind {k}"),
            DgramError::Oversize(n) => write!(f, "datagram payload {n} exceeds cap"),
            DgramError::BadLength { promised, actual } => {
                write!(f, "datagram length {promised} promised, {actual} present")
            }
        }
    }
}

impl std::error::Error for DgramError {}

impl Datagram {
    /// Serializes the datagram.
    ///
    /// # Panics
    ///
    /// Panics when the payload exceeds [`MAX_DGRAM_PAYLOAD`] — senders chunk
    /// control messages below the cap by construction.
    pub fn encode(&self) -> Vec<u8> {
        assert!(
            self.payload.len() <= MAX_DGRAM_PAYLOAD,
            "datagram payload over cap"
        );
        let mut out = Vec::with_capacity(DGRAM_HEADER + self.payload.len());
        out.extend_from_slice(&DGRAM_MAGIC);
        out.push(match self.kind {
            DgramKind::Data => 0,
            DgramKind::Ack => 1,
            DgramKind::Nak => 2,
        });
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes a datagram, validating magic, kind, and length before any
    /// payload allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, DgramError> {
        if bytes.len() < DGRAM_HEADER {
            return Err(DgramError::Short(bytes.len()));
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("length checked");
        if magic != DGRAM_MAGIC {
            return Err(DgramError::BadMagic(magic));
        }
        let kind = match bytes[4] {
            0 => DgramKind::Data,
            1 => DgramKind::Ack,
            2 => DgramKind::Nak,
            k => return Err(DgramError::BadKind(k)),
        };
        let seq = u64::from_be_bytes(bytes[5..13].try_into().expect("in range"));
        let promised = u32::from_be_bytes(bytes[13..17].try_into().expect("in range")) as usize;
        if promised > MAX_DGRAM_PAYLOAD {
            return Err(DgramError::Oversize(promised));
        }
        let actual = bytes.len() - DGRAM_HEADER;
        if promised != actual {
            return Err(DgramError::BadLength { promised, actual });
        }
        Ok(Datagram {
            kind,
            seq,
            payload: bytes[DGRAM_HEADER..].to_vec(),
        })
    }
}

struct SendSlot {
    bytes: Vec<u8>,
    last_tx_ms: u64,
    attempts: u32,
}

/// Sender half of the ARQ link: sequences payloads, holds them until
/// cumulatively acked, resends on NAK or timeout. Alongside the
/// reliability machinery it keeps the telemetry counters the fleet
/// observability plane reports: NAK-driven vs. RTO-driven resends and a
/// smoothed RTT estimate (EWMA over first-attempt acks — Karn's rule, a
/// retransmitted datagram's ack is ambiguous and never sampled).
pub struct ArqSender {
    next_seq: u64,
    unacked: BTreeMap<u64, SendSlot>,
    retransmissions: u64,
    naks: u64,
    rto_fires: u64,
    srtt_ms: Option<u64>,
}

impl Default for ArqSender {
    fn default() -> Self {
        Self::new()
    }
}

impl ArqSender {
    /// A fresh sender; the first payload gets sequence 1.
    pub fn new() -> Self {
        ArqSender {
            next_seq: 1,
            unacked: BTreeMap::new(),
            retransmissions: 0,
            naks: 0,
            rto_fires: 0,
            srtt_ms: None,
        }
    }

    /// Sequences `payload` and returns `(seq, encoded datagram)` to put on
    /// the wire. The datagram stays buffered until acked.
    pub fn send(&mut self, payload: Vec<u8>, now_ms: u64) -> (u64, Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let bytes = Datagram {
            kind: DgramKind::Data,
            seq,
            payload,
        }
        .encode();
        self.unacked.insert(
            seq,
            SendSlot {
                bytes: bytes.clone(),
                last_tx_ms: now_ms,
                attempts: 1,
            },
        );
        (seq, bytes)
    }

    /// Processes a cumulative ACK: everything at or below `cum` is
    /// released. Slots released on their **first** attempt contribute an
    /// RTT sample (`now_ms − send time`) to the smoothed estimate;
    /// retransmitted slots never do (Karn's rule — the ack could belong to
    /// either transmission).
    pub fn on_ack(&mut self, cum: u64, now_ms: u64) {
        for (_, slot) in self.unacked.range(..=cum) {
            if slot.attempts == 1 {
                let sample = now_ms.saturating_sub(slot.last_tx_ms);
                self.srtt_ms = Some(match self.srtt_ms {
                    None => sample,
                    // Classic EWMA, α = 1/8.
                    Some(srtt) => (srtt * 7 + sample) / 8,
                });
            }
        }
        // BTreeMap: split_off keeps >= cum+1, i.e. the still-unacked tail.
        self.unacked = self.unacked.split_off(&(cum + 1));
    }

    /// Processes a NAK: returns the encoded datagram for the requested
    /// sequence to resend immediately (`None` if it was already acked —
    /// a stale or duplicated NAK).
    pub fn on_nak(&mut self, seq: u64, now_ms: u64) -> Option<(u32, Vec<u8>)> {
        let slot = self.unacked.get_mut(&seq)?;
        slot.attempts += 1;
        slot.last_tx_ms = now_ms;
        self.retransmissions += 1;
        self.naks += 1;
        Some((slot.attempts - 1, slot.bytes.clone()))
    }

    /// Returns `(seq, attempt, datagram)` for every unacked datagram whose
    /// retransmission timeout expired, bumping its timer and attempt count.
    pub fn due(&mut self, now_ms: u64, rto_ms: u64) -> Vec<(u64, u32, Vec<u8>)> {
        let mut out = Vec::new();
        for (&seq, slot) in self.unacked.iter_mut() {
            if now_ms.saturating_sub(slot.last_tx_ms) >= rto_ms {
                slot.attempts += 1;
                slot.last_tx_ms = now_ms;
                self.retransmissions += 1;
                self.rto_fires += 1;
                out.push((seq, slot.attempts - 1, slot.bytes.clone()));
            }
        }
        out
    }

    /// Unacked datagrams currently buffered.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }

    /// Total resends performed (NAK-driven plus timeout-driven).
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Resends triggered by an explicit receiver NAK.
    pub fn naks(&self) -> u64 {
        self.naks
    }

    /// Resends triggered by a retransmission-timeout expiry.
    pub fn rto_fires(&self) -> u64 {
        self.rto_fires
    }

    /// Smoothed RTT estimate in milliseconds (`None` until the first
    /// unambiguous sample).
    pub fn srtt_ms(&self) -> Option<u64> {
        self.srtt_ms
    }
}

/// What one incoming `Data` datagram produced at the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxOutcome {
    /// Payloads now deliverable, strictly in sequence order. May be empty
    /// (out-of-order arrival buffered) or several (a gap just healed).
    pub delivered: Vec<Vec<u8>>,
    /// The datagram had already been delivered or buffered — dropped here,
    /// but still worth re-acking (the original ACK may have been lost).
    pub duplicate: bool,
    /// First missing sequence number, when the arrival revealed a gap —
    /// the link should NAK it.
    pub gap: Option<u64>,
    /// Cumulative acknowledgement to send back: everything `<= cum_ack`
    /// has been delivered in order.
    pub cum_ack: u64,
}

/// Receiver half of the ARQ link: de-duplicates, reorders, and delivers
/// payloads strictly in sequence order. **No payload is ever delivered
/// twice** — the fault-matrix suite proves this under duplication storms.
pub struct ArqReceiver {
    next: u64,
    pending: BTreeMap<u64, Vec<u8>>,
    dup_drops: u64,
}

impl Default for ArqReceiver {
    fn default() -> Self {
        Self::new()
    }
}

impl ArqReceiver {
    /// A fresh receiver expecting sequence 1 first.
    pub fn new() -> Self {
        ArqReceiver {
            next: 1,
            pending: BTreeMap::new(),
            dup_drops: 0,
        }
    }

    /// Ingests one `Data` datagram.
    pub fn on_data(&mut self, seq: u64, payload: Vec<u8>) -> RxOutcome {
        if seq < self.next || self.pending.contains_key(&seq) {
            self.dup_drops += 1;
            return RxOutcome {
                delivered: Vec::new(),
                duplicate: true,
                gap: None,
                cum_ack: self.next - 1,
            };
        }
        self.pending.insert(seq, payload);
        let mut delivered = Vec::new();
        while let Some(payload) = self.pending.remove(&self.next) {
            delivered.push(payload);
            self.next += 1;
        }
        let gap = self.pending.keys().next().map(|_| self.next);
        RxOutcome {
            delivered,
            duplicate: false,
            gap,
            cum_ack: self.next - 1,
        }
    }

    /// Cumulative in-order high-water mark (0 = nothing delivered yet).
    pub fn cum_ack(&self) -> u64 {
        self.next - 1
    }

    /// Incoming datagrams discarded as duplicates.
    pub fn dup_drops(&self) -> u64 {
        self.dup_drops
    }
}

/// Fault model applied to outbound datagrams, all probabilities in `[0,1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a datagram is silently dropped.
    pub loss: f64,
    /// Probability a datagram is sent twice.
    pub dup: f64,
    /// Probability a datagram is held back long enough to land after
    /// datagrams sent later (reordering).
    pub reorder: f64,
    /// Injected round-trip time in milliseconds (each direction delays by
    /// half).
    pub rtt_ms: u64,
    /// Uniform extra per-datagram delay in `[0, jitter_ms]`.
    pub jitter_ms: u64,
}

impl FaultConfig {
    /// No faults, no delay.
    pub fn clean() -> Self {
        FaultConfig {
            loss: 0.0,
            dup: 0.0,
            reorder: 0.0,
            rtt_ms: 0,
            jitter_ms: 0,
        }
    }

    /// Whether this config perturbs nothing.
    pub fn is_clean(&self) -> bool {
        self.loss == 0.0
            && self.dup == 0.0
            && self.reorder == 0.0
            && self.rtt_ms == 0
            && self.jitter_ms == 0
    }

    /// A retransmission timeout safely above the injected delays: generous
    /// enough not to storm, tight enough to heal losses quickly.
    pub fn suggested_rto_ms(&self) -> u64 {
        (2 * (self.rtt_ms + self.jitter_ms) + 60).max(40)
    }
}

/// Deterministic (seeded) fault injection on outbound datagrams.
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    dropped: u64,
}

impl FaultInjector {
    /// An injector applying `cfg`, drawing all its coin flips from `seed`.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        FaultInjector {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            dropped: 0,
        }
    }

    /// Admits one outbound datagram: returns `(release_ms, bytes)` copies
    /// to schedule (empty = dropped). Reordering is modeled as extra delay,
    /// so a held-back datagram can never starve behind silence.
    pub fn admit(&mut self, bytes: Vec<u8>, now_ms: u64) -> Vec<(u64, Vec<u8>)> {
        if self.cfg.loss > 0.0 && self.rng.random_bool(self.cfg.loss) {
            self.dropped += 1;
            return Vec::new();
        }
        let copies = if self.cfg.dup > 0.0 && self.rng.random_bool(self.cfg.dup) {
            2
        } else {
            1
        };
        let mut out = Vec::with_capacity(copies);
        for _ in 0..copies {
            let mut delay = self.cfg.rtt_ms / 2;
            if self.cfg.jitter_ms > 0 {
                delay += self.rng.random_range(0..=self.cfg.jitter_ms);
            }
            if self.cfg.reorder > 0.0 && self.rng.random_bool(self.cfg.reorder) {
                delay += 15 + self.rng.random_range(0..=20u64);
            }
            out.push((now_ms + delay, bytes.clone()));
        }
        out
    }

    /// Datagrams dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datagram_codec_round_trips_and_rejects_corruption() {
        let d = Datagram {
            kind: DgramKind::Data,
            seq: 42,
            payload: vec![1, 2, 3],
        };
        let bytes = d.encode();
        assert_eq!(Datagram::decode(&bytes), Ok(d));
        assert!(matches!(
            Datagram::decode(&bytes[..10]),
            Err(DgramError::Short(10))
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 1;
        assert!(matches!(
            Datagram::decode(&bad),
            Err(DgramError::BadMagic(_))
        ));
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(matches!(
            Datagram::decode(&bad),
            Err(DgramError::BadKind(9))
        ));
        let mut bad = bytes.clone();
        bad[13..17].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            Datagram::decode(&bad),
            Err(DgramError::Oversize(_))
        ));
        let mut bad = bytes;
        bad.pop();
        assert!(matches!(
            Datagram::decode(&bad),
            Err(DgramError::BadLength { .. })
        ));
    }

    #[test]
    fn in_order_delivery_and_cumulative_ack() {
        let mut tx = ArqSender::new();
        let mut rx = ArqReceiver::new();
        for i in 0..5u8 {
            let (seq, bytes) = tx.send(vec![i], 0);
            let d = Datagram::decode(&bytes).unwrap();
            let out = rx.on_data(d.seq, d.payload);
            assert_eq!(out.delivered, vec![vec![i]]);
            assert_eq!(out.cum_ack, seq);
            assert_eq!(out.gap, None);
            tx.on_ack(out.cum_ack, 0);
        }
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.retransmissions(), 0);
        assert_eq!(tx.naks(), 0);
        assert_eq!(tx.rto_fires(), 0);
    }

    #[test]
    fn gap_is_napped_and_heals_on_resend() {
        let mut tx = ArqSender::new();
        let mut rx = ArqReceiver::new();
        let (_, d1) = tx.send(vec![1], 0);
        let (_, d2) = tx.send(vec![2], 0);
        // d1 lost; d2 arrives first.
        let d2 = Datagram::decode(&d2).unwrap();
        let out = rx.on_data(d2.seq, d2.payload);
        assert!(out.delivered.is_empty());
        assert_eq!(out.gap, Some(1));
        assert_eq!(out.cum_ack, 0);
        // NAK 1 → resend → both deliver in order.
        let (attempt, resent) = tx.on_nak(1, 5).unwrap();
        assert_eq!(attempt, 1);
        assert_eq!(resent, d1);
        let d1 = Datagram::decode(&resent).unwrap();
        let out = rx.on_data(d1.seq, d1.payload);
        assert_eq!(out.delivered, vec![vec![1], vec![2]]);
        assert_eq!(out.cum_ack, 2);
        tx.on_ack(2, 9);
        assert_eq!(tx.in_flight(), 0);
        assert_eq!(tx.retransmissions(), 1);
        assert_eq!(tx.naks(), 1, "the resend was NAK-driven");
        assert_eq!(tx.rto_fires(), 0);
    }

    #[test]
    fn duplicates_are_dropped_but_reacked() {
        let mut tx = ArqSender::new();
        let mut rx = ArqReceiver::new();
        let (_, bytes) = tx.send(vec![7], 0);
        let d = Datagram::decode(&bytes).unwrap();
        let first = rx.on_data(d.seq, d.payload.clone());
        assert_eq!(first.delivered.len(), 1);
        let dup = rx.on_data(d.seq, d.payload);
        assert!(dup.duplicate);
        assert!(dup.delivered.is_empty());
        assert_eq!(dup.cum_ack, 1, "duplicate still re-acks");
        assert_eq!(rx.dup_drops(), 1);
    }

    #[test]
    fn timeout_resend_fires_once_per_rto() {
        let mut tx = ArqSender::new();
        let (_, _) = tx.send(vec![1], 0);
        assert!(tx.due(10, 40).is_empty());
        let due = tx.due(45, 40);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].0, 1);
        assert_eq!(due[0].1, 1);
        assert!(tx.due(50, 40).is_empty(), "timer was rearmed");
        assert_eq!(tx.rto_fires(), 1);
        assert_eq!(tx.naks(), 0);
        tx.on_ack(1, 50);
        assert!(tx.due(1000, 40).is_empty());
        assert_eq!(tx.srtt_ms(), None, "retransmitted slot never samples RTT");
    }

    #[test]
    fn rtt_estimate_is_ewma_over_first_attempt_acks_only() {
        let mut tx = ArqSender::new();
        // First clean sample sets the estimate outright.
        tx.send(vec![1], 100);
        tx.on_ack(1, 140);
        assert_eq!(tx.srtt_ms(), Some(40));
        // Subsequent samples blend in with α = 1/8.
        tx.send(vec![2], 200);
        tx.on_ack(2, 208);
        assert_eq!(tx.srtt_ms(), Some((40 * 7 + 8) / 8));
        // A NAK-retransmitted slot is ambiguous and leaves the estimate be.
        let before = tx.srtt_ms();
        tx.send(vec![3], 300);
        tx.on_nak(3, 310).expect("resend");
        tx.on_ack(3, 320);
        assert_eq!(tx.srtt_ms(), before);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let cfg = FaultConfig {
            loss: 0.3,
            dup: 0.2,
            reorder: 0.2,
            rtt_ms: 20,
            jitter_ms: 5,
        };
        let run = |seed| {
            let mut inj = FaultInjector::new(cfg, seed);
            (0..100)
                .flat_map(|i| inj.admit(vec![i], u64::from(i) * 3))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn clean_injector_passes_everything_straight_through() {
        let mut inj = FaultInjector::new(FaultConfig::clean(), 1);
        for i in 0..50u8 {
            let out = inj.admit(vec![i], 7);
            assert_eq!(out, vec![(7, vec![i])]);
        }
        assert_eq!(inj.dropped(), 0);
    }
}
