//! Deployment driver: one entry point ([`run_deployment`]) that runs a
//! sharded game to its global fixpoint on any transport.
//!
//! * [`TransportKind::Channel`] — the in-process reference coordinator
//!   ([`crate::ShardedSim`]), exactly what the `shard_runtime` binary ran
//!   before socket transports existed.
//! * [`TransportKind::Tcp`] / [`TransportKind::Udp`] — one OS **process**
//!   per shard (spawned from the current executable with `--worker`), a
//!   coordinator-centric star protocol over [`crate::net`], per-round
//!   worker checkpoints, and crash recovery by history replay.
//!
//! All three produce *byte-identical* per-shard JSONL dumps, merged
//! post-mortems, and `outcome.txt` files for the same `(game, config)` —
//! the transport-oracle suite enforces it. The determinism argument:
//! every worker runs the same lane code and RNG streams as the channel
//! coordinator, the boundary tie-break RNG is consumed coordinator-side
//! (one draw per boundary user with a non-empty best-route set), and both
//! socket transports deliver control messages reliably in order, so the
//! logical trajectory is independent of loss, reorder, duplication, and
//! latency.
//!
//! ## Crash recovery
//!
//! The coordinator records each round: the interior move lists per shard
//! and every completed boundary step `(user, home, route, frame)` — a step
//! is recorded only once its `Commit` **and all replica `Apply`s** have
//! been acknowledged. When an exchange times out and the worker process
//! is confirmed dead, the coordinator respawns it; the worker restores its
//! checkpoint (round *k*) and reports it in `Hello`; the coordinator
//! replays rounds *k+1…* for that shard alone — re-running interior phases
//! (asserting the moves come out identical) and re-issuing the recorded
//! steps (re-`Commit` at home, re-`Apply` at replicas, both idempotent) —
//! and then resends the in-flight message. A timeout with a *live* worker
//! is just waited out: resending to a live worker would double-apply.
//!
//! ## Fleet observability
//!
//! With [`DeployConfig::telemetry`] on, workers stream compact
//! [`TelemetryFrame`] snapshots ahead of their phase-boundary replies; the
//! coordinator ingests them inside its guarded receive (so the lock-step
//! protocol never sees them), stamps each with the sending worker's
//! incarnation number, and folds them — together with its own per-round
//! self-captures — into a [`FleetStats`] registry served at `/metrics` on
//! `127.0.0.1:<metrics_port>` (the bound address is written to
//! `metrics.addr` in the artifact directory). Telemetry is cumulative and
//! loss-tolerant by construction, and strictly out of band: certified
//! artifacts stay byte-identical with it enabled. When a worker dies, its
//! checkpoint-refreshed flight-recorder dump is stashed before the respawn
//! and shipped into `merged.jsonl` as causally merged
//! `{"shard":…,"recorder":true,…}` tail lines.

use crate::arq::FaultConfig;
use crate::frame::BoundaryFrame;
use crate::gen::localized_game;
use crate::net::{CtrlMsg, PeerNet, TransportKind};
use crate::partition::{partition, ShardPlan};
use crate::sim::initial_profile;
use crate::worker::WorkerConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io;

/// One shard's collected `Done` stream: `(profile entries, alerts, slots)`.
type DoneStream = (Vec<(u32, u32)>, u64, u64);
use std::path::{Path, PathBuf};
use std::process::Child;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{is_nash, potential, Engine, Game, Profile};
use vcs_obs::span::SpanKind;
use vcs_obs::trace::{event_to_json, read_trace};
use vcs_obs::{
    elapsed_nanos, merge_stamped_streams, validate_causal_order_merged, AlertRoute, Event,
    FanoutSubscriber, FleetStats, JsonlSubscriber, MetricsExporter, NetStats, Obs, SpanQuantiles,
    StampedStream, StatsSubscriber, Subscriber, TelemetryFrame, WatchdogConfig, WatchdogSubscriber,
    COORD_SHARD,
};

/// Parameters of a deployment, shared verbatim between the coordinator and
/// every worker process (the game is re-derived from them, never shipped).
#[derive(Debug, Clone)]
pub struct DeployConfig {
    /// Users in the generated localized game.
    pub users: usize,
    /// Tasks in the generated localized game.
    pub tasks: usize,
    /// Locality window of the generated game.
    pub window: usize,
    /// Number of shards (= worker processes in socket mode).
    pub shards: usize,
    /// Seed for the game, the initial profile, and every RNG stream.
    pub seed: u64,
    /// Cap on coordinator rounds.
    pub max_rounds: u32,
    /// Per-shard, per-round cap on interior decision slots.
    pub interior_cap: u64,
    /// Theorem-4 watchdog `ΔP_min` for the per-shard slot budgets.
    pub delta_p_min: f64,
    /// Artifact directory: JSONL dumps, checkpoints, `merged.jsonl`,
    /// `outcome.txt`, `stats.txt`.
    pub out_dir: PathBuf,
    /// Fault injection for the UDP transport (ignored by channel/TCP).
    pub fault: FaultConfig,
    /// Seed of the fault injectors (separate from the game seed: faults
    /// must not perturb the trajectory).
    pub net_seed: u64,
    /// Checkpoint cadence in rounds (1 = every round).
    pub ckpt_every: u32,
    /// Fault-injection hook: SIGKILL worker `s` right after its interior
    /// phase of round `r`, once.
    pub kill_shard: Option<(usize, u32)>,
    /// Channel mode only: sequential interior phases instead of one thread
    /// per shard (bit-identical either way).
    pub sequential: bool,
    /// Optional watchdog alert route spec (`stderr|file:<path>|http://…`).
    pub alert_sink: Option<String>,
    /// Socket modes: stream worker telemetry frames to the coordinator's
    /// fleet registry, refresh worker flight-recorder dumps at every
    /// checkpoint, and ship dead workers' recorder tails into
    /// `merged.jsonl`.
    pub telemetry: bool,
    /// With [`telemetry`](Self::telemetry): serve the fleet registry's
    /// `/metrics` on `127.0.0.1:<port>` (0 = ephemeral; the bound address
    /// lands in `metrics.addr` under `out_dir`).
    pub metrics_port: Option<u16>,
    /// Rayon pool width for every process of the deployment (`None`/0 =
    /// `VCS_THREADS` or the machine default).
    pub threads: Option<usize>,
}

impl DeployConfig {
    /// A config with defaults matching the `shard_runtime` binary's.
    pub fn new(users: usize, tasks: usize, window: usize, shards: usize, seed: u64) -> Self {
        DeployConfig {
            users,
            tasks,
            window,
            shards,
            seed,
            max_rounds: 200,
            interior_cap: u64::MAX,
            delta_p_min: 1e-3,
            out_dir: PathBuf::from("shard_run"),
            fault: FaultConfig::clean(),
            net_seed: 0x5EED0FFA17,
            ckpt_every: 1,
            kill_shard: None,
            sequential: false,
            alert_sink: None,
            telemetry: false,
            metrics_port: None,
            threads: None,
        }
    }

    /// The deployment's game — a pure function of the config.
    pub fn game(&self) -> Game {
        localized_game(self.users, self.tasks, self.window, self.seed)
    }

    /// Serializes the worker command line for shard `shard` dialing
    /// `port`. Parsed back by [`parse_worker_args`].
    pub fn worker_args(&self, shard: usize, port: u16, transport: TransportKind) -> Vec<String> {
        let t = match transport {
            TransportKind::Tcp => "tcp",
            TransportKind::Udp => "udp",
            TransportKind::Channel => panic!("channel mode spawns no workers"),
        };
        let mut args: Vec<String> = [
            "--worker".into(),
            "--shard".into(),
            shard.to_string(),
            "--coord-port".into(),
            port.to_string(),
            "--transport".into(),
            t.into(),
            "--users".into(),
            self.users.to_string(),
            "--tasks".into(),
            self.tasks.to_string(),
            "--window".into(),
            self.window.to_string(),
            "--shards".into(),
            self.shards.to_string(),
            "--seed".into(),
            self.seed.to_string(),
            "--interior-cap".into(),
            self.interior_cap.to_string(),
            "--delta-p-min".into(),
            self.delta_p_min.to_string(),
            "--out-dir".into(),
            self.out_dir.display().to_string(),
            "--loss".into(),
            self.fault.loss.to_string(),
            "--dup".into(),
            self.fault.dup.to_string(),
            "--reorder".into(),
            self.fault.reorder.to_string(),
            "--rtt-ms".into(),
            self.fault.rtt_ms.to_string(),
            "--jitter-ms".into(),
            self.fault.jitter_ms.to_string(),
            "--net-seed".into(),
            self.net_seed.to_string(),
        ]
        .to_vec();
        if self.telemetry {
            args.push("--telemetry".into());
        }
        if let Some(threads) = self.threads {
            args.push("--threads".into());
            args.push(threads.to_string());
        }
        args
    }
}

/// Parses a worker command line produced by [`DeployConfig::worker_args`]
/// (everything after the leading `--worker`).
///
/// # Panics
///
/// Panics on unknown flags or missing values — a malformed self-spawn is a
/// bug, not an input error.
pub fn parse_worker_args(mut it: impl Iterator<Item = String>) -> WorkerConfig {
    let mut cfg = WorkerConfig {
        shard: 0,
        coord_port: 0,
        transport: TransportKind::Tcp,
        deploy: DeployConfig::new(0, 0, 0, 1, 0),
    };
    let next = |flag: &str, it: &mut dyn Iterator<Item = String>| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        let d = &mut cfg.deploy;
        match arg.as_str() {
            "--shard" => cfg.shard = next("--shard", &mut it).parse().expect("--shard"),
            "--coord-port" => {
                cfg.coord_port = next("--coord-port", &mut it).parse().expect("--coord-port");
            }
            "--transport" => {
                cfg.transport = next("--transport", &mut it).parse().expect("--transport");
            }
            "--users" => d.users = next("--users", &mut it).parse().expect("--users"),
            "--tasks" => d.tasks = next("--tasks", &mut it).parse().expect("--tasks"),
            "--window" => d.window = next("--window", &mut it).parse().expect("--window"),
            "--shards" => d.shards = next("--shards", &mut it).parse().expect("--shards"),
            "--seed" => d.seed = next("--seed", &mut it).parse().expect("--seed"),
            "--interior-cap" => {
                d.interior_cap = next("--interior-cap", &mut it)
                    .parse()
                    .expect("--interior-cap");
            }
            "--delta-p-min" => {
                d.delta_p_min = next("--delta-p-min", &mut it)
                    .parse()
                    .expect("--delta-p-min");
            }
            "--out-dir" => d.out_dir = PathBuf::from(next("--out-dir", &mut it)),
            "--loss" => d.fault.loss = next("--loss", &mut it).parse().expect("--loss"),
            "--dup" => d.fault.dup = next("--dup", &mut it).parse().expect("--dup"),
            "--reorder" => d.fault.reorder = next("--reorder", &mut it).parse().expect("--reorder"),
            "--rtt-ms" => d.fault.rtt_ms = next("--rtt-ms", &mut it).parse().expect("--rtt-ms"),
            "--jitter-ms" => {
                d.fault.jitter_ms = next("--jitter-ms", &mut it).parse().expect("--jitter-ms");
            }
            "--net-seed" => d.net_seed = next("--net-seed", &mut it).parse().expect("--net-seed"),
            "--telemetry" => d.telemetry = true,
            "--threads" => d.threads = Some(next("--threads", &mut it).parse().expect("--threads")),
            other => panic!("unknown worker argument {other}"),
        }
    }
    cfg
}

/// The deterministic core of a finished deployment plus its run stats.
#[derive(Debug, Clone)]
pub struct DeployOutcome {
    /// Whether the global fixpoint was reached within the round cap.
    pub converged: bool,
    /// Coordinator rounds executed.
    pub rounds: u32,
    /// Weighted potential `ϕ` of the merged final profile on the full game.
    pub phi: f64,
    /// The initial profile the run started from.
    pub initial: Vec<RouteId>,
    /// The merged final profile (global user order).
    pub choices: Vec<RouteId>,
    /// The merged global commit log (replayable on a full-game engine).
    pub log: Vec<(UserId, RouteId)>,
    /// Decision slots per shard.
    pub shard_slots: Vec<u64>,
    /// Watchdog alerts across all shards.
    pub alerts: u64,
    /// Coordinator-side transport/ARQ health counters (all-zero for
    /// channel and TCP — the kernel owns reliability there).
    pub net: NetStats,
    /// Wall-clock seconds of the run proper (excluded from `outcome.txt`).
    pub wall_secs: f64,
    /// The partition's boundary fraction.
    pub boundary_fraction: f64,
    /// Fleet-wide per-[`SpanKind`] latency quantiles (p50/p90/p99/max),
    /// extracted from the telemetry plane's merged decade histograms.
    /// Empty unless `cfg.telemetry` streamed frames into the registry.
    pub span_quantiles: Vec<SpanQuantiles>,
}

fn other_err(msg: String) -> io::Error {
    io::Error::other(msg)
}

/// Removes every artifact a previous run may have left in `out_dir` —
/// stale checkpoints especially must not leak into a fresh run, or a
/// restarting worker would resume the wrong trajectory.
fn clean_artifacts(cfg: &DeployConfig) -> io::Result<()> {
    std::fs::create_dir_all(&cfg.out_dir)?;
    for s in 0..cfg.shards {
        for name in [
            format!("shard-{s}.jsonl"),
            format!("net-{s}.jsonl"),
            format!("ckpt-{s}.bin"),
            format!("ckpt-{s}.tmp"),
            format!("recorder-{s}.jsonl"),
            format!("recorder-{s}.dead.jsonl"),
        ] {
            let _ = std::fs::remove_file(cfg.out_dir.join(name));
        }
    }
    for name in [
        "net-coord.jsonl",
        "merged.jsonl",
        "outcome.txt",
        "stats.txt",
        "metrics.addr",
    ] {
        let _ = std::fs::remove_file(cfg.out_dir.join(name));
    }
    Ok(())
}

/// Runs a deployment on the chosen transport, writes all artifacts
/// (per-shard dumps, validated `merged.jsonl`, `outcome.txt`,
/// `stats.txt`), and returns the outcome.
///
/// # Errors
///
/// Transport/process failures, and a failed merged causal validation.
pub fn run_deployment(cfg: &DeployConfig, transport: TransportKind) -> io::Result<DeployOutcome> {
    clean_artifacts(cfg)?;
    let outcome = match transport {
        TransportKind::Channel => run_channel(cfg)?,
        _ => Coordinator::run(cfg, transport)?,
    };
    write_post_mortem(cfg)?;
    write_outcome_file(&cfg.out_dir.join("outcome.txt"), &outcome)?;
    write_stats_file(&cfg.out_dir.join("stats.txt"), &outcome)?;
    Ok(outcome)
}

/// Oracle check of a finished deployment: replays the merged commit log on
/// a single full-game engine, asserts exact profile reconstruction, `ϕ`
/// agreement to `1e-9` (relative), and a Nash certificate.
///
/// # Errors
///
/// A human-readable description of the first violated property.
pub fn verify_outcome(cfg: &DeployConfig, outcome: &DeployOutcome) -> Result<(), String> {
    let game = cfg.game();
    let mut oracle = Engine::new_owned(game.clone(), Profile::new(&game, outcome.initial.clone()));
    let trajectory = oracle.replay_moves(&outcome.log);
    let final_phi = trajectory
        .last()
        .map(|&(phi, _)| phi)
        .unwrap_or_else(|| oracle.potential());
    if oracle.profile().choices() != &outcome.choices[..] {
        return Err("oracle replay does not reconstruct the merged profile".into());
    }
    let merged_phi = potential(&game, &Profile::new(&game, outcome.choices.clone()));
    // Relative tolerance: the replay phi is incrementally accumulated over
    // thousands of moves, so agreement scales with |phi|.
    if (final_phi - merged_phi).abs() > 1e-9 * merged_phi.abs().max(1.0) {
        return Err(format!("oracle phi {final_phi} vs merged {merged_phi}"));
    }
    if !outcome.converged {
        return Ok(()); // no NE claim without a fixpoint
    }
    if !is_nash(&game, &Profile::new(&game, outcome.choices.clone())) {
        return Err("merged profile is not a full-game Nash equilibrium".into());
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Channel mode
// ---------------------------------------------------------------------------

fn run_channel(cfg: &DeployConfig) -> io::Result<DeployOutcome> {
    use crate::sim::{ShardConfig, ShardedSim};
    let game = cfg.game();
    let mut sim = ShardedSim::new(
        game.clone(),
        ShardConfig {
            shards: cfg.shards,
            seed: cfg.seed,
            max_rounds: cfg.max_rounds,
            interior_slot_cap: cfg.interior_cap,
        },
    );
    let alert_route = cfg
        .alert_sink
        .as_deref()
        .map(|spec| AlertRoute::parse(spec).expect("valid alert route"));
    let budgets = sim.shard_slot_budgets(cfg.delta_p_min);
    let mut jsonls = Vec::new();
    let mut dogs = Vec::new();
    for (s, &budget) in budgets.iter().enumerate() {
        let dump = cfg.out_dir.join(format!("shard-{s}.jsonl"));
        let jsonl = Arc::new(JsonlSubscriber::create(&dump)?);
        let mut dog = WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: budget.is_finite().then(|| budget.ceil() as u64),
            ..WatchdogConfig::default()
        });
        if let Some(route) = &alert_route {
            dog = dog.with_sink(route.open().expect("open alert sink"));
        }
        let dog = Arc::new(dog);
        let sinks: Vec<Arc<dyn Subscriber>> = vec![jsonl.clone(), dog.clone()];
        sim.set_shard_obs(s, FanoutSubscriber::obs(sinks));
        jsonls.push(jsonl);
        dogs.push(dog);
    }
    let start = Instant::now();
    let outcome = if cfg.sequential {
        sim.run()
    } else {
        sim.run_parallel()
    };
    let wall_secs = start.elapsed().as_secs_f64();
    for jsonl in &jsonls {
        jsonl.flush()?;
    }
    Ok(DeployOutcome {
        converged: outcome.converged,
        rounds: outcome.rounds,
        phi: sim.merged_potential(),
        initial: outcome.initial,
        choices: outcome.choices,
        log: outcome.log,
        shard_slots: outcome.shard_slots,
        alerts: dogs.iter().map(|d| d.alert_count() as u64).sum(),
        net: NetStats::default(),
        wall_secs,
        boundary_fraction: outcome.boundary_fraction,
        span_quantiles: Vec::new(),
    })
}

// ---------------------------------------------------------------------------
// Socket mode: the multi-process coordinator
// ---------------------------------------------------------------------------

/// One completed boundary step: recorded only after the home `Commit` and
/// every replica `Apply` are acknowledged.
struct Step {
    user: u32,
    home: usize,
    route: u32,
    frame: Vec<u8>,
}

/// Everything the coordinator must be able to replay for a restarted
/// worker: the interior move lists (for verification) and the boundary
/// steps, per round.
struct RoundRecord {
    round: u32,
    /// Per shard: `Some(moves)` once that shard's interior phase of this
    /// round has been collected.
    interior: Vec<Option<Vec<(u32, u32)>>>,
    steps: Vec<Step>,
}

impl RoundRecord {
    fn new(round: u32, shards: usize) -> Self {
        RoundRecord {
            round,
            interior: (0..shards).map(|_| None).collect(),
            steps: Vec::new(),
        }
    }
}

enum RecvFail {
    /// The worker process has exited.
    Dead,
    Io(io::Error),
}

struct Coordinator {
    cfg: DeployConfig,
    transport: TransportKind,
    port: u16,
    net: PeerNet,
    children: Vec<Child>,
    plan: ShardPlan,
    boundary_rng: StdRng,
    log: Vec<(UserId, RouteId)>,
    history: Vec<RoundRecord>,
    current: Option<RoundRecord>,
    interior_converged: Vec<bool>,
    slots: Vec<u64>,
    kill: Option<(usize, u32)>,
    /// Telemetry plane (all `None`/disabled unless `cfg.telemetry`).
    fleet: Option<Arc<FleetStats>>,
    stats: Option<Arc<StatsSubscriber>>,
    /// The coordinator's own span sink (NetWait / BoundarySerialize).
    obs: Obs,
    /// Sequence counter of the coordinator's self-captured frames.
    self_seq: u64,
    /// Respawn count per shard — stamped onto ingested worker frames so
    /// the registry sums dead incarnations separately from the live one.
    incarnations: Vec<u32>,
    /// Keeps the fleet `/metrics` endpoint alive for the whole run.
    _exporter: Option<MetricsExporter>,
}

impl Coordinator {
    fn run(cfg: &DeployConfig, transport: TransportKind) -> io::Result<DeployOutcome> {
        let game = cfg.game();
        let plan = partition(&game, cfg.shards);
        let net_obs = if transport == TransportKind::Udp {
            Obs::new(Arc::new(JsonlSubscriber::create(
                &cfg.out_dir.join("net-coord.jsonl"),
            )?))
        } else {
            Obs::disabled()
        };
        let (net, port) = PeerNet::bind(transport, cfg.shards, cfg.fault, cfg.net_seed, net_obs)?;
        let fleet = cfg.telemetry.then(|| Arc::new(FleetStats::new()));
        let stats = cfg.telemetry.then(|| Arc::new(StatsSubscriber::new()));
        let obs = match &stats {
            Some(stats) => Obs::new(stats.clone() as Arc<dyn Subscriber>),
            None => Obs::disabled(),
        };
        let exporter = match (&fleet, cfg.metrics_port) {
            (Some(fleet), Some(metrics_port)) => {
                let exporter =
                    MetricsExporter::bind_fleet(("127.0.0.1", metrics_port), fleet.clone())?;
                eprintln!("coordinator: fleet /metrics on http://{}", exporter.addr());
                std::fs::write(
                    cfg.out_dir.join("metrics.addr"),
                    format!("{}\n", exporter.addr()),
                )?;
                Some(exporter)
            }
            _ => None,
        };
        let mut co = Coordinator {
            cfg: cfg.clone(),
            transport,
            port,
            net,
            children: Vec::new(),
            plan,
            boundary_rng: StdRng::seed_from_u64(cfg.seed ^ 0xB0D7_F1E1),
            log: Vec::new(),
            history: Vec::new(),
            current: None,
            interior_converged: vec![false; cfg.shards],
            slots: vec![0; cfg.shards],
            kill: cfg.kill_shard,
            fleet,
            stats,
            obs,
            self_seq: 0,
            incarnations: vec![0; cfg.shards],
            _exporter: exporter,
        };
        for s in 0..cfg.shards {
            co.children.push(co.spawn_worker(s)?);
        }
        for _ in 0..cfg.shards {
            let (s, ckpt_round) = co.net.accept_hello(Duration::from_secs(60))?;
            if ckpt_round != 0 {
                return Err(other_err(format!(
                    "fresh worker {s} reported checkpoint round {ckpt_round}"
                )));
            }
        }

        let start = Instant::now();
        let mut round = 0u32;
        let mut converged = false;
        while !converged && round < cfg.max_rounds {
            round += 1;
            co.current = Some(RoundRecord::new(round, cfg.shards));

            // Interior phase: fire all shards (they compute in parallel),
            // then collect per shard in ascending order — the merged log
            // keeps the channel coordinator's shard-order serialization.
            for s in 0..cfg.shards {
                co.send_recovering(s, &CtrlMsg::RunInterior { round })?;
            }
            let mut interior_total = 0u64;
            for s in 0..cfg.shards {
                let moves = co.collect_interior(s, round)?;
                interior_total += moves.len() as u64;
                co.log.extend(moves.iter().map(|&(u, r)| {
                    (
                        UserId::from_index(u as usize),
                        RouteId::from_index(r as usize),
                    )
                }));
                co.current.as_mut().expect("in round").interior[s] = Some(moves);
            }

            // Fault-injection hook: SIGKILL right between the phases.
            if let Some((ks, kr)) = co.kill {
                if kr == round {
                    eprintln!("coordinator: injecting SIGKILL into shard {ks} after round {round} interior");
                    let _ = co.children[ks].kill();
                    co.kill = None;
                }
            }

            let boundary_start = Instant::now();
            let boundary = co.boundary_phase()?;
            co.obs.emit(|| Event::SpanRecorded {
                kind: SpanKind::BoundarySerialize,
                nanos: elapsed_nanos(boundary_start),
            });
            converged = boundary == 0 && co.interior_converged.iter().all(|&c| c);

            if round.is_multiple_of(cfg.ckpt_every.max(1)) || converged || round == cfg.max_rounds {
                for s in 0..cfg.shards {
                    match co.exchange(s, &CtrlMsg::Checkpoint { round })? {
                        CtrlMsg::CheckpointDone { round: r } if r == round => {}
                        other => {
                            return Err(other_err(format!(
                                "expected CheckpointDone, got {other:?}"
                            )))
                        }
                    }
                }
            }
            let record = co.current.take().expect("in round");
            let _ = interior_total;
            co.history.push(record);
            co.publish_self_frame();
        }

        // Finish: collect final choices, alerts and slot counts.
        let n = game.users().len();
        let mut choices = vec![RouteId::from_index(0); n];
        let mut assigned = vec![false; n];
        let mut alerts = 0u64;
        for s in 0..cfg.shards {
            co.send_recovering(s, &CtrlMsg::Finish)?;
            let (entries, shard_alerts, shard_slots) = co.collect_done(s)?;
            alerts += shard_alerts;
            co.slots[s] = shard_slots;
            for (u, r) in entries {
                choices[u as usize] = RouteId::from_index(r as usize);
                assigned[u as usize] = true;
            }
        }
        if !assigned.iter().all(|&a| a) {
            return Err(other_err("some user reported by no home shard".into()));
        }
        let wall_secs = start.elapsed().as_secs_f64();
        co.publish_self_frame();
        let net = co.net.stats();
        co.reap_children();

        let phi = potential(&game, &Profile::new(&game, choices.clone()));
        Ok(DeployOutcome {
            converged,
            rounds: round,
            phi,
            initial: initial_profile(&game, cfg.seed),
            choices,
            log: co.log,
            shard_slots: co.slots,
            alerts,
            net,
            wall_secs,
            boundary_fraction: co.plan.boundary_fraction(),
            span_quantiles: co
                .fleet
                .as_deref()
                .map(FleetStats::span_quantiles)
                .unwrap_or_default(),
        })
    }

    /// Folds the coordinator's own observability snapshot into the fleet
    /// registry (one frame per round, shard label `"coord"`). A no-op with
    /// telemetry off.
    fn publish_self_frame(&mut self) {
        let (Some(fleet), Some(stats)) = (&self.fleet, &self.stats) else {
            return;
        };
        self.self_seq += 1;
        let frame =
            TelemetryFrame::capture(COORD_SHARD, self.self_seq, stats, None, self.net.stats());
        fleet.ingest(frame);
    }

    fn spawn_worker(&self, s: usize) -> io::Result<Child> {
        std::process::Command::new(std::env::current_exe()?)
            .args(self.cfg.worker_args(s, self.port, self.transport))
            .spawn()
    }

    /// Receives the next message from shard `s`, distinguishing "the
    /// worker is slow" (keep waiting, up to a hard cap) from "the worker
    /// process is gone" (recoverable). Telemetry frames are folded into
    /// the fleet registry right here and never surface to the lock-step
    /// protocol logic.
    fn recv_guarded(&mut self, s: usize) -> Result<CtrlMsg, RecvFail> {
        let deadline = Instant::now() + Duration::from_secs(120);
        let timer = self.obs.span(SpanKind::NetWait);
        loop {
            match self.net.recv(s, Duration::from_millis(200)) {
                Ok(CtrlMsg::Telemetry { bytes }) => {
                    ingest_telemetry(self.fleet.as_deref(), self.incarnations[s], s, &bytes);
                }
                Ok(msg) => {
                    timer.finish();
                    return Ok(msg);
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    match self.children[s].try_wait() {
                        Ok(Some(_)) => return Err(RecvFail::Dead),
                        Ok(None) => {}
                        Err(e) => return Err(RecvFail::Io(e)),
                    }
                    if Instant::now() >= deadline {
                        return Err(RecvFail::Io(other_err(format!(
                            "shard {s} alive but silent for 120s"
                        ))));
                    }
                }
                // A broken link with a live process: take the process down
                // and recover — a half-connected worker is unsalvageable.
                Err(_) => {
                    let _ = self.children[s].kill();
                    return Err(RecvFail::Dead);
                }
            }
        }
    }

    /// Sends `msg`, recovering the worker first if its link is down.
    fn send_recovering(&mut self, s: usize, msg: &CtrlMsg) -> io::Result<()> {
        if let Err(e) = self.net.send(s, msg) {
            eprintln!("coordinator: send to shard {s} failed ({e}); recovering");
            self.recover(s)?;
            self.net.send(s, msg)?;
        }
        Ok(())
    }

    /// One lock-step request/reply exchange with shard `s`, transparently
    /// recovering (and resending) across a worker death.
    fn exchange(&mut self, s: usize, msg: &CtrlMsg) -> io::Result<CtrlMsg> {
        loop {
            self.send_recovering(s, msg)?;
            match self.recv_guarded(s) {
                Ok(reply) => return Ok(reply),
                Err(RecvFail::Dead) => self.recover(s)?,
                Err(RecvFail::Io(e)) => return Err(e),
            }
        }
    }

    /// Collects one shard's `InteriorPart*` + `InteriorDone` stream for
    /// `round` (the `RunInterior` must already be sent), restarting the
    /// whole phase for that shard across a death.
    fn collect_interior(&mut self, s: usize, round: u32) -> io::Result<Vec<(u32, u32)>> {
        'attempt: loop {
            let mut moves: Vec<(u32, u32)> = Vec::new();
            loop {
                match self.recv_guarded(s) {
                    Ok(CtrlMsg::InteriorPart { moves: m }) => moves.extend(m),
                    Ok(CtrlMsg::InteriorDone {
                        round: r,
                        converged,
                        slots,
                        moves: n,
                    }) => {
                        if r != round || n as usize != moves.len() {
                            return Err(other_err(format!(
                                "shard {s} interior stream inconsistent: round {r}/{round}, {n} promised / {} received",
                                moves.len()
                            )));
                        }
                        self.interior_converged[s] = converged;
                        self.slots[s] = slots;
                        return Ok(moves);
                    }
                    Ok(other) => {
                        return Err(other_err(format!(
                            "shard {s}: expected interior stream, got {other:?}"
                        )))
                    }
                    Err(RecvFail::Dead) => {
                        self.recover(s)?;
                        self.net.send(s, &CtrlMsg::RunInterior { round })?;
                        continue 'attempt;
                    }
                    Err(RecvFail::Io(e)) => return Err(e),
                }
            }
        }
    }

    /// Collects one shard's `DonePart*` + `Done` stream (the `Finish` must
    /// already be sent). Returns `(entries, alerts, slots)`.
    fn collect_done(&mut self, s: usize) -> io::Result<DoneStream> {
        'attempt: loop {
            let mut entries: Vec<(u32, u32)> = Vec::new();
            loop {
                match self.recv_guarded(s) {
                    Ok(CtrlMsg::DonePart { entries: e }) => entries.extend(e),
                    Ok(CtrlMsg::Done {
                        shard,
                        alerts,
                        slots,
                        entries: n,
                    }) => {
                        if shard as usize != s || n as usize != entries.len() {
                            return Err(other_err(format!("shard {s} done stream inconsistent")));
                        }
                        return Ok((entries, alerts, slots));
                    }
                    Ok(other) => {
                        return Err(other_err(format!(
                            "shard {s}: expected done stream, got {other:?}"
                        )))
                    }
                    Err(RecvFail::Dead) => {
                        self.recover(s)?;
                        self.net.send(s, &CtrlMsg::Finish)?;
                        continue 'attempt;
                    }
                    Err(RecvFail::Io(e)) => return Err(e),
                }
            }
        }
    }

    /// The boundary phase of the current round: every boundary user
    /// best-responds in its home shard; commits broadcast to all replicas.
    fn boundary_phase(&mut self) -> io::Result<u64> {
        let boundary: Vec<UserId> = self.plan.boundary_users().to_vec();
        let mut committed = 0u64;
        for g in boundary {
            let home = self.plan.home_of(g);
            let user = g.index() as u32;
            let routes = match self.exchange(home, &CtrlMsg::BestRespond { user })? {
                CtrlMsg::Routes { user: u, routes } if u == user => routes,
                other => return Err(other_err(format!("expected Routes({user}), got {other:?}"))),
            };
            if routes.is_empty() {
                continue;
            }
            // The single tie-break draw per improving boundary user — the
            // same stream position as the channel coordinator's.
            let route = routes[self.boundary_rng.random_range(0..routes.len())];
            let frame = match self.exchange(home, &CtrlMsg::Commit { user, route })? {
                CtrlMsg::Committed { frame } => frame,
                other => return Err(other_err(format!("expected Committed, got {other:?}"))),
            };
            for t in 0..self.cfg.shards {
                if t != home {
                    self.apply_with_heal(t, &frame)?;
                }
            }
            self.current.as_mut().expect("in round").steps.push(Step {
                user,
                home,
                route,
                frame,
            });
            self.log.push((g, RouteId::from_index(route as usize)));
            committed += 1;
        }
        Ok(committed)
    }

    /// Applies `frame` at replica `t`, healing `FrameGap` replies by
    /// retransmitting the missing frames from the recorded history.
    fn apply_with_heal(&mut self, t: usize, frame: &[u8]) -> io::Result<()> {
        let want = BoundaryFrame::decode(frame).map_err(|e| other_err(format!("{e:?}")))?;
        loop {
            match self.exchange(
                t,
                &CtrlMsg::Apply {
                    frame: frame.to_vec(),
                },
            )? {
                CtrlMsg::Applied { seq } if seq == want.seq => return Ok(()),
                CtrlMsg::FrameGap { shard, from_seq } => {
                    eprintln!(
                        "coordinator: shard {t} reports gap in shard {shard}'s frames from seq {from_seq}; retransmitting"
                    );
                    for missing in self.frames_between(shard, from_seq, want.seq) {
                        match self.exchange(t, &CtrlMsg::Apply { frame: missing })? {
                            CtrlMsg::Applied { .. } => {}
                            other => {
                                return Err(other_err(format!(
                                    "gap heal at shard {t}: expected Applied, got {other:?}"
                                )))
                            }
                        }
                    }
                }
                other => {
                    return Err(other_err(format!(
                        "shard {t}: expected Applied({}), got {other:?}",
                        want.seq
                    )))
                }
            }
        }
    }

    /// Recorded frames originating at `src_shard` with sequence numbers in
    /// `[from_seq, until_seq)`, in order.
    fn frames_between(&self, src_shard: u32, from_seq: u64, until_seq: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let records = self.history.iter().chain(self.current.iter());
        for rec in records {
            for step in &rec.steps {
                if step.home as u32 != src_shard {
                    continue;
                }
                if let Ok(f) = BoundaryFrame::decode(&step.frame) {
                    if f.seq >= from_seq && f.seq < until_seq {
                        out.push(step.frame.clone());
                    }
                }
            }
        }
        out
    }

    /// Restarts a dead worker and replays everything it has to have seen:
    /// completed rounds after its checkpoint, then the completed part of
    /// the current round. On return the worker is ready for exactly the
    /// message the caller was trying to deliver.
    fn recover(&mut self, s: usize) -> io::Result<()> {
        eprintln!("coordinator: shard {s} process died; restarting from its checkpoint");
        let _ = self.children[s].wait(); // reap the dead incarnation
        self.incarnations[s] += 1;
        stash_recorder_dump(&self.cfg.out_dir, s);
        self.net.reset(s);
        self.children[s] = self.spawn_worker(s)?;
        let deadline = Instant::now() + Duration::from_secs(60);
        let ckpt_round = loop {
            match self.net.accept_hello(Duration::from_secs(5)) {
                Ok((hs, r)) if hs == s => break r,
                Ok((hs, _)) => {
                    return Err(other_err(format!(
                        "during shard {s} recovery, unexpected Hello from shard {hs}"
                    )))
                }
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    if Instant::now() >= deadline {
                        return Err(other_err(format!("restarted shard {s} never said Hello")));
                    }
                }
                Err(e) => return Err(e),
            }
        };

        // Replay completed rounds this worker's checkpoint predates.
        let history_len = self.history.len();
        for i in 0..history_len {
            if self.history[i].round > ckpt_round {
                self.replay_round(s, i, None)?;
            }
        }
        // Replay the completed part of the in-flight round, if its
        // interior for this shard was already collected (otherwise the
        // caller's retried RunInterior covers it).
        if let Some(rec) = self.current.take() {
            if rec.interior[s].is_some() {
                self.replay_current(s, &rec)?;
            }
            self.current = Some(rec);
        }
        eprintln!(
            "coordinator: shard {s} recovered (checkpoint round {ckpt_round}, replayed to present)"
        );
        Ok(())
    }

    /// Replays one completed history round for shard `s`: re-run its
    /// interior (asserting determinism) and re-issue every recorded step.
    fn replay_round(&mut self, s: usize, index: usize, _: Option<()>) -> io::Result<()> {
        let round = self.history[index].round;
        self.net.send(s, &CtrlMsg::RunInterior { round })?;
        let moves = self.collect_interior_plain(s, round)?;
        let expected = self.history[index].interior[s]
            .as_deref()
            .expect("completed round has all interiors");
        if moves != expected {
            return Err(other_err(format!(
                "shard {s} replay diverged in round {round}: interior moves differ"
            )));
        }
        let steps = self.history[index].steps.len();
        for i in 0..steps {
            let (user, home, route, frame) = {
                let st = &self.history[index].steps[i];
                (st.user, st.home, st.route, st.frame.clone())
            };
            self.replay_step(s, user, home, route, &frame)?;
        }
        Ok(())
    }

    fn replay_current(&mut self, s: usize, rec: &RoundRecord) -> io::Result<()> {
        self.net
            .send(s, &CtrlMsg::RunInterior { round: rec.round })?;
        let moves = self.collect_interior_plain(s, rec.round)?;
        let expected = rec.interior[s].as_deref().expect("checked by caller");
        if moves != expected {
            return Err(other_err(format!(
                "shard {s} replay diverged in round {}: interior moves differ",
                rec.round
            )));
        }
        for st in &rec.steps {
            self.replay_step(s, st.user, st.home, st.route, &st.frame)?;
        }
        Ok(())
    }

    fn replay_step(
        &mut self,
        s: usize,
        user: u32,
        home: usize,
        route: u32,
        frame: &[u8],
    ) -> io::Result<()> {
        if home == s {
            // Re-commit at home: the restarted worker rolled back to its
            // checkpoint, so this applies exactly once and must reproduce
            // the recorded frame bit-for-bit.
            self.net.send(s, &CtrlMsg::Commit { user, route })?;
            match self.recv_plain(s)? {
                CtrlMsg::Committed { frame: f } if f == frame => Ok(()),
                CtrlMsg::Committed { .. } => Err(other_err(format!(
                    "shard {s} replay diverged: re-committed frame differs for user {user}"
                ))),
                other => Err(other_err(format!("expected Committed, got {other:?}"))),
            }
        } else {
            // Re-apply at a replica: absorbed by the applied-seq table if
            // the checkpoint already covered it.
            self.net.send(
                s,
                &CtrlMsg::Apply {
                    frame: frame.to_vec(),
                },
            )?;
            match self.recv_plain(s)? {
                CtrlMsg::Applied { .. } => Ok(()),
                other => Err(other_err(format!("expected Applied, got {other:?}"))),
            }
        }
    }

    /// Plain recv during recovery — a second death mid-recovery is fatal.
    fn recv_plain(&mut self, s: usize) -> io::Result<CtrlMsg> {
        match self.recv_guarded(s) {
            Ok(msg) => Ok(msg),
            Err(RecvFail::Dead) => Err(other_err(format!(
                "shard {s} died again during recovery replay"
            ))),
            Err(RecvFail::Io(e)) => Err(e),
        }
    }

    fn collect_interior_plain(&mut self, s: usize, round: u32) -> io::Result<Vec<(u32, u32)>> {
        let mut moves: Vec<(u32, u32)> = Vec::new();
        loop {
            match self.recv_plain(s)? {
                CtrlMsg::InteriorPart { moves: m } => moves.extend(m),
                CtrlMsg::InteriorDone {
                    round: r, moves: n, ..
                } => {
                    if r != round || n as usize != moves.len() {
                        return Err(other_err(format!(
                            "shard {s} replay interior stream inconsistent"
                        )));
                    }
                    return Ok(moves);
                }
                other => {
                    return Err(other_err(format!(
                        "shard {s} replay: expected interior stream, got {other:?}"
                    )))
                }
            }
        }
    }

    /// Waits for worker processes to exit (pumping the socket so their
    /// final ARQ drains get acked), then kills stragglers.
    fn reap_children(&mut self) {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let all_done = self
                .children
                .iter_mut()
                .all(|c| matches!(c.try_wait(), Ok(Some(_))));
            if all_done {
                return;
            }
            if Instant::now() >= deadline {
                for c in &mut self.children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return;
            }
            self.net.idle_pump(Duration::from_millis(50));
        }
    }
}

/// Decodes one telemetry frame off the control socket and folds it into the
/// fleet registry, stamping the coordinator-side incarnation count so a
/// respawned worker's counters accumulate instead of rolling back. Malformed
/// frames (the wire may hand the codec anything) are logged and dropped —
/// telemetry loss must never fail the run.
fn ingest_telemetry(fleet: Option<&FleetStats>, incarnation: u32, s: usize, bytes: &[u8]) {
    let Some(fleet) = fleet else { return };
    match TelemetryFrame::decode(bytes) {
        Ok(mut frame) => {
            frame.incarnation = incarnation;
            fleet.ingest(frame);
        }
        Err(e) => eprintln!("coordinator: dropping malformed telemetry from shard {s}: {e}"),
    }
}

/// Preserves a dead worker's checkpoint-cadence flight-recorder dump before
/// the respawned incarnation starts overwriting the live file. Appending
/// keeps every dead incarnation's tail if a shard dies more than once.
fn stash_recorder_dump(out_dir: &Path, s: usize) {
    let live = out_dir.join(format!("recorder-{s}.jsonl"));
    let Ok(dump) = std::fs::read(&live) else {
        return; // no dump yet (telemetry off, or death before first checkpoint)
    };
    let dead = out_dir.join(format!("recorder-{s}.dead.jsonl"));
    use std::io::Write as _;
    let stashed = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&dead)
        .and_then(|mut f| f.write_all(&dump));
    match stashed {
        Ok(()) => {
            let _ = std::fs::remove_file(&live);
            eprintln!(
                "coordinator: stashed shard {s} flight-recorder dump ({} bytes) for the post-mortem",
                dump.len()
            );
        }
        Err(e) => eprintln!("coordinator: failed to stash shard {s} recorder dump: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Artifacts
// ---------------------------------------------------------------------------

/// Reads every shard dump back, validates the merged cross-shard causal
/// order, and writes `merged.jsonl`.
fn write_post_mortem(cfg: &DeployConfig) -> io::Result<()> {
    let streams: Vec<StampedStream> = (0..cfg.shards)
        .map(|s| {
            let path = cfg.out_dir.join(format!("shard-{s}.jsonl"));
            let events = read_trace(&path)
                .map_err(|e| other_err(format!("re-read shard {s} dump: {e:?}")))?;
            Ok(StampedStream::new(s as u32, events))
        })
        .collect::<io::Result<_>>()?;
    let violations = validate_causal_order_merged(&streams);
    if !violations.is_empty() {
        let mut detail = String::new();
        for v in violations.iter().take(16) {
            detail.push_str(&format!("  {v:?}\n"));
        }
        return Err(other_err(format!(
            "merged causal validation failed with {} violation(s):\n{detail}",
            violations.len()
        )));
    }
    let merged = merge_stamped_streams(&streams);
    let path = cfg.out_dir.join("merged.jsonl");
    use std::io::Write as _;
    let mut out = io::BufWriter::new(std::fs::File::create(&path)?);
    for (shard, event) in &merged {
        writeln!(
            out,
            "{{\"shard\":{shard},\"event\":{}}}",
            event_to_json(event)
        )?;
    }

    // Crash-shipped recorder tails: merge the flight-recorder dumps (dead
    // incarnations stashed by `recover`, plus each survivor's last
    // checkpoint dump) causally *among themselves* and append them tagged
    // `"recorder":true`. They duplicate events already in the main streams
    // by design — a recorder ring is the last N events before death — so
    // they are merged separately, never validated against the main body.
    // Telemetry-gated: with telemetry off, `merged.jsonl` stays
    // byte-identical to a recorder-less run.
    if cfg.telemetry {
        let mut recorder_streams: Vec<StampedStream> = Vec::new();
        for s in 0..cfg.shards {
            let mut events = Vec::new();
            for name in [
                format!("recorder-{s}.dead.jsonl"),
                format!("recorder-{s}.jsonl"),
            ] {
                let path = cfg.out_dir.join(name);
                if path.exists() {
                    events
                        .extend(read_trace(&path).map_err(|e| {
                            other_err(format!("re-read shard {s} recorder: {e:?}"))
                        })?);
                }
            }
            if !events.is_empty() {
                recorder_streams.push(StampedStream::new(s as u32, events));
            }
        }
        for (shard, event) in &merge_stamped_streams(&recorder_streams) {
            writeln!(
                out,
                "{{\"shard\":{shard},\"recorder\":true,\"event\":{}}}",
                event_to_json(event)
            )?;
        }
    }
    out.flush()
}

/// Writes the deterministic core of the outcome — everything here must be
/// byte-identical across transports and fault schedules for the same
/// `(game, config)`.
fn write_outcome_file(path: &Path, o: &DeployOutcome) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "converged={}", o.converged);
    let _ = writeln!(s, "rounds={}", o.rounds);
    let _ = writeln!(s, "phi={:.17e}", o.phi);
    let join = |rs: &[RouteId]| {
        rs.iter()
            .map(|r| r.index().to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(s, "initial={}", join(&o.initial));
    let _ = writeln!(s, "choices={}", join(&o.choices));
    let log = o
        .log
        .iter()
        .map(|&(u, r)| format!("{}:{}", u.index(), r.index()))
        .collect::<Vec<_>>()
        .join(";");
    let _ = writeln!(s, "log={log}");
    std::fs::write(path, s)
}

/// Writes the run stats — wall-clock and transport counters, explicitly
/// *not* part of the cross-transport determinism contract.
fn write_stats_file(path: &Path, o: &DeployOutcome) -> io::Result<()> {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "alerts={}", o.alerts);
    let _ = writeln!(s, "retransmissions={}", o.net.retransmissions);
    let _ = writeln!(s, "drops={}", o.net.drops);
    let _ = writeln!(s, "naks={}", o.net.naks);
    let _ = writeln!(s, "dup_drops={}", o.net.dup_drops);
    let _ = writeln!(s, "rto_fires={}", o.net.rto_fires);
    let _ = writeln!(s, "wall_secs={:.3}", o.wall_secs);
    let _ = writeln!(s, "shard_slots={:?}", o.shard_slots);
    let _ = writeln!(s, "boundary_fraction={:.6}", o.boundary_fraction);
    std::fs::write(path, s)
}
