//! Open-loop load generator for a live `platform_serve` process.
//!
//! The generator schedules requests from a seeded Poisson process (ideal
//! exponential inter-arrival times at `rate_hz`) and writes each one at
//! its *scheduled* instant, never waiting for replies — the open-loop
//! discipline. Per-request latency is measured from the **scheduled send
//! time** to reply receipt, so queueing delay a saturated server inflicts
//! on the generator itself is charged to the server, not silently
//! excluded (the coordinated-omission correction).
//!
//! The request mix is weight-driven over Join / Leave / BestRespond, with
//! two guard rails: an empty agent pool forces Join, and a pool at
//! `max_agents` forbids it (so a long run holds a roughly constant
//! population instead of growing without bound). Leaves retire the agent
//! from the pool at *send* time — per-connection FIFO ordering guarantees
//! the server sees the retirement after every earlier request that named
//! the agent, so a well-formed run has zero rejected requests.
//!
//! A `Query` brackets the run on each side; the cumulative decision-slot
//! delta between the two, divided by the span between them, is the
//! server's **sustained slots/sec** under this offered load — the
//! serving-layer counterpart of the batch benchmarks' slots-to-converge.

use std::collections::HashMap;
use std::io::{self};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_obs::LatencyHistogram;
use vcs_runtime::net::{connect_with_backoff, read_frame, write_frame};
use vcs_runtime::{ServeReply, ServeReplyBody, ServeRequest, ServeRequestBody, ANY_SHARD};

/// Shape of one load generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// The serving process's request address.
    pub addr: String,
    /// Offered request rate (Poisson arrivals per second).
    pub rate_hz: f64,
    /// How long to keep offering load.
    pub duration: Duration,
    /// Seed for arrival times and the request mix.
    pub seed: u64,
    /// Cap on the simulated agent pool (live joined vehicles).
    pub max_agents: usize,
    /// Relative weights of Join / Leave / BestRespond in the mix.
    pub mix: (u32, u32, u32),
    /// Send a `Shutdown` request after the run (CI teardown).
    pub shutdown_after: bool,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: "127.0.0.1:0".into(),
            rate_hz: 200.0,
            duration: Duration::from_secs(10),
            seed: 1,
            max_agents: 100_000,
            mix: (2, 1, 5),
            shutdown_after: false,
        }
    }
}

/// What one load run measured.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Requests written (including the two bracketing queries).
    pub sent: u64,
    /// Replies received before the drain deadline.
    pub replies: u64,
    /// Replies that were served (not `Rejected`).
    pub replies_ok: u64,
    /// `Rejected` replies.
    pub rejected: u64,
    /// Join / Leave / BestRespond requests sent.
    pub joins: u64,
    /// Leave requests sent.
    pub leaves: u64,
    /// BestRespond requests sent.
    pub responds: u64,
    /// Wall clock of the offered-load phase, seconds.
    pub duration_secs: f64,
    /// Offered rate actually achieved, requests/sec.
    pub offered_rps: f64,
    /// Served replies per second of offered-load wall clock.
    pub goodput_rps: f64,
    /// `replies_ok / sent` — 1.0 for a clean run.
    pub served_ratio: f64,
    /// Client-observed latency quantiles, milliseconds (scheduled-send →
    /// reply, coordinated-omission corrected).
    pub p50_ms: f64,
    /// 90th percentile latency, milliseconds.
    pub p90_ms: f64,
    /// 99th percentile latency, milliseconds.
    pub p99_ms: f64,
    /// 99.9th percentile latency, milliseconds.
    pub p999_ms: f64,
    /// Largest observed latency, milliseconds.
    pub max_ms: f64,
    /// Mean latency, milliseconds.
    pub mean_ms: f64,
    /// Server-side decision slots per second between the bracketing
    /// queries (0 when a query reply was lost).
    pub sustained_slots_per_sec: f64,
    /// Server population at the closing query.
    pub users_final: u64,
}

impl LoadReport {
    /// Renders the report as a JSON object (one `BENCH_load.json` row).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sent\": {}, \"replies\": {}, \"replies_ok\": {}, \"rejected\": {}, \
             \"joins\": {}, \"leaves\": {}, \"responds\": {}, \
             \"duration_secs\": {:.3}, \"offered_rps\": {:.1}, \"goodput_rps\": {:.1}, \
             \"served_ratio\": {:.4}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"p999_ms\": {:.3}, \"max_ms\": {:.3}, \"mean_ms\": {:.3}, \
             \"sustained_slots_per_sec\": {:.1}, \"users_final\": {}}}",
            self.sent,
            self.replies,
            self.replies_ok,
            self.rejected,
            self.joins,
            self.leaves,
            self.responds,
            self.duration_secs,
            self.offered_rps,
            self.goodput_rps,
            self.served_ratio,
            self.p50_ms,
            self.p90_ms,
            self.p99_ms,
            self.p999_ms,
            self.max_ms,
            self.mean_ms,
            self.sustained_slots_per_sec,
            self.users_final,
        )
    }
}

/// Reply-side state shared between the sender (main thread) and the
/// reader thread.
struct Inflight {
    /// Request id → scheduled send instant (latency epoch).
    pending: HashMap<u64, Instant>,
    /// Agents confirmed joined and not yet retired.
    agents: Vec<u64>,
    /// `(slots, users, at)` per Stats reply, in arrival order.
    stats: Vec<(u64, u64, Instant)>,
}

fn nanos_to_ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Runs one open-loop load generation session against a live server.
/// Blocks for `duration` plus a bounded drain.
///
/// # Errors
///
/// Connection and frame-codec I/O errors. Lost replies are not errors —
/// they surface as `served_ratio < 1`.
pub fn run_loadgen(opts: &LoadgenOptions) -> io::Result<LoadReport> {
    let mut stream = connect_with_backoff(opts.addr.as_str(), 10, Duration::from_millis(50))?;
    let read_half = stream.try_clone()?;

    let shared = Arc::new(Mutex::new(Inflight {
        pending: HashMap::new(),
        agents: Vec::new(),
        stats: Vec::new(),
    }));
    let hist = Arc::new(LatencyHistogram::new());
    let ok = Arc::new(AtomicU64::new(0));
    let rejected = Arc::new(AtomicU64::new(0));
    let done_sending = Arc::new(AtomicBool::new(false));

    let reader = {
        let shared = Arc::clone(&shared);
        let hist = Arc::clone(&hist);
        let ok = Arc::clone(&ok);
        let rejected = Arc::clone(&rejected);
        let done_sending = Arc::clone(&done_sending);
        let mut r = read_half;
        let _ = r.set_read_timeout(Some(Duration::from_millis(100)));
        std::thread::spawn(move || {
            let mut drain_deadline: Option<Instant> = None;
            loop {
                match read_frame(&mut r) {
                    Ok(payload) => {
                        let now = Instant::now();
                        let Ok(reply) = ServeReply::decode(Bytes::from(payload)) else {
                            return; // desynchronized server: stop reading
                        };
                        let mut s = shared.lock().expect("loadgen state");
                        if let Some(scheduled) = s.pending.remove(&reply.id) {
                            hist.record_nanos(
                                u64::try_from(now.duration_since(scheduled).as_nanos())
                                    .unwrap_or(u64::MAX),
                            );
                        }
                        match reply.body {
                            ServeReplyBody::Rejected { .. } => {
                                rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            ServeReplyBody::Joined { user, .. } => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                s.agents.push(user);
                            }
                            ServeReplyBody::Stats { users, slots, .. } => {
                                ok.fetch_add(1, Ordering::Relaxed);
                                s.stats.push((slots, users, now));
                            }
                            _ => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        let drained = {
                            let s = shared.lock().expect("loadgen state");
                            s.pending.is_empty()
                        };
                        if done_sending.load(Ordering::SeqCst) {
                            if drained {
                                return;
                            }
                            // Bounded drain: give stragglers five seconds.
                            let deadline = *drain_deadline
                                .get_or_insert_with(|| Instant::now() + Duration::from_secs(5));
                            if Instant::now() > deadline {
                                return;
                            }
                        }
                    }
                    Err(_) => return,
                }
            }
        })
    };

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut next_id = 0u64;
    let mut send = |stream: &mut TcpStream,
                    body: ServeRequestBody,
                    scheduled: Instant,
                    shared: &Mutex<Inflight>|
     -> io::Result<u64> {
        let id = next_id;
        next_id += 1;
        shared
            .lock()
            .expect("loadgen state")
            .pending
            .insert(id, scheduled);
        write_frame(stream, ServeRequest { id, body }.encode().as_ref())?;
        Ok(id)
    };

    // Opening query: the slots baseline.
    let start = Instant::now();
    send(&mut stream, ServeRequestBody::Query, start, &shared)?;

    let (w_join, w_leave, w_respond) = opts.mix;
    let total_weight = w_join + w_leave + w_respond;
    let mut joins = 0u64;
    let mut leaves = 0u64;
    let mut responds = 0u64;
    let mut scheduled = start;
    loop {
        // Ideal Poisson arrivals: exponential inter-arrival times laid out
        // on the absolute schedule, independent of reply progress.
        let u: f64 = rng.random_range(0.0..1.0);
        let dt = -(1.0 - u).ln() / opts.rate_hz.max(1e-9);
        scheduled += Duration::from_secs_f64(dt);
        if scheduled.duration_since(start) > opts.duration {
            break;
        }
        let now = Instant::now();
        if scheduled > now {
            std::thread::sleep(scheduled - now);
        }
        let body = {
            let mut s = shared.lock().expect("loadgen state");
            let n_agents = s.agents.len();
            let pick = rng.random_range(0..total_weight.max(1));
            if n_agents == 0 || (pick < w_join && n_agents < opts.max_agents) {
                ServeRequestBody::Join { shard: ANY_SHARD }
            } else if pick < w_join + w_leave || n_agents >= opts.max_agents {
                // Retire at send time so no later request names this agent.
                let i = rng.random_range(0..n_agents);
                let user = s.agents.swap_remove(i);
                ServeRequestBody::Leave { user }
            } else {
                let user = s.agents[rng.random_range(0..n_agents)];
                ServeRequestBody::BestRespond { user }
            }
        };
        match body {
            ServeRequestBody::Join { .. } => joins += 1,
            ServeRequestBody::Leave { .. } => leaves += 1,
            ServeRequestBody::BestRespond { .. } => responds += 1,
            _ => {}
        }
        send(&mut stream, body, scheduled, &shared)?;
    }

    // Closing query, then let the reader drain.
    send(
        &mut stream,
        ServeRequestBody::Query,
        Instant::now(),
        &shared,
    )?;
    let offered_wall = start.elapsed();
    done_sending.store(true, Ordering::SeqCst);
    let _ = reader.join();

    if opts.shutdown_after {
        let shutdown = ServeRequest {
            id: next_id,
            body: ServeRequestBody::Shutdown,
        };
        write_frame(&mut stream, shutdown.encode().as_ref())?;
        // Best-effort: read the acknowledgement so the server's reply
        // write does not race the socket teardown.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = read_frame(&mut stream);
    }

    let sent = next_id;
    let replies_ok = ok.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    let snap = hist.snapshot();
    let s = shared.lock().expect("loadgen state");
    let (slots_per_sec, users_final) = match (s.stats.first(), s.stats.last()) {
        (Some(&(slots0, _, at0)), Some(&(slots1, users1, at1))) if at1 > at0 => (
            (slots1.saturating_sub(slots0)) as f64 / (at1 - at0).as_secs_f64(),
            users1,
        ),
        (_, Some(&(_, users1, _))) => (0.0, users1),
        _ => (0.0, 0),
    };
    let duration_secs = offered_wall.as_secs_f64();
    Ok(LoadReport {
        sent,
        replies: replies_ok + rejected,
        replies_ok,
        rejected,
        joins,
        leaves,
        responds,
        duration_secs,
        offered_rps: sent as f64 / duration_secs.max(1e-9),
        goodput_rps: replies_ok as f64 / duration_secs.max(1e-9),
        served_ratio: replies_ok as f64 / (sent as f64).max(1.0),
        p50_ms: nanos_to_ms(snap.quantile_nanos(0.50)),
        p90_ms: nanos_to_ms(snap.quantile_nanos(0.90)),
        p99_ms: nanos_to_ms(snap.quantile_nanos(0.99)),
        p999_ms: nanos_to_ms(snap.quantile_nanos(0.999)),
        max_ms: nanos_to_ms(snap.max_nanos()),
        mean_ms: nanos_to_ms(snap.mean_nanos()),
        sustained_slots_per_sec: slots_per_sec,
        users_final,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::{start_platform_serve, ServeOptions};
    use vcs_online::ServeCoreConfig;

    #[test]
    fn loadgen_drives_a_live_server_cleanly() {
        let handle = start_platform_serve(&ServeOptions {
            shards: 2,
            core: ServeCoreConfig {
                n_tasks: 8,
                initial_users: 12,
                seed: 33,
                ..ServeCoreConfig::default()
            },
            window: Duration::from_millis(50),
            ..ServeOptions::default()
        })
        .expect("start server");

        let report = run_loadgen(&LoadgenOptions {
            addr: handle.addr().to_string(),
            rate_hz: 400.0,
            duration: Duration::from_millis(1500),
            seed: 9,
            max_agents: 50,
            shutdown_after: true,
            ..LoadgenOptions::default()
        })
        .expect("loadgen run");
        handle.wait();

        assert!(report.sent > 100, "offered load was generated: {report:?}");
        assert_eq!(report.replies, report.sent, "every request was answered");
        assert_eq!(report.rejected, 0, "well-formed run has no rejects");
        assert!((report.served_ratio - 1.0).abs() < 1e-9);
        assert!(report.sustained_slots_per_sec > 0.0);
        assert!(report.p50_ms > 0.0 && report.p99_ms >= report.p50_ms);
        assert!(report.max_ms >= report.p999_ms);
        assert!(report.joins >= report.leaves, "pool never goes negative");
        let json = report.to_json();
        assert!(json.contains("\"served_ratio\": 1.0000"));
        assert!(json.contains("sustained_slots_per_sec"));
    }
}
