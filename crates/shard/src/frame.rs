//! The boundary-sync wire format.
//!
//! When a boundary user commits a move at its home shard, the coordinator
//! broadcasts the committed move to every other shard as a
//! [`BoundaryFrame`] — a fixed-size binary frame carrying the mover, the
//! route transition, and the sender's causal stamp (per-sender sequence
//! number plus Lamport clock, the same [`FrameStamper`] discipline the
//! runtime channel uses). Replicas decode the frame and apply the move
//! silently ([`Engine::apply_remote_move`]); the stamps flow into each
//! shard's event stream so merged post-mortems can re-establish the
//! cross-shard happens-before order.
//!
//! The codec is deliberately rigid — fixed length, magic-prefixed,
//! big-endian — so corruption surfaces as a decode error rather than a
//! silently skewed replica (the trace-fuzzing suite leans on this).
//!
//! [`FrameStamper`]: vcs_obs::FrameStamper
//! [`Engine::apply_remote_move`]: vcs_core::Engine::apply_remote_move

use std::fmt;

/// Wire magic: "VCSB" (VCS Boundary).
const MAGIC: [u8; 4] = *b"VCSB";

/// Exact encoded length of a [`BoundaryFrame`] in bytes.
pub const FRAME_LEN: usize = 36;

/// One committed boundary move, as broadcast shard-to-shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryFrame {
    /// Home shard of the mover (the frame's causal sender).
    pub shard: u32,
    /// Global user id of the mover.
    pub user: u32,
    /// Route the user moved away from (post-mortem context; replicas only
    /// need `to_route`).
    pub from_route: u32,
    /// Route the user committed to.
    pub to_route: u32,
    /// Per-sender frame sequence number (1-based).
    pub seq: u64,
    /// Sender's Lamport clock at send time.
    pub lamport: u64,
}

/// Why a byte slice failed to decode as a [`BoundaryFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The slice is not exactly [`FRAME_LEN`] bytes.
    BadLength(usize),
    /// The first four bytes are not the `VCSB` magic.
    BadMagic([u8; 4]),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadLength(len) => {
                write!(f, "boundary frame must be {FRAME_LEN} bytes, got {len}")
            }
            FrameError::BadMagic(magic) => {
                write!(f, "boundary frame magic mismatch: {magic:02x?}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl BoundaryFrame {
    /// Serializes the frame to its fixed wire layout.
    pub fn encode(&self) -> [u8; FRAME_LEN] {
        let mut out = [0u8; FRAME_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&self.shard.to_be_bytes());
        out[8..12].copy_from_slice(&self.user.to_be_bytes());
        out[12..16].copy_from_slice(&self.from_route.to_be_bytes());
        out[16..20].copy_from_slice(&self.to_route.to_be_bytes());
        out[20..28].copy_from_slice(&self.seq.to_be_bytes());
        out[28..36].copy_from_slice(&self.lamport.to_be_bytes());
        out
    }

    /// Decodes a frame, rejecting wrong lengths and magic mismatches.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() != FRAME_LEN {
            return Err(FrameError::BadLength(bytes.len()));
        }
        let magic: [u8; 4] = bytes[0..4].try_into().expect("length checked");
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let u32_at =
            |at: usize| u32::from_be_bytes(bytes[at..at + 4].try_into().expect("in range"));
        let u64_at =
            |at: usize| u64::from_be_bytes(bytes[at..at + 8].try_into().expect("in range"));
        Ok(BoundaryFrame {
            shard: u32_at(4),
            user: u32_at(8),
            from_route: u32_at(12),
            to_route: u32_at(16),
            seq: u64_at(20),
            lamport: u64_at(28),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BoundaryFrame {
        BoundaryFrame {
            shard: 3,
            user: 812,
            from_route: 1,
            to_route: 2,
            seq: 41,
            lamport: 97,
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let frame = sample();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), FRAME_LEN);
        assert_eq!(BoundaryFrame::decode(&bytes), Ok(frame));
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = sample().encode();
        for len in 0..FRAME_LEN {
            assert_eq!(
                BoundaryFrame::decode(&bytes[..len]),
                Err(FrameError::BadLength(len))
            );
        }
    }

    #[test]
    fn magic_corruption_is_rejected() {
        let mut bytes = sample().encode();
        bytes[2] ^= 0x40;
        assert!(matches!(
            BoundaryFrame::decode(&bytes),
            Err(FrameError::BadMagic(_))
        ));
    }
}
