//! The sharded multi-engine simulator and its boundary-sync coordinator.
//!
//! [`ShardedSim`] runs one incremental [`Engine`] per shard, each over the
//! sub-game induced by the shard's members (its interior users plus *every*
//! boundary user, with **global task ids preserved** — see
//! [`crate::partition`] for why that makes every participant count a member
//! can observe exact). Convergence alternates two phases per coordinator
//! round:
//!
//! 1. **Interior convergence** — each shard runs the paper's best-response
//!    and SUU dynamics over its interior users only, to a local fixpoint
//!    (or a slot cap). Interior users of different shards share no task, so
//!    these runs commute: their move logs concatenate (in shard order) into
//!    a serialization some single-engine schedule could have produced.
//! 2. **Boundary sync** — the coordinator walks all boundary users in
//!    ascending global id; each best-responds *in its home shard*, commits
//!    there ([`Engine::apply_move`]), and the committed move is broadcast
//!    to every replica as a causally stamped [`BoundaryFrame`] and applied
//!    silently ([`Engine::apply_remote_move`]), re-dirtying the interior
//!    users it touches.
//!
//! The run reaches the **global fixpoint** when a boundary round commits no
//! move while every shard's interior is converged — then no user anywhere
//! has an improving deviation, i.e. the merged profile is a Nash
//! equilibrium of the full game (the oracle tests replay the merged log on
//! a single full-game engine and check `ϕ` agreement to 1e-9).
//!
//! Everything is deterministic in `(game, config)`: per-shard RNGs and the
//! coordinator RNG are derived from the config seed, and the threaded
//! driver ([`ShardedSim::run_parallel`]) produces bit-identical results to
//! the sequential one because shard lanes share no mutable state during
//! phase 1 and logs are merged in shard order.
//!
//! [`Engine`]: vcs_core::Engine
//! [`Engine::apply_move`]: vcs_core::Engine::apply_move
//! [`Engine::apply_remote_move`]: vcs_core::Engine::apply_remote_move

use crate::frame::BoundaryFrame;
use crate::partition::{partition, ShardPlan};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_core::bounds::slot_upper_bound;
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{BestResponse, Engine, Game, Profile};
use vcs_obs::{Event, FrameStamper, Obs};
use vcs_online::{Snapshot, SnapshotError};

/// Configuration of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards to cut the game into (≥ 1).
    pub shards: usize,
    /// Seed for the initial profile and all per-lane/coordinator RNGs.
    pub seed: u64,
    /// Cap on coordinator rounds before giving up on convergence.
    pub max_rounds: u32,
    /// Per-shard, per-round cap on interior decision slots (`u64::MAX` =
    /// run each interior phase to its local fixpoint).
    pub interior_slot_cap: u64,
}

impl ShardConfig {
    /// A config with the default round cap and uncapped interior phases.
    pub fn new(shards: usize, seed: u64) -> Self {
        ShardConfig {
            shards,
            seed,
            max_rounds: 200,
            interior_slot_cap: u64::MAX,
        }
    }
}

/// One shard's lane: its engine over the member sub-game, its RNG, and the
/// driver-side best-response cache for its interior (driven) users. Shared
/// between the in-process coordinator ([`ShardedSim`]) and the socket-mode
/// worker process (`crate::worker`), which is what keeps the two execution
/// modes bit-identical.
pub(crate) struct ShardLane {
    pub(crate) engine: Engine<'static>,
    pub(crate) rng: StdRng,
    pub(crate) obs: Obs,
    /// Local id → this lane drives the user in phase 1 (interior & home).
    pub(crate) driven: Vec<bool>,
    /// Cached best responses, maintained for driven users only.
    pub(crate) responses: Vec<BestResponse>,
    pub(crate) improving_flag: Vec<bool>,
    /// Sorted local ids of driven users with a non-empty best-route set.
    pub(crate) improving: Vec<u32>,
    pub(crate) drained: Vec<UserId>,
    pub(crate) edits: Vec<(u32, bool)>,
    /// Decision slots committed at this shard (interior + boundary-home).
    pub(crate) slots: u64,
    /// Whether the last interior phase ended at a local fixpoint (as
    /// opposed to the slot cap).
    pub(crate) converged: bool,
}

impl ShardLane {
    /// Wraps an engine as a lane with fresh driver caches. `driven[l]` marks
    /// the local users this lane's interior phase moves (interior users of
    /// the shard, i.e. everyone except boundary replicas and boundary
    /// homes).
    pub(crate) fn build(engine: Engine<'static>, rng: StdRng, driven: Vec<bool>) -> Self {
        let m = driven.len();
        assert_eq!(m, engine.game().users().len(), "one driven flag per user");
        ShardLane {
            engine,
            rng,
            obs: Obs::default(),
            driven,
            responses: (0..m)
                .map(|_| BestResponse {
                    best_routes: Vec::new(),
                    gain: 0.0,
                    best_profit: 0.0,
                })
                .collect(),
            improving_flag: vec![false; m],
            improving: Vec::new(),
            drained: Vec::new(),
            edits: Vec::new(),
            slots: 0,
            converged: false,
        }
    }
}

/// The seeded random initial profile every execution mode starts from: one
/// uniform route per user, drawn in user-id order — matching the
/// single-engine dynamics' initialisation.
pub(crate) fn initial_profile(game: &Game, seed: u64) -> Vec<RouteId> {
    let mut rng = StdRng::seed_from_u64(seed);
    game.users()
        .iter()
        .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
        .collect()
}

/// Shard `s`'s lane RNG seed, derived from the config seed: a deployment is
/// a pure function of `(game, config)` regardless of transport.
pub(crate) fn lane_seed(seed: u64, s: usize) -> u64 {
    seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(s as u64 + 1))
}

/// Per-round progress report from [`ShardedSim::step_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based coordinator round number.
    pub round: u32,
    /// Interior moves committed across all shards this round.
    pub interior_moves: u64,
    /// Boundary moves committed this round.
    pub boundary_moves: u64,
    /// Whether the global fixpoint was reached at the end of this round.
    pub converged: bool,
}

/// Final outcome of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// The merged final profile (global user order).
    pub choices: Vec<RouteId>,
    /// The initial profile the run started from.
    pub initial: Vec<RouteId>,
    /// The merged global commit log, a serialization of every committed
    /// move (replayable on a full-game engine).
    pub log: Vec<(UserId, RouteId)>,
    /// Coordinator rounds executed.
    pub rounds: u32,
    /// Whether the global fixpoint was reached within the round cap.
    pub converged: bool,
    /// Total interior moves.
    pub interior_moves: u64,
    /// Total boundary moves.
    pub boundary_moves: u64,
    /// Decision slots per shard (aggregate throughput numerator).
    pub shard_slots: Vec<u64>,
    /// Boundary frames broadcast (one TX per boundary commit).
    pub frames_sent: u64,
    /// Total frame bytes delivered to replicas.
    pub frame_bytes: u64,
    /// The plan's partition-quality metric.
    pub boundary_fraction: f64,
}

/// A shard-scoped checkpoint: one engine [`Snapshot`] per shard plus the
/// coordinator state (RNGs, causal stamper, counters) needed to resume the
/// run on its exact trajectory. Taken at coordinator-round boundaries.
#[derive(Debug, Clone)]
pub struct ShardCheckpoint {
    /// Encoded per-shard engine snapshots, shard order.
    pub shards: Vec<Bytes>,
    rngs: Vec<StdRng>,
    boundary_rng: StdRng,
    stamper: FrameStamper,
    rounds: u32,
    converged: bool,
    slots: Vec<u64>,
    interior_moves: u64,
    boundary_moves: u64,
    frames_sent: u64,
    frame_bytes: u64,
}

/// The sharded multi-engine simulator. See the module docs for the
/// protocol; construct with [`ShardedSim::new`], drive with
/// [`ShardedSim::run`] / [`ShardedSim::run_parallel`] or round-by-round
/// with [`ShardedSim::step_round`].
pub struct ShardedSim {
    game: Game,
    plan: ShardPlan,
    config: ShardConfig,
    lanes: Vec<ShardLane>,
    /// shard → local id → global id.
    locals: Vec<Vec<UserId>>,
    /// shard → global id → local id (`u32::MAX` when absent; boundary
    /// users are present everywhere, interior users only at home).
    local_of: Vec<Vec<u32>>,
    boundary_rng: StdRng,
    stamper: FrameStamper,
    initial: Vec<RouteId>,
    log: Vec<(UserId, RouteId)>,
    move_buf: Vec<(UserId, RouteId)>,
    rounds: u32,
    converged: bool,
    interior_moves: u64,
    boundary_moves: u64,
    frames_sent: u64,
    frame_bytes: u64,
}

/// Runs one shard's interior phase to a local fixpoint (or `cap` slots),
/// appending committed moves as *local* `(user, route)` pairs to `out`.
/// Returns the number of moves committed by this call.
pub(crate) fn converge_interior(
    lane: &mut ShardLane,
    cap: u64,
    out: &mut Vec<(UserId, RouteId)>,
) -> u64 {
    let mut done = 0u64;
    loop {
        // Refresh responses for users dirtied since the last slot and keep
        // the sorted improving set in sync (incremental edits, falling back
        // to a rebuild when the batch of changes is large).
        lane.engine.take_dirty_into(&mut lane.drained);
        for &u in &lane.drained {
            let i = u.index();
            if !lane.driven[i] {
                continue;
            }
            lane.engine.best_route_set_into(u, &mut lane.responses[i]);
            let now = !lane.responses[i].best_routes.is_empty();
            if now != lane.improving_flag[i] {
                lane.improving_flag[i] = now;
                lane.edits.push((i as u32, now));
            }
        }
        if lane.edits.len() > lane.improving.len() / 8 + 32 {
            lane.improving.clear();
            lane.improving.extend(
                (0..lane.improving_flag.len())
                    .filter(|&i| lane.improving_flag[i])
                    .map(|i| i as u32),
            );
        } else {
            for &(i, now) in &lane.edits {
                match lane.improving.binary_search(&i) {
                    Ok(at) if !now => {
                        lane.improving.remove(at);
                    }
                    Err(at) if now => {
                        lane.improving.insert(at, i);
                    }
                    _ => {}
                }
            }
        }
        lane.edits.clear();

        if lane.improving.is_empty() {
            lane.converged = true;
            return done;
        }
        if done >= cap {
            lane.converged = false;
            return done;
        }

        // SUU grant: one uniform pick among improving users, then a uniform
        // tie-break among that user's best-route set.
        let local = lane.improving[lane.rng.random_range(0..lane.improving.len())];
        let user = UserId::from_index(local as usize);
        let resp = &lane.responses[local as usize];
        let route = resp.best_routes[lane.rng.random_range(0..resp.best_routes.len())];
        lane.engine.apply_move(user, route);
        lane.slots += 1;
        done += 1;
        out.push((user, route));
        let (slot, phi, total) = (
            lane.slots,
            lane.engine.potential(),
            lane.engine.total_profit(),
        );
        lane.obs.emit(|| Event::SlotCompleted {
            slot,
            updated: 1,
            phi,
            total_profit: total,
        });
    }
}

impl ShardedSim {
    /// Builds a sharded run over `game` from a seeded random initial
    /// profile (one uniform route per user, drawn in user-id order —
    /// matching the single-engine dynamics' initialisation).
    pub fn new(game: Game, config: ShardConfig) -> Self {
        let initial = initial_profile(&game, config.seed);
        Self::with_initial(game, config, initial)
    }

    /// Builds a sharded run from an explicit initial profile.
    ///
    /// # Panics
    ///
    /// Panics when `initial.len()` differs from the user count.
    pub fn with_initial(game: Game, config: ShardConfig, initial: Vec<RouteId>) -> Self {
        assert_eq!(
            initial.len(),
            game.users().len(),
            "initial profile must cover every user"
        );
        let plan = partition(&game, config.shards);
        let mut sim = ShardedSim {
            boundary_rng: StdRng::seed_from_u64(config.seed ^ 0xB0D7_F1E1),
            stamper: FrameStamper::default(),
            plan,
            lanes: Vec::new(),
            locals: Vec::new(),
            local_of: Vec::new(),
            log: Vec::new(),
            move_buf: Vec::new(),
            rounds: 0,
            converged: false,
            interior_moves: 0,
            boundary_moves: 0,
            frames_sent: 0,
            frame_bytes: 0,
            initial,
            config,
            game,
        };
        for s in 0..sim.config.shards {
            sim.build_lane(s);
        }
        sim
    }

    /// Builds lane `s` from scratch, slicing the global initial profile
    /// down to the lane's members.
    fn build_lane(&mut self, s: usize) {
        let members = self.plan.members(s);
        let choices: Vec<RouteId> = members.iter().map(|&g| self.initial[g.index()]).collect();
        let sub = self.game.subgame(&members);
        let profile = Profile::new(&sub, choices);
        let engine = Engine::new_owned(sub, profile);
        self.push_lane(s, members, engine);
    }

    /// Registers an engine as lane `s`, deriving its RNG and driver caches.
    fn push_lane(&mut self, s: usize, members: Vec<UserId>, engine: Engine<'static>) {
        let m = members.len();
        let n = self.game.users().len();
        let mut driven = vec![false; m];
        let mut local_of = vec![u32::MAX; n];
        for (l, &g) in members.iter().enumerate() {
            local_of[g.index()] = l as u32;
            driven[l] = !self.plan.is_boundary(g);
        }
        self.lanes.push(ShardLane::build(
            engine,
            StdRng::seed_from_u64(lane_seed(self.config.seed, s)),
            driven,
        ));
        self.locals.push(members);
        self.local_of.push(local_of);
    }

    /// The partition the run executes under.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The full game (global ids).
    pub fn game(&self) -> &Game {
        &self.game
    }

    /// Coordinator rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Whether the global fixpoint has been reached.
    pub fn is_converged(&self) -> bool {
        self.converged
    }

    /// The merged global commit log so far (or, after a resume, since the
    /// resume point).
    pub fn log(&self) -> &[(UserId, RouteId)] {
        &self.log
    }

    /// The profile the run started from (after a resume: the merged profile
    /// at the resume point).
    pub fn initial_choices(&self) -> &[RouteId] {
        &self.initial
    }

    /// Attaches an observability handle to shard `s`: the lane's engine
    /// emits `MoveCommitted` into it, the driver adds `SlotCompleted` and
    /// the coordinator `FrameSent`/`FrameReceived` with causal stamps.
    pub fn set_shard_obs(&mut self, s: usize, obs: Obs) {
        self.lanes[s].engine.set_obs(obs.clone());
        self.lanes[s].obs = obs;
    }

    /// Theorem-4 slot upper bounds, one per shard's sub-game — the budgets
    /// a per-shard watchdog should enforce.
    pub fn shard_slot_budgets(&self, delta_p_min: f64) -> Vec<f64> {
        self.lanes
            .iter()
            .map(|l| slot_upper_bound(l.engine.game(), delta_p_min))
            .collect()
    }

    /// Decision slots committed per shard.
    pub fn shard_slots(&self) -> Vec<u64> {
        self.lanes.iter().map(|l| l.slots).collect()
    }

    /// The merged global profile: every user's current route read from its
    /// home lane (boundary replicas agree by protocol construction — see
    /// [`ShardedSim::replicas_consistent`]).
    pub fn merged_choices(&self) -> Vec<RouteId> {
        // Every user is a member of its home lane, so every entry is
        // overwritten below (the placeholder never survives).
        let mut out = vec![RouteId::from_index(0); self.game.users().len()];
        for (s, lane) in self.lanes.iter().enumerate() {
            for (l, &g) in self.locals[s].iter().enumerate() {
                if self.plan.home_of(g) == s {
                    out[g.index()] = lane.engine.profile().choice(UserId::from_index(l));
                }
            }
        }
        out
    }

    /// The weighted potential `ϕ` of the merged profile on the *full* game.
    pub fn merged_potential(&self) -> f64 {
        let profile = Profile::new(&self.game, self.merged_choices());
        vcs_core::potential(&self.game, &profile)
    }

    /// Debug invariant: every boundary user's route agrees across all of
    /// its replicas.
    pub fn replicas_consistent(&self) -> bool {
        self.plan.boundary_users().iter().all(|&g| {
            let home = self.plan.home_of(g);
            let at = |s: usize| {
                let l = self.local_of[s][g.index()];
                self.lanes[s]
                    .engine
                    .profile()
                    .choice(UserId::from_index(l as usize))
            };
            (0..self.lanes.len()).all(|s| at(s) == at(home))
        })
    }

    /// Runs one shard's interior phase and merges its moves (as global ids)
    /// into the global log. Returns the move count.
    fn converge_lane(&mut self, s: usize) -> u64 {
        let cap = self.config.interior_slot_cap;
        let mut buf = std::mem::take(&mut self.move_buf);
        let n = converge_interior(&mut self.lanes[s], cap, &mut buf);
        let locals = &self.locals[s];
        self.log
            .extend(buf.drain(..).map(|(lu, r)| (locals[lu.index()], r)));
        self.move_buf = buf;
        n
    }

    /// One coordinator boundary round: every boundary user best-responds in
    /// its home shard; commits are broadcast to all replicas as stamped
    /// [`BoundaryFrame`]s. Returns the number of moves committed.
    fn boundary_round(&mut self) -> u64 {
        let ShardedSim {
            plan,
            lanes,
            local_of,
            boundary_rng,
            stamper,
            log,
            frames_sent,
            frame_bytes,
            ..
        } = self;
        let mut committed = 0u64;
        for &g in plan.boundary_users() {
            let home = plan.home_of(g);
            let local = UserId::from_index(local_of[home][g.index()] as usize);
            let resp = lanes[home].engine.best_route_set(local);
            if resp.best_routes.is_empty() {
                continue;
            }
            let route = resp.best_routes[boundary_rng.random_range(0..resp.best_routes.len())];

            // Commit at home: the one MoveCommitted event for this move.
            let home_lane = &mut lanes[home];
            let from = home_lane.engine.apply_move(local, route);
            home_lane.slots += 1;
            let (slot, phi, total) = (
                home_lane.slots,
                home_lane.engine.potential(),
                home_lane.engine.total_profit(),
            );
            home_lane.obs.emit(|| Event::SlotCompleted {
                slot,
                updated: 1,
                phi,
                total_profit: total,
            });
            log.push((g, route));
            committed += 1;

            // Broadcast as a causally stamped frame; replicas decode from
            // the wire bytes and apply silently.
            let stamp = stamper.send(home as u32);
            let frame = BoundaryFrame {
                shard: home as u32,
                user: g.index() as u32,
                from_route: from.index() as u32,
                to_route: route.index() as u32,
                seq: stamp.seq,
                lamport: stamp.lamport,
            };
            let wire = frame.encode();
            let len = wire.len() as u32;
            lanes[home].obs.emit(|| Event::FrameSent {
                bytes: len,
                seq: stamp.seq,
                lamport: stamp.lamport,
            });
            *frames_sent += 1;
            for (t, lane) in lanes.iter_mut().enumerate() {
                if t == home {
                    continue;
                }
                let decoded = BoundaryFrame::decode(&wire).expect("coordinator frames round-trip");
                let lt = UserId::from_index(local_of[t][decoded.user as usize] as usize);
                lane.engine
                    .apply_remote_move(lt, RouteId::from_index(decoded.to_route as usize));
                let rx = stamper.receive(t as u32, stamp);
                lane.obs.emit(|| Event::FrameReceived {
                    bytes: len,
                    seq: rx.seq,
                    lamport: rx.lamport,
                });
                *frame_bytes += len as u64;
            }
        }
        committed
    }

    fn finish_round(&mut self, interior: u64) -> RoundReport {
        let boundary = self.boundary_round();
        self.interior_moves += interior;
        self.boundary_moves += boundary;
        self.converged = boundary == 0 && self.lanes.iter().all(|l| l.converged);
        RoundReport {
            round: self.rounds,
            interior_moves: interior,
            boundary_moves: boundary,
            converged: self.converged,
        }
    }

    /// Executes one coordinator round (interior phases sequentially, then
    /// the boundary sync).
    pub fn step_round(&mut self) -> RoundReport {
        self.rounds += 1;
        let mut interior = 0u64;
        for s in 0..self.lanes.len() {
            interior += self.converge_lane(s);
        }
        self.finish_round(interior)
    }

    /// Executes one coordinator round with the interior phases on one OS
    /// thread per shard. Bit-identical to [`ShardedSim::step_round`]: lanes
    /// share no mutable state in phase 1 and logs merge in shard order.
    pub fn step_round_parallel(&mut self) -> RoundReport {
        self.rounds += 1;
        let cap = self.config.interior_slot_cap;
        let mut bufs: Vec<Vec<(UserId, RouteId)>> = self.lanes.iter().map(|_| Vec::new()).collect();
        let mut moved = vec![0u64; self.lanes.len()];
        std::thread::scope(|scope| {
            for ((lane, buf), n) in self
                .lanes
                .iter_mut()
                .zip(bufs.iter_mut())
                .zip(moved.iter_mut())
            {
                scope.spawn(move || *n = converge_interior(lane, cap, buf));
            }
        });
        for (s, mut buf) in bufs.into_iter().enumerate() {
            let locals = &self.locals[s];
            self.log
                .extend(buf.drain(..).map(|(lu, r)| (locals[lu.index()], r)));
        }
        self.finish_round(moved.iter().sum())
    }

    fn run_inner(&mut self, parallel: bool) -> ShardedOutcome {
        while !self.converged && self.rounds < self.config.max_rounds {
            if parallel {
                self.step_round_parallel();
            } else {
                self.step_round();
            }
        }
        self.outcome()
    }

    /// Runs to the global fixpoint (or the round cap), sequentially.
    pub fn run(&mut self) -> ShardedOutcome {
        self.run_inner(false)
    }

    /// Runs to the global fixpoint (or the round cap) with one interior
    /// thread per shard.
    pub fn run_parallel(&mut self) -> ShardedOutcome {
        self.run_inner(true)
    }

    /// The outcome at the current point of the run.
    pub fn outcome(&self) -> ShardedOutcome {
        ShardedOutcome {
            choices: self.merged_choices(),
            initial: self.initial.clone(),
            log: self.log.clone(),
            rounds: self.rounds,
            converged: self.converged,
            interior_moves: self.interior_moves,
            boundary_moves: self.boundary_moves,
            shard_slots: self.shard_slots(),
            frames_sent: self.frames_sent,
            frame_bytes: self.frame_bytes,
            boundary_fraction: self.plan.boundary_fraction(),
        }
    }

    /// Captures a shard-scoped checkpoint. Valid at coordinator-round
    /// boundaries (between [`ShardedSim::step_round`] calls): each shard's
    /// engine is snapshotted independently and the coordinator state (RNG
    /// streams, causal stamper, counters) rides along, so
    /// [`ShardedSim::resume`] retraces the exact remaining trajectory.
    pub fn checkpoint(&self) -> ShardCheckpoint {
        ShardCheckpoint {
            shards: self
                .lanes
                .iter()
                .map(|l| Snapshot::capture(&l.engine).encode())
                .collect(),
            rngs: self.lanes.iter().map(|l| l.rng.clone()).collect(),
            boundary_rng: self.boundary_rng.clone(),
            stamper: self.stamper.clone(),
            rounds: self.rounds,
            converged: self.converged,
            slots: self.lanes.iter().map(|l| l.slots).collect(),
            interior_moves: self.interior_moves,
            boundary_moves: self.boundary_moves,
            frames_sent: self.frames_sent,
            frame_bytes: self.frame_bytes,
        }
    }

    /// Rebuilds a run from a checkpoint over the same `game` and an
    /// equivalent `config`. The partition is recomputed (it is a pure
    /// function of game and shard count); each lane's engine is restored
    /// from its snapshot; RNGs and the stamper resume their exact streams.
    /// The continuation's [`ShardedSim::log`] starts empty and
    /// [`ShardedSim::initial_choices`] is the merged profile at the resume
    /// point.
    pub fn resume(
        game: Game,
        config: ShardConfig,
        checkpoint: ShardCheckpoint,
    ) -> Result<Self, SnapshotError> {
        assert_eq!(
            checkpoint.shards.len(),
            config.shards,
            "checkpoint shard count must match the config"
        );
        let plan = partition(&game, config.shards);
        let mut sim = ShardedSim {
            boundary_rng: checkpoint.boundary_rng,
            stamper: checkpoint.stamper,
            plan,
            lanes: Vec::new(),
            locals: Vec::new(),
            local_of: Vec::new(),
            log: Vec::new(),
            move_buf: Vec::new(),
            rounds: checkpoint.rounds,
            // A checkpoint taken exactly at the fixpoint stays converged;
            // otherwise the resumed run re-enters the round loop.
            converged: checkpoint.converged,
            interior_moves: checkpoint.interior_moves,
            boundary_moves: checkpoint.boundary_moves,
            frames_sent: checkpoint.frames_sent,
            frame_bytes: checkpoint.frame_bytes,
            initial: Vec::new(),
            config,
            game,
        };
        for (s, bytes) in checkpoint.shards.into_iter().enumerate() {
            let snapshot = Snapshot::decode(bytes)?;
            let members = sim.plan.members(s);
            assert_eq!(
                snapshot.game.users().len(),
                members.len(),
                "shard {s} snapshot user count must match the recomputed plan"
            );
            let engine = snapshot.restore();
            sim.push_lane(s, members, engine);
        }
        for (lane, rng) in sim.lanes.iter_mut().zip(checkpoint.rngs) {
            lane.rng = rng;
        }
        for (lane, slots) in sim.lanes.iter_mut().zip(checkpoint.slots) {
            lane.slots = slots;
        }
        sim.initial = sim.merged_choices();
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::localized_game;
    use vcs_core::is_nash;

    fn run_pair(shards: usize, seed: u64) -> (Game, ShardedOutcome) {
        let game = localized_game(60, 60, 4, seed);
        let mut sim = ShardedSim::new(game.clone(), ShardConfig::new(shards, seed));
        let outcome = sim.run();
        assert!(sim.replicas_consistent(), "boundary replicas must agree");
        (game, outcome)
    }

    #[test]
    fn single_shard_run_converges_without_frames() {
        let (game, outcome) = run_pair(1, 3);
        assert!(outcome.converged);
        assert_eq!(outcome.boundary_moves, 0);
        assert_eq!(outcome.frames_sent, 0);
        assert_eq!(outcome.boundary_fraction, 0.0);
        let profile = Profile::new(&game, outcome.choices);
        assert!(is_nash(&game, &profile));
    }

    #[test]
    fn sharded_fixpoint_is_a_nash_equilibrium_of_the_full_game() {
        for shards in [2, 3, 4] {
            let (game, outcome) = run_pair(shards, 11 + shards as u64);
            assert!(outcome.converged, "{shards} shards should converge");
            let profile = Profile::new(&game, outcome.choices);
            assert!(
                is_nash(&game, &profile),
                "{shards}-shard fixpoint must be a full-game NE"
            );
        }
    }

    #[test]
    fn merged_log_replays_to_the_merged_potential_on_a_full_engine() {
        let (game, outcome) = run_pair(3, 29);
        let profile = Profile::new(&game, outcome.initial.clone());
        let mut oracle = Engine::new_owned(game.clone(), profile);
        let trajectory = oracle.replay_moves(&outcome.log);
        let final_phi = trajectory
            .last()
            .map(|&(phi, _)| phi)
            .unwrap_or_else(|| oracle.potential());
        let merged = vcs_core::potential(&game, &Profile::new(&game, outcome.choices.clone()));
        assert!(
            (final_phi - merged).abs() <= 1e-9,
            "oracle replay phi {final_phi} vs merged {merged}"
        );
        assert_eq!(oracle.profile().choices(), &outcome.choices[..]);
    }

    #[test]
    fn parallel_interior_phases_are_bit_identical_to_sequential() {
        let game = localized_game(80, 80, 5, 41);
        let config = ShardConfig::new(4, 41);
        let mut seq = ShardedSim::new(game.clone(), config.clone());
        let mut par = ShardedSim::new(game, config);
        let a = seq.run();
        let b = par.run_parallel();
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.log, b.log);
        assert_eq!(a.shard_slots, b.shard_slots);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.frames_sent, b.frames_sent);
    }

    #[test]
    fn checkpoint_resume_retraces_the_remaining_trajectory() {
        let game = localized_game(70, 70, 4, 53);
        let config = ShardConfig::new(3, 53);
        let mut full = ShardedSim::new(game.clone(), config.clone());
        full.step_round();
        let checkpoint = full.checkpoint();
        let split = full.log().len();
        let a = full.run();

        let mut resumed = ShardedSim::resume(game, config, checkpoint).expect("decodable");
        let b = resumed.run();
        assert_eq!(a.choices, b.choices);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(&a.log[split..], &b.log[..], "continuation log matches");
        assert_eq!(b.initial, a_initial_at_split(&a, split));

        fn a_initial_at_split(a: &ShardedOutcome, split: usize) -> Vec<RouteId> {
            let mut profile = a.initial.clone();
            for &(u, r) in &a.log[..split] {
                profile[u.index()] = r;
            }
            profile
        }
    }

    #[test]
    fn shard_slot_budgets_cover_each_lane_subgame() {
        let game = localized_game(50, 50, 4, 61);
        let sim = ShardedSim::new(game, ShardConfig::new(2, 61));
        let budgets = sim.shard_slot_budgets(1e-3);
        assert_eq!(budgets.len(), 2);
        assert!(budgets.iter().all(|&b| b.is_finite() && b > 0.0));
    }
}
