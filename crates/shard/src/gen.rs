//! Spatially localized synthetic games for sharded deployments.
//!
//! The workspace's generic `synthetic_game` draws every route's tasks
//! uniformly over the whole task set, which percolates the conflict graph
//! into one giant component — any cut makes almost every user boundary, and
//! sharding degenerates to full synchronisation. Real vehicular sensing is
//! not like that: a vehicle's recommended routes all live near its
//! origin–destination corridor, so its coverable tasks cluster spatially.
//!
//! [`localized_game`] models exactly that. Tasks are laid out along a line
//! (ids are positions on the corridor); user `i` is anchored at position
//! `i·T/N` and each of its routes covers 1–4 tasks drawn from the window of
//! width `2·window + 1` around the anchor. All parameter distributions
//! (rewards, increments, detours, congestion, preference weights, platform
//! split) match the paper-range generic generator, so results on localized
//! games are comparable with the rest of the benchmark suite — only the
//! *coverage topology* changes.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs};

/// Generates a spatially localized game: `n_users` users anchored evenly
/// along a corridor of `n_tasks` tasks, each route covering only tasks
/// within `window` positions of the user's anchor.
///
/// Smaller `window` (relative to `n_tasks / shards`) means thinner seams and
/// a lower boundary fraction under [`partition`].
///
/// # Panics
///
/// Panics when `n_users == 0` or `n_tasks == 0`.
///
/// [`partition`]: crate::partition
pub fn localized_game(n_users: usize, n_tasks: usize, window: usize, seed: u64) -> Game {
    assert!(n_users > 0, "localized_game needs at least one user");
    assert!(n_tasks > 0, "localized_game needs at least one task");
    let mut rng = StdRng::seed_from_u64(seed);
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId::from_index(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let anchor = i * n_tasks / n_users;
            let lo = anchor.saturating_sub(window);
            let hi = (anchor + window).min(n_tasks - 1);
            let span = hi - lo + 1;
            let n_routes = rng.random_range(2..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(1..5usize))
                        .map(|_| TaskId::from_index(lo + rng.random_range(0..span)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..5.0),
                        rng.random_range(0.0..4.0),
                    )
                })
                .collect();
            User::new(
                UserId::from_index(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4))
        .expect("localized parameters are in paper range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_stay_inside_the_anchor_window() {
        let (n_users, n_tasks, window) = (80, 120, 6);
        let game = localized_game(n_users, n_tasks, window, 42);
        for (i, u) in game.users().iter().enumerate() {
            let anchor = i * n_tasks / n_users;
            for r in &u.routes {
                assert!(!r.tasks.is_empty());
                for &t in &r.tasks {
                    let d = t.index().abs_diff(anchor);
                    assert!(
                        d <= window,
                        "user {i} (anchor {anchor}) covers task {} outside window",
                        t.index()
                    );
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let a = localized_game(30, 40, 4, 9);
        let b = localized_game(30, 40, 4, 9);
        assert_eq!(a.users().len(), b.users().len());
        for (ua, ub) in a.users().iter().zip(b.users()) {
            assert_eq!(ua.routes.len(), ub.routes.len());
            for (ra, rb) in ua.routes.iter().zip(&ub.routes) {
                assert_eq!(ra.tasks, rb.tasks);
                assert_eq!(ra.detour, rb.detour);
            }
        }
    }
}
