//! Locality-aware partitioning of the task→user conflict graph.
//!
//! Two users *conflict* when some task appears in both of their recommended
//! route sets: a move by one changes the other's profits (Eq. 5/7). The
//! partitioner cuts the user set into `shards` groups so that as many users
//! as possible conflict only within their own group:
//!
//! * a task is **shared** when users from at least two shards can cover it;
//! * a user is **boundary** when any task on any of its routes is shared;
//! * everyone else is **interior** — every profit term they can ever touch
//!   is determined entirely by users of their own shard, so their
//!   best-response dynamics run without any cross-shard synchronisation.
//!
//! The cut itself is a greedy one-dimensional spectral surrogate: users are
//! ordered by the *barycenter* of the task ids their routes cover and split
//! into `shards` contiguous, balanced groups. On spatially generated games
//! (see [`localized_game`]) task ids are laid out along the road corridor,
//! so the barycenter order clusters users that patrol the same stretch and
//! the cut lines fall between stretches — the boundary set is the thin seam
//! of users whose routes straddle a cut.
//!
//! The plan is a pure function of the game and the shard count: re-running
//! [`partition`] after a checkpoint reproduces the same assignment, which is
//! what lets [`ShardedSim::resume`] rebuild lanes without serializing the
//! plan itself.
//!
//! [`localized_game`]: crate::localized_game
//! [`ShardedSim::resume`]: crate::ShardedSim::resume

use vcs_core::ids::{TaskId, UserId};
use vcs_core::Game;

/// The result of cutting a game into shards: per-user home shards, per-task
/// owners, and the interior/boundary classification driving the sharded
/// runtime's two-phase protocol.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    shards: usize,
    user_shard: Vec<u32>,
    task_owner: Vec<u32>,
    task_shared: Vec<bool>,
    boundary: Vec<bool>,
    interior: Vec<Vec<UserId>>,
    boundary_users: Vec<UserId>,
}

/// Cuts `game` into `shards` balanced groups along the task-barycenter
/// order. `shards == 1` yields the trivial plan: every user interior, no
/// shared tasks.
///
/// # Panics
///
/// Panics when `shards == 0`.
pub fn partition(game: &Game, shards: usize) -> ShardPlan {
    assert!(shards >= 1, "a sharded deployment needs at least one shard");
    let n = game.users().len();
    let t = game.tasks().len();

    // 1. Order users by the barycenter of the task ids they can cover.
    //    Users with no coverable task sort by their own id (they conflict
    //    with nobody, so their placement is arbitrary).
    let mut center = vec![0.0f64; n];
    for (i, u) in game.users().iter().enumerate() {
        let mut sum = 0.0;
        let mut cnt = 0u32;
        for r in &u.routes {
            for &task in &r.tasks {
                sum += task.index() as f64;
                cnt += 1;
            }
        }
        center[i] = if cnt == 0 { i as f64 } else { sum / cnt as f64 };
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by(|&a, &b| {
        center[a as usize]
            .total_cmp(&center[b as usize])
            .then(a.cmp(&b))
    });
    let mut user_shard = vec![0u32; n];
    for (pos, &u) in order.iter().enumerate() {
        // Contiguous balanced chunks: sizes differ by at most one.
        user_shard[u as usize] = (pos * shards / n) as u32;
    }

    // 2. Per-task coverage census: which shard touched it first, whether a
    //    second shard ever did (shared), and how many *distinct* users of
    //    each shard can cover it (ownership votes). `stamp` dedups a user
    //    covering the same task via several routes.
    let mut first = vec![u32::MAX; t];
    let mut task_shared = vec![false; t];
    let mut counts = vec![0u32; t * shards];
    let mut stamp = vec![u32::MAX; t];
    for (i, u) in game.users().iter().enumerate() {
        let s = user_shard[i] as usize;
        for r in &u.routes {
            for &task in &r.tasks {
                let k = task.index();
                if stamp[k] == i as u32 {
                    continue;
                }
                stamp[k] = i as u32;
                counts[k * shards + s] += 1;
                if first[k] == u32::MAX {
                    first[k] = s as u32;
                } else if first[k] != s as u32 {
                    task_shared[k] = true;
                }
            }
        }
    }

    // 3. Ownership: the shard with the most distinct covering users wins,
    //    ties to the lowest shard id. Uncoverable tasks default to shard 0.
    let mut task_owner = vec![0u32; t];
    for k in 0..t {
        if first[k] == u32::MAX {
            continue;
        }
        let row = &counts[k * shards..(k + 1) * shards];
        let mut best = 0usize;
        for (s, &c) in row.iter().enumerate().skip(1) {
            if c > row[best] {
                best = s;
            }
        }
        task_owner[k] = best as u32;
    }

    // 4. Classification: boundary iff any coverable task is shared.
    let mut boundary = vec![false; n];
    let mut interior: Vec<Vec<UserId>> = vec![Vec::new(); shards];
    let mut boundary_users = Vec::new();
    for (i, u) in game.users().iter().enumerate() {
        let b = u
            .routes
            .iter()
            .flat_map(|r| &r.tasks)
            .any(|&task| task_shared[task.index()]);
        boundary[i] = b;
        if b {
            boundary_users.push(UserId::from_index(i));
        } else {
            interior[user_shard[i] as usize].push(UserId::from_index(i));
        }
    }

    ShardPlan {
        shards,
        user_shard,
        task_owner,
        task_shared,
        boundary,
        interior,
        boundary_users,
    }
}

impl ShardPlan {
    /// Number of shards the plan cuts the game into.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The home shard of `user` (where its moves are decided and committed).
    pub fn home_of(&self, user: UserId) -> usize {
        self.user_shard[user.index()] as usize
    }

    /// The shard owning `task` (most distinct covering users, ties low).
    pub fn task_owner(&self, task: TaskId) -> usize {
        self.task_owner[task.index()] as usize
    }

    /// Whether users from at least two shards can cover `task`.
    pub fn is_shared_task(&self, task: TaskId) -> bool {
        self.task_shared[task.index()]
    }

    /// Whether `user` touches a shared task and therefore needs the
    /// boundary-sync protocol (replicated into every shard).
    pub fn is_boundary(&self, user: UserId) -> bool {
        self.boundary[user.index()]
    }

    /// Interior users of `shard`, ascending by global id.
    pub fn interior_users(&self, shard: usize) -> &[UserId] {
        &self.interior[shard]
    }

    /// All boundary users, ascending by global id — the coordinator's
    /// round-robin order.
    pub fn boundary_users(&self) -> &[UserId] {
        &self.boundary_users
    }

    /// Members of `shard`'s engine: its interior users plus *every* boundary
    /// user (replicated so each shard sees exact participant counts on all
    /// tasks its own members can touch), ascending by global id.
    pub fn members(&self, shard: usize) -> Vec<UserId> {
        let mut out = Vec::with_capacity(self.interior[shard].len() + self.boundary_users.len());
        out.extend_from_slice(&self.interior[shard]);
        out.extend_from_slice(&self.boundary_users);
        out.sort_unstable_by_key(|u| u.index());
        out
    }

    /// The partition-quality metric: fraction of users that are boundary.
    /// `0.0` is a perfect cut (fully decoupled shards); `1.0` means every
    /// user needs coordination and sharding buys nothing.
    pub fn boundary_fraction(&self) -> f64 {
        if self.user_shard.is_empty() {
            return 0.0;
        }
        self.boundary_users.len() as f64 / self.user_shard.len() as f64
    }

    /// Number of tasks coverable from at least two shards.
    pub fn shared_task_count(&self) -> usize {
        self.task_shared.iter().filter(|&&s| s).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::localized_game;

    #[test]
    fn single_shard_plan_is_all_interior() {
        let game = localized_game(40, 60, 4, 7);
        let plan = partition(&game, 1);
        assert_eq!(plan.shards(), 1);
        assert!(plan.boundary_users().is_empty());
        assert_eq!(plan.boundary_fraction(), 0.0);
        assert_eq!(plan.shared_task_count(), 0);
        assert_eq!(plan.interior_users(0).len(), 40);
        assert_eq!(plan.members(0).len(), 40);
    }

    #[test]
    fn shared_flags_match_a_brute_force_census() {
        let game = localized_game(120, 90, 5, 11);
        let plan = partition(&game, 4);
        for (k, _) in game.tasks().iter().enumerate() {
            let task = TaskId::from_index(k);
            let mut shards_seen = std::collections::BTreeSet::new();
            for (i, u) in game.users().iter().enumerate() {
                if u.routes.iter().any(|r| r.tasks.contains(&task)) {
                    shards_seen.insert(plan.home_of(UserId::from_index(i)));
                }
            }
            assert_eq!(
                plan.is_shared_task(task),
                shards_seen.len() >= 2,
                "task {k} shared flag disagrees with census"
            );
            if let Some(&owner) = shards_seen.iter().next() {
                let _ = owner;
                assert!(shards_seen.contains(&plan.task_owner(task)));
            }
        }
    }

    #[test]
    fn interior_and_boundary_partition_the_user_set() {
        let game = localized_game(100, 80, 4, 3);
        let plan = partition(&game, 4);
        let mut seen = vec![0u32; 100];
        for s in 0..4 {
            for &u in plan.interior_users(s) {
                assert!(!plan.is_boundary(u));
                assert_eq!(plan.home_of(u), s);
                seen[u.index()] += 1;
            }
        }
        for &u in plan.boundary_users() {
            assert!(plan.is_boundary(u));
            seen[u.index()] += 1;
        }
        assert!(seen.iter().all(|&c| c == 1), "each user exactly one class");
    }

    #[test]
    fn members_are_sorted_and_contain_all_boundary_users() {
        let game = localized_game(100, 80, 4, 3);
        let plan = partition(&game, 3);
        for s in 0..3 {
            let members = plan.members(s);
            assert!(members.windows(2).all(|w| w[0].index() < w[1].index()));
            for &b in plan.boundary_users() {
                assert!(
                    members.contains(&b),
                    "boundary user replicated in every shard"
                );
            }
        }
    }

    #[test]
    fn localized_games_cut_with_a_small_boundary() {
        // The whole point of the locality partitioner: on a corridor-shaped
        // game the seam between contiguous chunks is thin.
        let game = localized_game(400, 400, 5, 17);
        let plan = partition(&game, 4);
        assert!(
            plan.boundary_fraction() < 0.5,
            "boundary fraction {} should be well under a half on a localized game",
            plan.boundary_fraction()
        );
        for s in 0..4 {
            assert!(
                !plan.interior_users(s).is_empty(),
                "every shard should keep interior work"
            );
        }
    }

    #[test]
    fn interior_users_conflict_only_within_their_shard() {
        // The load-bearing invariant: a task coverable by an interior user
        // of shard s is coverable *only* by members of shard s.
        let game = localized_game(150, 120, 4, 23);
        let plan = partition(&game, 3);
        for (i, u) in game.users().iter().enumerate() {
            let uid = UserId::from_index(i);
            if plan.is_boundary(uid) {
                continue;
            }
            let home = plan.home_of(uid);
            for r in &u.routes {
                for &task in &r.tasks {
                    for (j, v) in game.users().iter().enumerate() {
                        let vid = UserId::from_index(j);
                        if v.routes.iter().any(|vr| vr.tasks.contains(&task)) {
                            assert_eq!(
                                plan.home_of(vid),
                                home,
                                "task {} couples interior user {i} to shard {} user {j}",
                                task.index(),
                                plan.home_of(vid)
                            );
                        }
                    }
                }
            }
        }
    }
}
