//! Socket transport for the boundary-sync coordinator: the control-message
//! codec, a TCP link (length-guarded frames over a stream, PR-2 codec
//! discipline via `vcs_runtime::net`), and a UDP link built on the
//! [`crate::arq`] reliability layer with configurable fault injection.
//!
//! The coordinator is the star center: one [`PeerNet`] multiplexing all
//! shard workers. Each worker holds one [`CoordLink`] back to the
//! coordinator. Both transports expose the same reliable in-order message
//! semantics, which is what makes the deployed protocol's *logical*
//! trajectory independent of transport and fault schedule (the
//! transport-oracle suite holds channel ≡ tcp ≡ lossy-udp to identical
//! commit logs).
//!
//! Transport-level observability: ARQ resends emit
//! [`Event::Retransmission`] and injector drops [`Event::FrameDropped`]
//! into a per-endpoint *network* trace (`net-*.jsonl`), stamped with a
//! local monotone tick — deliberately separate from the per-shard
//! application streams, whose causal stamps must stay fault-independent.

use crate::arq::{
    ArqReceiver, ArqSender, Datagram, DgramKind, FaultConfig, FaultInjector, MAX_DGRAM_PAYLOAD,
};
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs, UdpSocket};
use std::sync::mpsc;
use std::time::{Duration, Instant};
use vcs_obs::{Event, NetStats, Obs};
use vcs_runtime::net::{connect_with_backoff, read_frame, write_frame};

/// Pairs per chunked control message — keeps every UDP datagram payload
/// comfortably under [`MAX_DGRAM_PAYLOAD`].
pub const CHUNK_PAIRS: usize = 700;

/// One message of the coordinator↔worker control protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlMsg {
    /// Worker → coordinator, first message on a (re)connect: which shard
    /// this is and the round its checkpoint covers (0 = fresh start).
    Hello {
        /// Shard id.
        shard: u32,
        /// Last fully completed round in the worker's checkpoint.
        ckpt_round: u32,
    },
    /// Coordinator → worker: run the interior phase of `round`.
    RunInterior {
        /// 1-based coordinator round.
        round: u32,
    },
    /// Worker → coordinator: a chunk of interior moves as
    /// `(global user, route)` pairs, in commit order.
    InteriorPart {
        /// The chunk's moves.
        moves: Vec<(u32, u32)>,
    },
    /// Worker → coordinator: interior phase of `round` finished.
    InteriorDone {
        /// Echo of the round.
        round: u32,
        /// Whether the interior reached a local fixpoint (vs the slot cap).
        converged: bool,
        /// Cumulative decision slots committed at this shard.
        slots: u64,
        /// Total moves across the preceding `InteriorPart`s (integrity
        /// check).
        moves: u32,
    },
    /// Coordinator → home worker: compute the boundary user's best-route
    /// set.
    BestRespond {
        /// Global user id.
        user: u32,
    },
    /// Home worker → coordinator: the best-route set (may be empty).
    Routes {
        /// Echo of the user.
        user: u32,
        /// Strictly-improving route ids, engine order.
        routes: Vec<u32>,
    },
    /// Coordinator → home worker: commit `user`'s move to `route`.
    Commit {
        /// Global user id.
        user: u32,
        /// Route to commit.
        route: u32,
    },
    /// Home worker → coordinator: the committed move as an encoded,
    /// causally stamped [`crate::BoundaryFrame`] (exactly
    /// [`crate::FRAME_LEN`] bytes).
    Committed {
        /// Encoded boundary frame.
        frame: Vec<u8>,
    },
    /// Coordinator → replica: apply this boundary frame.
    Apply {
        /// Encoded boundary frame.
        frame: Vec<u8>,
    },
    /// Replica → coordinator: the frame with this sender-sequence number
    /// was applied (or was a detected duplicate — idempotent either way).
    Applied {
        /// The applied frame's per-sender sequence number.
        seq: u64,
    },
    /// Replica → coordinator: a causal-stamp gap — frames from `shard`
    /// starting at `from_seq` are missing; retransmit them in order.
    FrameGap {
        /// Home shard whose frame stream has the gap.
        shard: u32,
        /// First missing per-sender sequence number.
        from_seq: u64,
    },
    /// Coordinator → worker: persist a checkpoint covering `round`.
    Checkpoint {
        /// Last fully completed round.
        round: u32,
    },
    /// Worker → coordinator: checkpoint for `round` durably written.
    CheckpointDone {
        /// Echo of the round.
        round: u32,
    },
    /// Coordinator → worker: the run is over; report and exit.
    Finish,
    /// Worker → coordinator: a chunk of this shard's final home-user
    /// choices as `(global user, route)` pairs.
    DonePart {
        /// The chunk's entries.
        entries: Vec<(u32, u32)>,
    },
    /// Worker → coordinator: final report, after all `DonePart`s.
    Done {
        /// Shard id.
        shard: u32,
        /// Watchdog alerts raised at this worker.
        alerts: u64,
        /// Total decision slots committed at this shard.
        slots: u64,
        /// Entries across the preceding `DonePart`s (integrity check).
        entries: u32,
    },
    /// Worker → coordinator, out-of-band: one encoded
    /// [`vcs_obs::TelemetryFrame`] (opaque here — the frame carries its own
    /// magic, version, and shape validation). Telemetry rides the same
    /// reliable link as the protocol but never participates in it: the
    /// coordinator ingests these inside its receive loop and the lock-step
    /// state machine never sees them, so the deterministic trajectory is
    /// byte-identical with telemetry on or off.
    Telemetry {
        /// Encoded telemetry frame.
        bytes: Vec<u8>,
    },
}

/// Why a byte buffer failed to decode as a [`CtrlMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlError {
    /// Empty buffer.
    Empty,
    /// Unknown tag byte.
    BadTag(u8),
    /// A field or vector length overran the buffer.
    Truncated,
    /// Trailing bytes after a complete message.
    TrailingBytes(usize),
    /// A vector length field promises more entries than the bytes present
    /// could hold (hostile-length guard).
    BadLength {
        /// Entries promised.
        promised: usize,
        /// Entries the remaining bytes could hold.
        possible: usize,
    },
}

impl std::fmt::Display for CtrlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtrlError::Empty => write!(f, "empty control message"),
            CtrlError::BadTag(t) => write!(f, "unknown control tag {t}"),
            CtrlError::Truncated => write!(f, "truncated control message"),
            CtrlError::TrailingBytes(n) => write!(f, "{n} trailing bytes after control message"),
            CtrlError::BadLength { promised, possible } => {
                write!(f, "length {promised} promised, at most {possible} possible")
            }
        }
    }
}

impl std::error::Error for CtrlError {}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, CtrlError> {
        let v = *self.buf.get(self.at).ok_or(CtrlError::Truncated)?;
        self.at += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, CtrlError> {
        let end = self.at.checked_add(4).ok_or(CtrlError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(CtrlError::Truncated)?;
        self.at = end;
        Ok(u32::from_be_bytes(bytes.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, CtrlError> {
        let end = self.at.checked_add(8).ok_or(CtrlError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(CtrlError::Truncated)?;
        self.at = end;
        Ok(u64::from_be_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Length-guarded vector header: validates that `promised` entries of
    /// `entry_size` bytes fit in the remaining buffer *before* allocating.
    fn len(&mut self, entry_size: usize) -> Result<usize, CtrlError> {
        let promised = self.u32()? as usize;
        let possible = (self.buf.len() - self.at) / entry_size.max(1);
        if promised > possible {
            return Err(CtrlError::BadLength { promised, possible });
        }
        Ok(promised)
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CtrlError> {
        let end = self.at.checked_add(n).ok_or(CtrlError::Truncated)?;
        let bytes = self.buf.get(self.at..end).ok_or(CtrlError::Truncated)?;
        self.at = end;
        Ok(bytes)
    }
}

fn put_pairs(out: &mut Vec<u8>, pairs: &[(u32, u32)]) {
    out.extend_from_slice(&(pairs.len() as u32).to_be_bytes());
    for &(a, b) in pairs {
        out.extend_from_slice(&a.to_be_bytes());
        out.extend_from_slice(&b.to_be_bytes());
    }
}

fn get_pairs(c: &mut Cursor<'_>) -> Result<Vec<(u32, u32)>, CtrlError> {
    let n = c.len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push((c.u32()?, c.u32()?));
    }
    Ok(out)
}

impl CtrlMsg {
    /// Serializes the message (tag byte, then big-endian fields; vectors
    /// are length-prefixed).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16);
        match self {
            CtrlMsg::Hello { shard, ckpt_round } => {
                out.push(1);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(&ckpt_round.to_be_bytes());
            }
            CtrlMsg::RunInterior { round } => {
                out.push(2);
                out.extend_from_slice(&round.to_be_bytes());
            }
            CtrlMsg::InteriorPart { moves } => {
                out.push(3);
                put_pairs(&mut out, moves);
            }
            CtrlMsg::InteriorDone {
                round,
                converged,
                slots,
                moves,
            } => {
                out.push(4);
                out.extend_from_slice(&round.to_be_bytes());
                out.push(u8::from(*converged));
                out.extend_from_slice(&slots.to_be_bytes());
                out.extend_from_slice(&moves.to_be_bytes());
            }
            CtrlMsg::BestRespond { user } => {
                out.push(5);
                out.extend_from_slice(&user.to_be_bytes());
            }
            CtrlMsg::Routes { user, routes } => {
                out.push(6);
                out.extend_from_slice(&user.to_be_bytes());
                out.extend_from_slice(&(routes.len() as u32).to_be_bytes());
                for r in routes {
                    out.extend_from_slice(&r.to_be_bytes());
                }
            }
            CtrlMsg::Commit { user, route } => {
                out.push(7);
                out.extend_from_slice(&user.to_be_bytes());
                out.extend_from_slice(&route.to_be_bytes());
            }
            CtrlMsg::Committed { frame } => {
                out.push(8);
                out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
                out.extend_from_slice(frame);
            }
            CtrlMsg::Apply { frame } => {
                out.push(9);
                out.extend_from_slice(&(frame.len() as u32).to_be_bytes());
                out.extend_from_slice(frame);
            }
            CtrlMsg::Applied { seq } => {
                out.push(10);
                out.extend_from_slice(&seq.to_be_bytes());
            }
            CtrlMsg::FrameGap { shard, from_seq } => {
                out.push(11);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(&from_seq.to_be_bytes());
            }
            CtrlMsg::Checkpoint { round } => {
                out.push(12);
                out.extend_from_slice(&round.to_be_bytes());
            }
            CtrlMsg::CheckpointDone { round } => {
                out.push(13);
                out.extend_from_slice(&round.to_be_bytes());
            }
            CtrlMsg::Finish => out.push(14),
            CtrlMsg::DonePart { entries } => {
                out.push(15);
                put_pairs(&mut out, entries);
            }
            CtrlMsg::Done {
                shard,
                alerts,
                slots,
                entries,
            } => {
                out.push(16);
                out.extend_from_slice(&shard.to_be_bytes());
                out.extend_from_slice(&alerts.to_be_bytes());
                out.extend_from_slice(&slots.to_be_bytes());
                out.extend_from_slice(&entries.to_be_bytes());
            }
            CtrlMsg::Telemetry { bytes } => {
                out.push(17);
                out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
                out.extend_from_slice(bytes);
            }
        }
        out
    }

    /// Decodes one message, rejecting unknown tags, truncation, hostile
    /// vector lengths, and trailing bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, CtrlError> {
        let mut c = Cursor { buf, at: 0 };
        let tag = c.u8().map_err(|_| CtrlError::Empty)?;
        let msg = match tag {
            1 => CtrlMsg::Hello {
                shard: c.u32()?,
                ckpt_round: c.u32()?,
            },
            2 => CtrlMsg::RunInterior { round: c.u32()? },
            3 => CtrlMsg::InteriorPart {
                moves: get_pairs(&mut c)?,
            },
            4 => CtrlMsg::InteriorDone {
                round: c.u32()?,
                converged: c.u8()? != 0,
                slots: c.u64()?,
                moves: c.u32()?,
            },
            5 => CtrlMsg::BestRespond { user: c.u32()? },
            6 => {
                let user = c.u32()?;
                let n = c.len(4)?;
                let mut routes = Vec::with_capacity(n);
                for _ in 0..n {
                    routes.push(c.u32()?);
                }
                CtrlMsg::Routes { user, routes }
            }
            7 => CtrlMsg::Commit {
                user: c.u32()?,
                route: c.u32()?,
            },
            8 => CtrlMsg::Committed {
                frame: c.len(1).and_then(|n| c.bytes(n))?.to_vec(),
            },
            9 => CtrlMsg::Apply {
                frame: c.len(1).and_then(|n| c.bytes(n))?.to_vec(),
            },
            10 => CtrlMsg::Applied { seq: c.u64()? },
            11 => CtrlMsg::FrameGap {
                shard: c.u32()?,
                from_seq: c.u64()?,
            },
            12 => CtrlMsg::Checkpoint { round: c.u32()? },
            13 => CtrlMsg::CheckpointDone { round: c.u32()? },
            14 => CtrlMsg::Finish,
            15 => CtrlMsg::DonePart {
                entries: get_pairs(&mut c)?,
            },
            16 => CtrlMsg::Done {
                shard: c.u32()?,
                alerts: c.u64()?,
                slots: c.u64()?,
                entries: c.u32()?,
            },
            17 => CtrlMsg::Telemetry {
                bytes: c.len(1).and_then(|n| c.bytes(n))?.to_vec(),
            },
            t => return Err(CtrlError::BadTag(t)),
        };
        if c.at != buf.len() {
            return Err(CtrlError::TrailingBytes(buf.len() - c.at));
        }
        Ok(msg)
    }
}

fn other_err(msg: String) -> io::Error {
    io::Error::other(msg)
}

fn decode_ctrl(payload: &[u8]) -> io::Result<CtrlMsg> {
    CtrlMsg::decode(payload).map_err(|e| other_err(format!("control decode: {e}")))
}

// ---------------------------------------------------------------------------
// TCP
// ---------------------------------------------------------------------------

/// One reliable framed stream to a single peer: writes go straight to the
/// socket, reads come from a reader thread so `recv` can time out without
/// desynchronizing mid-frame.
pub struct TcpLink {
    stream: TcpStream,
    rx: mpsc::Receiver<io::Result<Vec<u8>>>,
}

impl TcpLink {
    /// Wraps an accepted or connected stream, spawning its reader thread.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        let mut reader = stream.try_clone()?;
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || loop {
            match read_frame(&mut reader) {
                Ok(payload) => {
                    if tx.send(Ok(payload)).is_err() {
                        return;
                    }
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        Ok(TcpLink { stream, rx })
    }

    /// Dials `addr` with bounded backoff (workers joining — possibly before
    /// the coordinator's listener is up, or after their own restart).
    pub fn connect(addr: impl ToSocketAddrs + Clone) -> io::Result<Self> {
        Self::from_stream(connect_with_backoff(addr, 80, Duration::from_millis(15))?)
    }

    /// Sends one control message as a length-guarded frame.
    pub fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        write_frame(&mut self.stream, &msg.encode())
    }

    /// Receives the next control message, waiting at most `timeout`.
    /// `ErrorKind::TimedOut` when nothing arrived; other errors mean the
    /// stream is dead.
    pub fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(payload)) => decode_ctrl(&payload),
            Ok(Err(e)) => Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                Err(io::Error::new(io::ErrorKind::TimedOut, "tcp recv timeout"))
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "tcp reader gone",
            )),
        }
    }
}

// ---------------------------------------------------------------------------
// UDP
// ---------------------------------------------------------------------------

/// A delayed outbound datagram: `(release_ms, tie-break, bytes)` in a
/// min-heap.
#[derive(PartialEq, Eq)]
struct Delayed(u64, u64, Vec<u8>);

impl Ord for Delayed {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest release first.
        (other.0, other.1).cmp(&(self.0, self.1))
    }
}

impl PartialOrd for Delayed {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct UdpPeer {
    addr: SocketAddr,
    tx: ArqSender,
    rx: ArqReceiver,
    injector: FaultInjector,
    delayed: BinaryHeap<Delayed>,
    inbox: VecDeque<CtrlMsg>,
    tie: u64,
}

/// One UDP endpoint multiplexing any number of ARQ peers over a single
/// socket. The coordinator runs one with a peer per shard; each worker
/// runs one with the coordinator as its only peer (id 0).
pub struct UdpNode {
    socket: UdpSocket,
    epoch: Instant,
    fault: FaultConfig,
    net_seed: u64,
    rto_ms: u64,
    peers: HashMap<usize, UdpPeer>,
    addr_of: HashMap<SocketAddr, usize>,
    /// Peers whose `Hello` was just delivered (front of their inbox).
    hellos: VecDeque<usize>,
    obs: Obs,
    tick: u64,
    buf: Vec<u8>,
}

impl UdpNode {
    /// Binds a UDP endpoint. `fault` shapes every *outbound* datagram
    /// (each side of a link injects independently, seeded off `net_seed`
    /// and the peer id). `obs` receives transport-level
    /// `Retransmission`/`FrameDropped` events.
    pub fn bind(bind: &str, fault: FaultConfig, net_seed: u64, obs: Obs) -> io::Result<Self> {
        let socket = UdpSocket::bind(bind)?;
        socket.set_read_timeout(Some(Duration::from_millis(2)))?;
        Ok(UdpNode {
            socket,
            epoch: Instant::now(),
            rto_ms: fault.suggested_rto_ms(),
            fault,
            net_seed,
            peers: HashMap::new(),
            addr_of: HashMap::new(),
            hellos: VecDeque::new(),
            obs,
            tick: 0,
            buf: vec![0u8; 64 * 1024],
        })
    }

    /// The bound local address (the coordinator advertises its port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Registers (or re-registers after a restart) `peer` at `addr`,
    /// resetting all link state. Datagrams from the peer's previous
    /// incarnation become unroutable and are dropped.
    pub fn add_peer(&mut self, peer: usize, addr: SocketAddr) {
        if let Some(old) = self.peers.get(&peer) {
            self.addr_of.remove(&old.addr);
        }
        self.addr_of.insert(addr, peer);
        self.peers.insert(
            peer,
            UdpPeer {
                addr,
                tx: ArqSender::new(),
                rx: ArqReceiver::new(),
                injector: FaultInjector::new(
                    self.fault,
                    self.net_seed ^ (peer as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ),
                delayed: BinaryHeap::new(),
                inbox: VecDeque::new(),
                tie: 0,
            },
        );
    }

    fn emit_drop(&mut self, bytes: u32, seq: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.obs.emit(|| Event::FrameDropped {
            bytes,
            seq,
            lamport: tick,
        });
    }

    fn emit_retransmission(&mut self, attempt: u32, seq: u64) {
        self.tick += 1;
        let tick = self.tick;
        self.obs.emit(|| Event::Retransmission {
            attempt,
            seq,
            lamport: tick,
        });
    }

    /// Passes raw datagram bytes through the peer's injector and schedules
    /// or transmits the surviving copies.
    fn put_wire(&mut self, peer: usize, bytes: Vec<u8>, now: u64) -> io::Result<()> {
        let len = bytes.len() as u32;
        let (admitted, dropped, addr) = {
            let p = self.peers.get_mut(&peer).expect("known peer");
            let before = p.injector.dropped();
            let admitted = p.injector.admit(bytes, now);
            (admitted, p.injector.dropped() > before, p.addr)
        };
        if dropped {
            self.emit_drop(len, 0);
        }
        for (release, bytes) in admitted {
            if release <= now {
                let _ = self.socket.send_to(&bytes, addr)?;
            } else {
                let p = self.peers.get_mut(&peer).expect("known peer");
                p.tie += 1;
                let tie = p.tie;
                p.delayed.push(Delayed(release, tie, bytes));
            }
        }
        Ok(())
    }

    /// Sends one control message to `peer` (reliably: the ARQ keeps it
    /// buffered until acked).
    pub fn send(&mut self, peer: usize, msg: &CtrlMsg) -> io::Result<()> {
        let now = self.now_ms();
        let payload = msg.encode();
        assert!(
            payload.len() <= MAX_DGRAM_PAYLOAD,
            "control message over datagram cap — chunking bug"
        );
        let (_, bytes) = {
            let p = self
                .peers
                .get_mut(&peer)
                .ok_or_else(|| other_err(format!("unknown peer {peer}")))?;
            p.tx.send(payload, now)
        };
        self.put_wire(peer, bytes, now)
    }

    /// Sends a raw ACK/NAK datagram (not sequenced, still fault-injected).
    fn put_control(&mut self, peer: usize, kind: DgramKind, seq: u64) -> io::Result<()> {
        let now = self.now_ms();
        let bytes = Datagram {
            kind,
            seq,
            payload: Vec::new(),
        }
        .encode();
        self.put_wire(peer, bytes, now)
    }

    /// One pump iteration: release due delayed datagrams, resend expired
    /// unacked ones, then drain the socket.
    fn pump(&mut self) -> io::Result<()> {
        let now = self.now_ms();
        let peer_ids: Vec<usize> = self.peers.keys().copied().collect();
        for peer in peer_ids {
            // Release delayed sends that are due.
            loop {
                let (due_bytes, addr) = {
                    let p = self.peers.get_mut(&peer).expect("known peer");
                    match p.delayed.peek() {
                        Some(d) if d.0 <= now => {
                            let d = p.delayed.pop().expect("peeked");
                            (Some(d.2), p.addr)
                        }
                        _ => (None, p.addr),
                    }
                };
                match due_bytes {
                    Some(bytes) => {
                        let _ = self.socket.send_to(&bytes, addr)?;
                    }
                    None => break,
                }
            }
            // Retransmission timeouts.
            let due = {
                let p = self.peers.get_mut(&peer).expect("known peer");
                p.tx.due(now, self.rto_ms)
            };
            for (seq, attempt, bytes) in due {
                self.emit_retransmission(attempt, seq);
                self.put_wire(peer, bytes, now)?;
            }
        }
        // Drain everything currently readable.
        loop {
            match self.socket.recv_from(&mut self.buf) {
                Ok((n, from)) => {
                    let datagram = match Datagram::decode(&self.buf[..n]) {
                        Ok(d) => d,
                        Err(_) => continue, // corrupt or foreign datagram
                    };
                    self.ingest(from, datagram)?;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(());
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn ingest(&mut self, from: SocketAddr, datagram: Datagram) -> io::Result<()> {
        let peer = match self.addr_of.get(&from) {
            Some(&p) => p,
            None => {
                // Unknown source: only a fresh Hello (the first sequenced
                // datagram of a new incarnation) may register itself.
                if datagram.kind != DgramKind::Data || datagram.seq != 1 {
                    return Ok(());
                }
                match CtrlMsg::decode(&datagram.payload) {
                    Ok(CtrlMsg::Hello { shard, .. }) => {
                        self.add_peer(shard as usize, from);
                        shard as usize
                    }
                    _ => return Ok(()),
                }
            }
        };
        match datagram.kind {
            DgramKind::Ack => {
                let now = self.now_ms();
                let p = self.peers.get_mut(&peer).expect("known peer");
                p.tx.on_ack(datagram.seq, now);
            }
            DgramKind::Nak => {
                let now = self.now_ms();
                let resend = {
                    let p = self.peers.get_mut(&peer).expect("known peer");
                    p.tx.on_nak(datagram.seq, now)
                };
                if let Some((attempt, bytes)) = resend {
                    self.emit_retransmission(attempt, datagram.seq);
                    self.put_wire(peer, bytes, now)?;
                }
            }
            DgramKind::Data => {
                let out = {
                    let p = self.peers.get_mut(&peer).expect("known peer");
                    p.rx.on_data(datagram.seq, datagram.payload)
                };
                self.put_control(peer, DgramKind::Ack, out.cum_ack)?;
                if let Some(missing) = out.gap {
                    self.put_control(peer, DgramKind::Nak, missing)?;
                }
                for payload in out.delivered {
                    let msg = decode_ctrl(&payload)?;
                    if matches!(msg, CtrlMsg::Hello { .. }) {
                        self.hellos.push_back(peer);
                    }
                    let p = self.peers.get_mut(&peer).expect("known peer");
                    p.inbox.push_back(msg);
                }
            }
        }
        Ok(())
    }

    /// Receives the next message from `peer`, pumping the socket until one
    /// arrives or `timeout` expires (`ErrorKind::TimedOut`).
    pub fn recv(&mut self, peer: usize, timeout: Duration) -> io::Result<CtrlMsg> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.peers.get_mut(&peer) {
                if let Some(msg) = p.inbox.pop_front() {
                    if matches!(msg, CtrlMsg::Hello { .. }) {
                        // Keep the hello queue consistent when a Hello is
                        // consumed through the normal path.
                        if let Some(at) = self.hellos.iter().position(|&h| h == peer) {
                            self.hellos.remove(at);
                        }
                    }
                    return Ok(msg);
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "udp recv timeout"));
            }
            self.pump()?;
        }
    }

    /// Waits for the next `Hello` from any peer — how the coordinator
    /// admits fresh workers and re-admits restarted ones. Returns
    /// `(peer, ckpt_round)`.
    pub fn accept_hello(&mut self, timeout: Duration) -> io::Result<(usize, u32)> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(peer) = self.hellos.pop_front() {
                let p = self.peers.get_mut(&peer).expect("hello implies peer");
                match p.inbox.pop_front() {
                    Some(CtrlMsg::Hello { ckpt_round, .. }) => return Ok((peer, ckpt_round)),
                    Some(other) => {
                        return Err(other_err(format!("expected Hello, got {other:?}")));
                    }
                    None => continue,
                }
            }
            if Instant::now() >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "no Hello arrived"));
            }
            self.pump()?;
        }
    }

    /// Pumps until every peer's ARQ send window is fully acknowledged (or
    /// `timeout` expires) — called before a clean process exit so the final
    /// message of a conversation survives datagram loss. Returns whether
    /// the window drained.
    pub fn drain(&mut self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.peers.values().all(|p| p.tx.in_flight() == 0) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            if self.pump().is_err() {
                return false;
            }
        }
    }

    /// Pumps the socket for `duration` — keeps acking duplicate resends
    /// from peers that are still draining while this side merely waits.
    pub fn idle_pump(&mut self, duration: Duration) {
        let deadline = Instant::now() + duration;
        while Instant::now() < deadline {
            if self.pump().is_err() {
                return;
            }
        }
    }

    /// Total ARQ retransmissions across all current peer links.
    pub fn retransmissions(&self) -> u64 {
        self.peers.values().map(|p| p.tx.retransmissions()).sum()
    }

    /// Total injector-dropped datagrams across all current peer links.
    pub fn drops(&self) -> u64 {
        self.peers.values().map(|p| p.injector.dropped()).sum()
    }

    /// Full transport-health snapshot aggregated over all current peer
    /// links: every ARQ counter, the in-flight gauge, and the largest
    /// per-peer smoothed-RTT estimate.
    pub fn net_stats(&self) -> NetStats {
        let mut out = NetStats::default();
        for p in self.peers.values() {
            out.retransmissions += p.tx.retransmissions();
            out.naks += p.tx.naks();
            out.rto_fires += p.tx.rto_fires();
            out.in_flight += p.tx.in_flight() as u64;
            out.drops += p.injector.dropped();
            out.dup_drops += p.rx.dup_drops();
            out.srtt_ms = out.srtt_ms.max(p.tx.srtt_ms().unwrap_or(0));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Role-facing wrappers
// ---------------------------------------------------------------------------

/// Which transport a deployment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process reference coordinator ([`crate::ShardedSim`]).
    Channel,
    /// One OS process per shard over TCP streams.
    Tcp,
    /// One OS process per shard over UDP with the ARQ layer (and optional
    /// fault injection).
    Udp,
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "channel" => Ok(TransportKind::Channel),
            "tcp" => Ok(TransportKind::Tcp),
            "udp" => Ok(TransportKind::Udp),
            other => Err(format!("unknown transport {other:?} (channel|tcp|udp)")),
        }
    }
}

/// The worker's link back to the coordinator.
///
/// One instance lives per worker process, so the size skew between the
/// thin TCP link and the windowed UDP node is irrelevant — no boxing.
#[allow(clippy::large_enum_variant)]
pub enum CoordLink {
    /// Framed TCP stream.
    Tcp(TcpLink),
    /// ARQ over UDP; the coordinator is peer 0.
    Udp(UdpNode),
}

impl CoordLink {
    /// Dials the coordinator over the chosen socket transport.
    ///
    /// # Panics
    ///
    /// Panics when called with [`TransportKind::Channel`] — the channel
    /// transport has no socket link.
    pub fn connect(
        transport: TransportKind,
        addr: &str,
        fault: FaultConfig,
        net_seed: u64,
        obs: Obs,
    ) -> io::Result<Self> {
        match transport {
            TransportKind::Tcp => Ok(CoordLink::Tcp(TcpLink::connect(addr)?)),
            TransportKind::Udp => {
                let mut node = UdpNode::bind("127.0.0.1:0", fault, net_seed, obs)?;
                let coord: SocketAddr = addr
                    .parse()
                    .map_err(|e| other_err(format!("bad coordinator addr {addr}: {e}")))?;
                node.add_peer(0, coord);
                Ok(CoordLink::Udp(node))
            }
            TransportKind::Channel => panic!("channel transport has no socket link"),
        }
    }

    /// Sends one message to the coordinator.
    pub fn send(&mut self, msg: &CtrlMsg) -> io::Result<()> {
        match self {
            CoordLink::Tcp(link) => link.send(msg),
            CoordLink::Udp(node) => node.send(0, msg),
        }
    }

    /// Receives the next message from the coordinator.
    pub fn recv(&mut self, timeout: Duration) -> io::Result<CtrlMsg> {
        match self {
            CoordLink::Tcp(link) => link.recv(timeout),
            CoordLink::Udp(node) => node.recv(0, timeout),
        }
    }

    /// Waits until every sent message is acknowledged (UDP) before a clean
    /// exit; a TCP stream needs no drain (writes are synchronous).
    pub fn drain(&mut self, timeout: Duration) {
        if let CoordLink::Udp(node) = self {
            node.drain(timeout);
        }
    }

    /// Worker-side transport-health snapshot (all zero over TCP: the
    /// kernel owns reliability there).
    pub fn net_stats(&self) -> NetStats {
        match self {
            CoordLink::Tcp(_) => NetStats::default(),
            CoordLink::Udp(node) => node.net_stats(),
        }
    }
}

/// The coordinator's multiplexed view of all shard workers.
///
/// One instance lives per coordinator, so the size skew between the
/// TCP and UDP arms is irrelevant — no boxing.
#[allow(clippy::large_enum_variant)]
pub enum PeerNet {
    /// One framed stream per worker plus an accept thread for joins and
    /// restart re-joins.
    Tcp {
        /// Established links, by shard (None until the shard's Hello).
        links: Vec<Option<TcpLink>>,
        /// Freshly accepted, not-yet-identified streams.
        incoming: mpsc::Receiver<TcpStream>,
    },
    /// One ARQ peer per worker on a single socket.
    Udp(UdpNode),
}

impl PeerNet {
    /// Binds the coordinator's listening endpoint for `shards` workers.
    /// Returns the net and the port workers should dial.
    pub fn bind(
        transport: TransportKind,
        shards: usize,
        fault: FaultConfig,
        net_seed: u64,
        obs: Obs,
    ) -> io::Result<(Self, u16)> {
        match transport {
            TransportKind::Tcp => {
                let listener = TcpListener::bind("127.0.0.1:0")?;
                let port = listener.local_addr()?.port();
                let (tx, incoming) = mpsc::channel();
                std::thread::spawn(move || {
                    for stream in listener.incoming().flatten() {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                });
                Ok((
                    PeerNet::Tcp {
                        links: (0..shards).map(|_| None).collect(),
                        incoming,
                    },
                    port,
                ))
            }
            TransportKind::Udp => {
                let node = UdpNode::bind("127.0.0.1:0", fault, net_seed, obs)?;
                let port = node.local_addr()?.port();
                Ok((PeerNet::Udp(node), port))
            }
            TransportKind::Channel => Err(other_err(
                "channel transport does not bind a socket".to_string(),
            )),
        }
    }

    /// Waits for the next worker `Hello` (fresh join or restart re-join),
    /// wiring its link. Returns `(shard, ckpt_round)`.
    pub fn accept_hello(&mut self, timeout: Duration) -> io::Result<(usize, u32)> {
        match self {
            PeerNet::Tcp { links, incoming } => {
                let stream = incoming
                    .recv_timeout(timeout)
                    .map_err(|_| io::Error::new(io::ErrorKind::TimedOut, "no worker connected"))?;
                let mut link = TcpLink::from_stream(stream)?;
                match link.recv(Duration::from_secs(5))? {
                    CtrlMsg::Hello { shard, ckpt_round } => {
                        let s = shard as usize;
                        if s >= links.len() {
                            return Err(other_err(format!("hello from unknown shard {s}")));
                        }
                        links[s] = Some(link);
                        Ok((s, ckpt_round))
                    }
                    other => Err(other_err(format!("expected Hello, got {other:?}"))),
                }
            }
            PeerNet::Udp(node) => node.accept_hello(timeout),
        }
    }

    /// Sends one message to shard `s`.
    pub fn send(&mut self, s: usize, msg: &CtrlMsg) -> io::Result<()> {
        match self {
            PeerNet::Tcp { links, .. } => links[s]
                .as_mut()
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, format!("shard {s} link down"))
                })?
                .send(msg),
            PeerNet::Udp(node) => node.send(s, msg),
        }
    }

    /// Receives the next message from shard `s`.
    pub fn recv(&mut self, s: usize, timeout: Duration) -> io::Result<CtrlMsg> {
        match self {
            PeerNet::Tcp { links, .. } => links[s]
                .as_mut()
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotConnected, format!("shard {s} link down"))
                })?
                .recv(timeout),
            PeerNet::Udp(node) => node.recv(s, timeout),
        }
    }

    /// Tears down shard `s`'s link ahead of a restart, so stale traffic
    /// from the dead incarnation cannot be misread as the new one's.
    pub fn reset(&mut self, s: usize) {
        match self {
            PeerNet::Tcp { links, .. } => links[s] = None,
            PeerNet::Udp(node) => {
                // Dropping link state entirely would also drop the peer's
                // addr mapping; re-registration happens on its next Hello.
                if let Some(p) = node.peers.remove(&s) {
                    node.addr_of.remove(&p.addr);
                }
                if let Some(at) = node.hellos.iter().position(|&h| h == s) {
                    node.hellos.remove(at);
                }
            }
        }
    }

    /// Pumps the socket for `duration` (UDP) — re-acks duplicate resends
    /// from workers draining their final `Done` while the coordinator waits
    /// for their processes to exit. No-op over TCP.
    pub fn idle_pump(&mut self, duration: Duration) {
        if let PeerNet::Udp(node) = self {
            node.idle_pump(duration);
        }
    }

    /// Coordinator-side transport-health snapshot: every ARQ counter, the
    /// in-flight gauge, and the smoothed-RTT estimate (all zero over TCP —
    /// the kernel owns reliability there).
    pub fn stats(&self) -> NetStats {
        match self {
            PeerNet::Tcp { .. } => NetStats::default(),
            PeerNet::Udp(node) => node.net_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: CtrlMsg) {
        let bytes = msg.encode();
        assert_eq!(CtrlMsg::decode(&bytes), Ok(msg));
    }

    #[test]
    fn ctrl_codec_round_trips_every_variant() {
        round_trip(CtrlMsg::Hello {
            shard: 3,
            ckpt_round: 7,
        });
        round_trip(CtrlMsg::RunInterior { round: 12 });
        round_trip(CtrlMsg::InteriorPart {
            moves: vec![(1, 2), (3, 4)],
        });
        round_trip(CtrlMsg::InteriorDone {
            round: 12,
            converged: true,
            slots: 99,
            moves: 2,
        });
        round_trip(CtrlMsg::BestRespond { user: 8 });
        round_trip(CtrlMsg::Routes {
            user: 8,
            routes: vec![0, 2, 5],
        });
        round_trip(CtrlMsg::Commit { user: 8, route: 2 });
        round_trip(CtrlMsg::Committed {
            frame: vec![9u8; crate::FRAME_LEN],
        });
        round_trip(CtrlMsg::Apply {
            frame: vec![9u8; crate::FRAME_LEN],
        });
        round_trip(CtrlMsg::Applied { seq: 41 });
        round_trip(CtrlMsg::FrameGap {
            shard: 1,
            from_seq: 17,
        });
        round_trip(CtrlMsg::Checkpoint { round: 4 });
        round_trip(CtrlMsg::CheckpointDone { round: 4 });
        round_trip(CtrlMsg::Finish);
        round_trip(CtrlMsg::DonePart {
            entries: vec![(5, 1)],
        });
        round_trip(CtrlMsg::Done {
            shard: 2,
            alerts: 0,
            slots: 1234,
            entries: 1,
        });
        round_trip(CtrlMsg::Telemetry {
            bytes: vcs_obs::TelemetryFrame::empty(3).encode(),
        });
    }

    #[test]
    fn telemetry_frame_rides_one_udp_datagram() {
        // The telemetry CtrlMsg wrapping a full frame must stay under the
        // datagram payload cap — telemetry never chunks.
        let msg = CtrlMsg::Telemetry {
            bytes: vcs_obs::TelemetryFrame::empty(0).encode(),
        };
        assert!(msg.encode().len() <= MAX_DGRAM_PAYLOAD);
    }

    #[test]
    fn ctrl_decode_rejects_hostile_input() {
        assert_eq!(CtrlMsg::decode(&[]), Err(CtrlError::Empty));
        assert_eq!(CtrlMsg::decode(&[200]), Err(CtrlError::BadTag(200)));
        assert_eq!(CtrlMsg::decode(&[2, 0, 0]), Err(CtrlError::Truncated));
        // InteriorPart promising u32::MAX pairs with 4 bytes of body.
        let mut hostile = vec![3];
        hostile.extend_from_slice(&u32::MAX.to_be_bytes());
        hostile.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            CtrlMsg::decode(&hostile),
            Err(CtrlError::BadLength { .. })
        ));
        // Trailing garbage after a complete Finish.
        assert_eq!(CtrlMsg::decode(&[14, 0]), Err(CtrlError::TrailingBytes(1)));
    }

    #[test]
    fn tcp_link_round_trips_messages() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut link = TcpLink::from_stream(stream).unwrap();
            let msg = link.recv(Duration::from_secs(5)).unwrap();
            link.send(&msg).unwrap();
        });
        let mut client = TcpLink::connect(addr).unwrap();
        let msg = CtrlMsg::Routes {
            user: 3,
            routes: vec![1, 4],
        };
        client.send(&msg).unwrap();
        assert_eq!(client.recv(Duration::from_secs(5)).unwrap(), msg);
        server.join().unwrap();
    }

    #[test]
    fn udp_nodes_exchange_reliably_under_heavy_faults() {
        let fault = FaultConfig {
            loss: 0.25,
            dup: 0.15,
            reorder: 0.2,
            rtt_ms: 4,
            jitter_ms: 3,
        };
        let mut coord = UdpNode::bind("127.0.0.1:0", fault, 11, Obs::default()).unwrap();
        let coord_addr = coord.local_addr().unwrap();
        let mut worker = UdpNode::bind("127.0.0.1:0", fault, 12, Obs::default()).unwrap();
        worker.add_peer(0, coord_addr);
        worker
            .send(
                0,
                &CtrlMsg::Hello {
                    shard: 1,
                    ckpt_round: 0,
                },
            )
            .unwrap();
        // Both nodes live on one thread here, so the receiver must lend the
        // sender pump time for its ARQ timers to fire (in the deployment
        // each process pumps its own node while blocked in `recv`).
        fn recv_both(rx: &mut UdpNode, peer: usize, other: &mut UdpNode) -> CtrlMsg {
            let deadline = Instant::now() + Duration::from_secs(30);
            loop {
                match rx.recv(peer, Duration::from_millis(5)) {
                    Ok(msg) => return msg,
                    Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                        assert!(Instant::now() < deadline, "udp exchange stalled");
                        other.idle_pump(Duration::from_millis(2));
                    }
                    Err(e) => panic!("udp recv failed: {e}"),
                }
            }
        }
        let hello = loop {
            match coord.accept_hello(Duration::from_millis(5)) {
                Ok(h) => break h,
                Err(e) if e.kind() == io::ErrorKind::TimedOut => {
                    worker.idle_pump(Duration::from_millis(2));
                }
                Err(e) => panic!("accept_hello failed: {e}"),
            }
        };
        assert_eq!(hello, (1, 0));
        // 60 lock-step round trips under 25% loss: every message arrives,
        // exactly once, in order.
        for i in 0..60u32 {
            coord.send(1, &CtrlMsg::RunInterior { round: i }).unwrap();
            let got = recv_both(&mut worker, 0, &mut coord);
            assert_eq!(got, CtrlMsg::RunInterior { round: i });
            worker
                .send(
                    0,
                    &CtrlMsg::InteriorDone {
                        round: i,
                        converged: true,
                        slots: u64::from(i),
                        moves: 0,
                    },
                )
                .unwrap();
            let got = recv_both(&mut coord, 1, &mut worker);
            assert_eq!(
                got,
                CtrlMsg::InteriorDone {
                    round: i,
                    converged: true,
                    slots: u64::from(i),
                    moves: 0,
                }
            );
        }
        assert!(
            coord.retransmissions() + worker.retransmissions() > 0,
            "25% loss over 120 messages must force at least one resend"
        );
    }
}
