//! `load_report` — the sustained-serving benchmark behind
//! `BENCH_load.json`: for every cell of an arrival-rate × shard-count
//! matrix, start an in-process `platform_serve`, drive it open-loop with
//! the seeded loadgen, and record what the cell sustained.
//!
//! The gated metric is `served_ratio` (non-rejected replies / offered
//! requests), floored at 0.90 by `bench_trend` — under sustained load the
//! serving process must answer what it is offered. Sustained slots/sec
//! and the p50/p99 end-to-end latencies ride along as informational
//! context (they move with the machine; dropped requests do not).
//!
//! ```text
//! load_report [--out BENCH_load.json] [--rates R1,R2,...]
//!             [--shards K1,K2,...] [--duration-secs D] [--seed S]
//!             [--max-agents N]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use vcs_online::ServeCoreConfig;
use vcs_shard::{run_loadgen, start_platform_serve, LoadgenOptions, ServeOptions};

struct Cell {
    rate: f64,
    shards: usize,
    served_ratio: f64,
    slots_per_sec: f64,
    p50_ms: f64,
    p99_ms: f64,
}

fn parse_list<T: std::str::FromStr>(raw: &str, flag: &str) -> Vec<T> {
    raw.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag}: bad element {p:?}"))
        })
        .collect()
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("BENCH_load.json");
    let mut rates: Vec<f64> = vec![200.0, 400.0];
    let mut shards: Vec<usize> = vec![1, 2];
    let mut duration = Duration::from_secs(10);
    let mut seed = 7u64;
    let mut max_agents = 400usize;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next(&mut it, "--out")),
            "--rates" => rates = parse_list(&next(&mut it, "--rates"), "--rates"),
            "--shards" => shards = parse_list(&next(&mut it, "--shards"), "--shards"),
            "--duration-secs" => {
                duration = Duration::from_secs_f64(
                    next(&mut it, "--duration-secs")
                        .parse()
                        .expect("--duration-secs: number"),
                );
            }
            "--seed" => seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--max-agents" => {
                max_agents = next(&mut it, "--max-agents")
                    .parse()
                    .expect("--max-agents: integer");
            }
            other => panic!("unknown argument {other}"),
        }
    }

    let mut cells: Vec<Cell> = Vec::new();
    for &k in &shards {
        for &rate in &rates {
            eprintln!(
                "load_report: {rate} req/s vs {k} shard{} for {:.0}s ...",
                if k == 1 { "" } else { "s" },
                duration.as_secs_f64()
            );
            let handle = match start_platform_serve(&ServeOptions {
                shards: k,
                core: ServeCoreConfig {
                    seed,
                    ..ServeCoreConfig::default()
                },
                ..ServeOptions::default()
            }) {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("  cell FAILED to start server: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = match run_loadgen(&LoadgenOptions {
                addr: handle.addr().to_string(),
                rate_hz: rate,
                duration,
                seed,
                max_agents,
                shutdown_after: true,
                ..LoadgenOptions::default()
            }) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("  cell FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            };
            handle.wait();
            eprintln!(
                "  served {:.4}, {:.0} slots/s, p50 {:.2}ms p99 {:.2}ms",
                report.served_ratio, report.sustained_slots_per_sec, report.p50_ms, report.p99_ms
            );
            cells.push(Cell {
                rate,
                shards: k,
                served_ratio: report.served_ratio,
                slots_per_sec: report.sustained_slots_per_sec,
                p50_ms: report.p50_ms,
                p99_ms: report.p99_ms,
            });
        }
    }

    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(
        doc,
        "  \"benchmark\": \"sustained open-loop serving: loadgen vs platform_serve, {:.0}s per cell, coordinated-omission-corrected latency\",",
        duration.as_secs_f64()
    );
    let _ = writeln!(doc, "  \"seed\": {seed},");
    let _ = writeln!(doc, "  \"rows\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 == cells.len() { "" } else { "," };
        let _ = writeln!(
            doc,
            "    {{\"rate\": {}, \"shards\": {}, \"served_ratio\": {:.4}, \
             \"slots_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{comma}",
            c.rate, c.shards, c.served_ratio, c.slots_per_sec, c.p50_ms, c.p99_ms
        );
    }
    let _ = writeln!(doc, "  ]");
    let _ = writeln!(doc, "}}");
    std::fs::write(&out, doc).expect("write BENCH_load.json");
    eprintln!("load_report: wrote {}", out.display());
    ExitCode::SUCCESS
}
