//! `shard_report` — the sharded-deployment scaling benchmark: aggregate
//! decision slots/sec of the sharded driver at 1 → 2 → 4 → 8 shards across
//! 10k → 1M users, written to `BENCH_shard.json` (repo root by default;
//! pass a path to override).
//!
//! Methodology: every cell runs the *sequential* driver (one thread does
//! all shards' work), so `speedup_vs_1` measures the pure algorithmic win
//! of locality decomposition — smaller per-shard improving sets and
//! caches — with no parallelism confounder; machine-independent enough to
//! gate as a ratio. The two smaller tiers run to the global fixpoint; the
//! 1M tier caps coordinator rounds and per-round interior slots so the
//! measurement is a bounded-rate sample (`converged: false` is expected
//! and recorded). Trajectories differ across shard counts (different RNG
//! lanes), which is why the metric is a rate, not a wall-time ratio.
//!
//! `--smoke` instead runs one small 2-shard deployment, replays its merged
//! commit log on a single full-game oracle engine, and asserts ϕ agreement
//! to 1e-9 plus a Nash certificate — the CI-facing correctness gate. In
//! smoke mode nothing is written unless an output path is given.

use std::time::Instant;
use vcs_core::{is_nash, potential, Engine, Profile};
use vcs_shard::{localized_game, ShardConfig, ShardedOutcome, ShardedSim};

const SEED: u64 = 7;
const WINDOW: usize = 6;

struct Row {
    users: usize,
    shards: usize,
    slots: u64,
    wall_sec: f64,
    agg_slots_per_sec: f64,
    speedup_vs_1: f64,
    boundary_fraction: f64,
    rounds: u32,
    frames_sent: u64,
    frame_bytes: u64,
    converged: bool,
}

fn run_cell(users: usize, shards: usize) -> (ShardedOutcome, f64) {
    let game = localized_game(users, users, WINDOW, SEED);
    let mut config = ShardConfig::new(shards, SEED);
    if users >= 1_000_000 {
        // Bounded-rate sample at the largest tier: equal per-shard slot
        // budget per round keeps every cell's wall time tractable.
        config.max_rounds = 3;
        config.interior_slot_cap = 200_000;
    }
    let mut sim = ShardedSim::new(game, config);
    let start = Instant::now();
    let outcome = sim.run();
    (outcome, start.elapsed().as_secs_f64())
}

fn render(rows: &[Row]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"sharded deployment: aggregate slots/sec, sequential driver, 1-8 shards\",\n  \"seed\": 7,\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"users\": {}, \"shards\": {}, \"slots\": {}, \"wall_sec\": {:.3}, \"agg_slots_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}, \"boundary_fraction\": {:.4}, \"rounds\": {}, \"frames_sent\": {}, \"frame_bytes\": {}, \"converged\": {}}}{}\n",
            r.users,
            r.shards,
            r.slots,
            r.wall_sec,
            r.agg_slots_per_sec,
            r.speedup_vs_1,
            r.boundary_fraction,
            r.rounds,
            r.frames_sent,
            r.frame_bytes,
            r.converged,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn smoke() {
    let (users, shards) = (2_000, 2);
    let game = localized_game(users, users, WINDOW, SEED);
    let mut sim = ShardedSim::new(game.clone(), ShardConfig::new(shards, SEED));
    let start = Instant::now();
    let outcome = sim.run();
    let wall = start.elapsed().as_secs_f64();
    assert!(outcome.converged, "smoke deployment must converge");
    assert!(sim.replicas_consistent(), "replicas must agree at fixpoint");

    let mut oracle = Engine::new_owned(game.clone(), Profile::new(&game, outcome.initial.clone()));
    let trajectory = oracle.replay_moves(&outcome.log);
    let final_phi = trajectory
        .last()
        .map(|&(phi, _)| phi)
        .unwrap_or_else(|| oracle.potential());
    assert_eq!(
        oracle.profile().choices(),
        &outcome.choices[..],
        "oracle replay must reconstruct the merged profile exactly"
    );
    let merged_phi = potential(&game, &Profile::new(&game, outcome.choices.clone()));
    assert!(
        (final_phi - merged_phi).abs() <= 1e-9 * merged_phi.abs().max(1.0),
        "oracle replay phi {final_phi} vs merged {merged_phi}"
    );
    assert!(
        is_nash(&game, &Profile::new(&game, outcome.choices.clone())),
        "smoke fixpoint must be a full-game NE"
    );
    let slots: u64 = outcome.shard_slots.iter().sum();
    eprintln!(
        "smoke OK: {users} users / {shards} shards, {} rounds, {slots} slots in {wall:.2}s, \
         boundary fraction {:.4}, oracle phi agreement <= 1e-9, NE certified",
        outcome.rounds, outcome.boundary_fraction
    );
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke_only = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke_only = true;
        } else {
            out_path = Some(arg);
        }
    }
    if smoke_only {
        smoke();
        if out_path.is_none() {
            return;
        }
    }

    let mut rows: Vec<Row> = Vec::new();
    for users in [10_000usize, 100_000, 1_000_000] {
        let mut base_rate = 0.0f64;
        for shards in [1usize, 2, 4, 8] {
            let (outcome, wall) = run_cell(users, shards);
            let slots: u64 = outcome.shard_slots.iter().sum();
            let rate = slots as f64 / wall.max(1e-12);
            if shards == 1 {
                base_rate = rate;
            }
            let row = Row {
                users,
                shards,
                slots,
                wall_sec: wall,
                agg_slots_per_sec: rate,
                speedup_vs_1: rate / base_rate.max(1e-12),
                boundary_fraction: outcome.boundary_fraction,
                rounds: outcome.rounds,
                frames_sent: outcome.frames_sent,
                frame_bytes: outcome.frame_bytes,
                converged: outcome.converged,
            };
            eprintln!(
                "users={users} shards={shards}: {slots} slots in {wall:.2}s -> {rate:.0} slots/sec \
                 (x{:.2} vs 1 shard), boundary {:.4}, converged={}",
                row.speedup_vs_1, row.boundary_fraction, row.converged
            );
            rows.push(row);
        }
    }
    let path = out_path.unwrap_or_else(|| "BENCH_shard.json".to_string());
    std::fs::write(&path, render(&rows)).expect("write benchmark report");
    eprintln!("wrote {path}");
}
