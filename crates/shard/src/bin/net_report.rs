//! `net_report` — the convergence-under-faults benchmark behind
//! `BENCH_net.json`: a loss × RTT matrix of multi-process UDP deployments
//! (0–20% loss, 0–200ms injected RTT), each run to its global fixpoint and
//! certified against the full-game oracle.
//!
//! The interesting claim is binary, not a rate: the ARQ makes the logical
//! trajectory fault-independent, so **every** cell must converge to the
//! same certified Nash equilibrium — `bench_trend` floors
//! `net/<loss>/<rtt>/certified` at 1.0. Wall-clock and the named transport
//! counters (`retransmissions`, `drops`, `naks`, `dup_drops`, `rto_fires`)
//! are carried as informational context per cell (they grow with the fault
//! rates; correctness must not).
//!
//! ```text
//! net_report [--out BENCH_net.json] [--users N] [--shards K] [--seed S]
//! ```
//!
//! The coordinator spawns one worker process per shard from
//! `current_exe()`, so this binary also speaks `--worker`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use vcs_shard::{
    parse_worker_args, run_deployment, run_worker, verify_outcome, DeployConfig, TransportKind,
};

/// Fault matrix: fraction of datagrams lost × injected round-trip ms.
const LOSS: [f64; 3] = [0.0, 0.10, 0.20];
const RTT_MS: [u64; 3] = [0, 50, 200];

fn main() -> ExitCode {
    // Worker mode: this process is one shard of a matrix cell's deployment.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("--worker") {
        raw.next();
        let cfg = parse_worker_args(raw);
        return match run_worker(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("worker shard {}: {e}", cfg.shard);
                ExitCode::FAILURE
            }
        };
    }

    let mut out = PathBuf::from("BENCH_net.json");
    let mut users = 120usize;
    let mut shards = 3usize;
    let mut seed = 7u64;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next(&mut it, "--out")),
            "--users" => users = next(&mut it, "--users").parse().expect("--users: integer"),
            "--shards" => {
                shards = next(&mut it, "--shards")
                    .parse()
                    .expect("--shards: integer");
            }
            "--seed" => seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--threads" => {
                threads = Some(
                    next(&mut it, "--threads")
                        .parse()
                        .expect("--threads: integer"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }
    vcs_bench::threads::configure_threads(threads);

    let work_dir = std::env::temp_dir().join(format!("net_report_{}", std::process::id()));
    let mut rows = Vec::new();
    let mut reference: Option<String> = None;
    for &loss in &LOSS {
        for &rtt_ms in &RTT_MS {
            let mut cfg = DeployConfig::new(users, users, 5, shards, seed);
            cfg.out_dir = work_dir.join(format!("loss{loss}_rtt{rtt_ms}"));
            cfg.threads = threads;
            cfg.fault.loss = loss;
            cfg.fault.dup = loss / 2.0;
            cfg.fault.reorder = loss / 2.0;
            cfg.fault.rtt_ms = rtt_ms;
            cfg.fault.jitter_ms = rtt_ms / 10;
            eprintln!("net_report: loss {loss:.2}, rtt {rtt_ms}ms ...");
            let start = std::time::Instant::now();
            let outcome = match run_deployment(&cfg, TransportKind::Udp) {
                Ok(o) => o,
                Err(e) => {
                    eprintln!("  cell FAILED: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let wall = start.elapsed().as_secs_f64();
            let certified = outcome.converged && verify_outcome(&cfg, &outcome).is_ok();
            // Cross-fault determinism: every cell's outcome.txt must match
            // the clean cell's byte for byte.
            let core = std::fs::read_to_string(cfg.out_dir.join("outcome.txt"))
                .expect("outcome.txt written");
            match &reference {
                None => reference = Some(core),
                Some(r) if *r == core => {}
                Some(_) => {
                    eprintln!(
                        "  cell DIVERGED: outcome.txt differs from the clean cell — \
                         the fault schedule leaked into the trajectory"
                    );
                    return ExitCode::FAILURE;
                }
            }
            eprintln!(
                "  converged={} rounds={} retx={} drops={} naks={} wall={:.1}s certified={}",
                outcome.converged,
                outcome.rounds,
                outcome.net.retransmissions,
                outcome.net.drops,
                outcome.net.naks,
                wall,
                certified
            );
            rows.push(format!(
                "    {{\"loss\": {loss}, \"rtt_ms\": {rtt_ms}, \"certified\": {}, \
                 \"rounds\": {}, \"retransmissions\": {}, \"drops\": {}, \
                 \"naks\": {}, \"dup_drops\": {}, \"rto_fires\": {}, \
                 \"wall_sec\": {wall:.3}, \"slots\": {}, \"converged\": {}}}",
                if certified { "1.0" } else { "0.0" },
                outcome.rounds,
                outcome.net.retransmissions,
                outcome.net.drops,
                outcome.net.naks,
                outcome.net.dup_drops,
                outcome.net.rto_fires,
                outcome.shard_slots.iter().sum::<u64>(),
                outcome.converged,
            ));
        }
    }
    let _ = std::fs::remove_dir_all(&work_dir);

    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(
        doc,
        "  \"benchmark\": \"multi-process UDP boundary sync: convergence under loss x RTT, {users} users / {shards} shards\","
    );
    let _ = writeln!(doc, "  \"seed\": {seed},");
    let _ = writeln!(doc, "  \"rows\": [");
    let _ = writeln!(doc, "{}", rows.join(",\n"));
    let _ = writeln!(doc, "  ]");
    let _ = writeln!(doc, "}}");
    std::fs::write(&out, doc).expect("write BENCH_net.json");
    eprintln!("net_report: wrote {}", out.display());
    ExitCode::SUCCESS
}
