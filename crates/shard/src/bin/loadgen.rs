//! `loadgen` — open-loop load generator for a live `platform_serve`
//! process: seeded Poisson arrivals at `--rate` req/s for `--duration`
//! seconds, a weight-driven Join/Leave/BestRespond mix over a bounded
//! simulated agent pool, coordinated-omission-corrected latency, and the
//! server's sustained slots/sec from bracketing `Query` requests.
//!
//! ```text
//! loadgen --addr HOST:PORT [--rate R] [--duration-secs D] [--seed S]
//!         [--max-agents N] [--mix J,L,B] [--shutdown] [--out FILE]
//! ```
//!
//! The report prints as one JSON object on stdout (and to `--out` when
//! given); a non-clean run (`served_ratio < 1`) exits nonzero so CI can
//! gate on it.

use std::process::ExitCode;
use std::time::Duration;
use vcs_shard::{run_loadgen, LoadgenOptions};

fn main() -> ExitCode {
    let mut opts = LoadgenOptions::default();
    let mut addr: Option<String> = None;
    let mut out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next(&mut it, "--addr")),
            "--rate" => {
                opts.rate_hz = next(&mut it, "--rate").parse().expect("--rate: number");
            }
            "--duration-secs" => {
                opts.duration = Duration::from_secs_f64(
                    next(&mut it, "--duration-secs")
                        .parse()
                        .expect("--duration-secs: number"),
                );
            }
            "--seed" => opts.seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--max-agents" => {
                opts.max_agents = next(&mut it, "--max-agents")
                    .parse()
                    .expect("--max-agents: integer");
            }
            "--mix" => {
                let raw = next(&mut it, "--mix");
                let parts: Vec<u32> = raw
                    .split(',')
                    .map(|p| p.trim().parse().expect("--mix: J,L,B integers"))
                    .collect();
                assert_eq!(parts.len(), 3, "--mix takes three weights: J,L,B");
                opts.mix = (parts[0], parts[1], parts[2]);
            }
            "--shutdown" => opts.shutdown_after = true,
            "--out" => out = Some(next(&mut it, "--out")),
            other => panic!("unknown argument {other}"),
        }
    }
    opts.addr = addr.expect("--addr is required");

    let report = match run_loadgen(&opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("loadgen: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = report.to_json();
    println!("{json}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("loadgen: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "loadgen: {} sent, {} ok, p50 {:.2}ms p99 {:.2}ms, {:.0} slots/s",
        report.sent,
        report.replies_ok,
        report.p50_ms,
        report.p99_ms,
        report.sustained_slots_per_sec
    );
    if report.served_ratio < 1.0 {
        eprintln!(
            "loadgen: NOT CLEAN — served_ratio {:.4} ({} rejected, {} lost)",
            report.served_ratio,
            report.rejected,
            report.sent - report.replies
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
