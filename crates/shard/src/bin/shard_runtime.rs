//! `shard_runtime` — drives a sharded multi-engine deployment end to end:
//! partition a localized game into N shards, run each shard's interior
//! dynamics on its own OS thread with boundary-sync rounds in between, and
//! leave behind a *mergeable* post-mortem:
//!
//! * per-shard JSONL event dumps (`shard-<s>.jsonl`), causally stamped by
//!   the coordinator's frame protocol;
//! * per-shard watchdogs enforcing the shard sub-game's Theorem-4 slot
//!   budget and Eq. 11 ϕ monotonicity, with optional alert push routing
//!   (`--alert-sink stderr|file:<path>|http://host:port[/path]`);
//! * a merged post-mortem (`merged.jsonl`) in cross-shard happens-before
//!   order, produced only after the merge-aware causal validator passes
//!   over all dumps (exit code 1 on any violation).
//!
//! `--verify` additionally replays the merged commit log on a single
//! full-game oracle engine and asserts ϕ agreement to 1e-9 plus a Nash
//! certificate of the merged profile.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use vcs_core::{is_nash, potential, Engine, Profile};
use vcs_obs::trace::{event_to_json, read_trace};
use vcs_obs::{
    merge_stamped_streams, validate_causal_order_merged, AlertRoute, FanoutSubscriber,
    JsonlSubscriber, StampedStream, Subscriber, WatchdogConfig, WatchdogSubscriber,
};
use vcs_shard::{localized_game, ShardConfig, ShardedSim};

struct Args {
    users: usize,
    tasks: usize,
    window: usize,
    shards: usize,
    seed: u64,
    out_dir: PathBuf,
    alert_route: Option<AlertRoute>,
    sequential: bool,
    verify: bool,
    delta_p_min: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 5_000,
        tasks: 0,
        window: 6,
        shards: 4,
        seed: 7,
        out_dir: PathBuf::from("shard_run"),
        alert_route: None,
        sequential: false,
        verify: false,
        delta_p_min: 1e-3,
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--users" => args.users = next(&mut it, "--users").parse().expect("--users: integer"),
            "--tasks" => args.tasks = next(&mut it, "--tasks").parse().expect("--tasks: integer"),
            "--window" => {
                args.window = next(&mut it, "--window")
                    .parse()
                    .expect("--window: integer");
            }
            "--shards" => {
                args.shards = next(&mut it, "--shards")
                    .parse()
                    .expect("--shards: integer");
            }
            "--seed" => args.seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--out-dir" => args.out_dir = PathBuf::from(next(&mut it, "--out-dir")),
            "--alert-sink" => {
                let spec = next(&mut it, "--alert-sink");
                args.alert_route = Some(AlertRoute::parse(&spec).expect("valid alert route"));
            }
            "--sequential" => args.sequential = true,
            "--verify" => args.verify = true,
            "--delta-p-min" => {
                args.delta_p_min = next(&mut it, "--delta-p-min")
                    .parse()
                    .expect("--delta-p-min: float");
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if args.tasks == 0 {
        args.tasks = args.users;
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    std::fs::create_dir_all(&args.out_dir).expect("create out dir");

    eprintln!(
        "shard_runtime: {} users / {} tasks, window {}, {} shards, seed {}",
        args.users, args.tasks, args.window, args.shards, args.seed
    );
    let game = localized_game(args.users, args.tasks, args.window, args.seed);
    let mut sim = ShardedSim::new(game.clone(), ShardConfig::new(args.shards, args.seed));
    eprintln!(
        "partition: boundary fraction {:.4}, {} shared tasks",
        sim.plan().boundary_fraction(),
        sim.plan().shared_task_count()
    );

    // Per-shard observability: JSONL dump + Theorem-4 watchdog, optionally
    // routed to an operator alert sink.
    let budgets = sim.shard_slot_budgets(args.delta_p_min);
    let mut jsonls = Vec::new();
    let mut dogs = Vec::new();
    for (s, &budget) in budgets.iter().enumerate() {
        let dump = args.out_dir.join(format!("shard-{s}.jsonl"));
        let jsonl = Arc::new(JsonlSubscriber::create(&dump).expect("create shard dump"));
        let config = WatchdogConfig {
            slot_budget: budget.is_finite().then(|| budget.ceil() as u64),
            ..WatchdogConfig::default()
        };
        let mut dog = WatchdogSubscriber::new(config);
        if let Some(route) = &args.alert_route {
            dog = dog.with_sink(route.open().expect("open alert sink"));
        }
        let dog = Arc::new(dog);
        let sinks: Vec<Arc<dyn Subscriber>> = vec![jsonl.clone(), dog.clone()];
        sim.set_shard_obs(s, FanoutSubscriber::obs(sinks));
        jsonls.push(jsonl);
        dogs.push(dog);
    }

    let start = std::time::Instant::now();
    let outcome = if args.sequential {
        sim.run()
    } else {
        sim.run_parallel()
    };
    let wall = start.elapsed().as_secs_f64();
    for jsonl in &jsonls {
        jsonl.flush().expect("flush shard dump");
    }

    let total_slots: u64 = outcome.shard_slots.iter().sum();
    eprintln!(
        "run: converged={} rounds={} slots={:?} ({} total, {:.0} slots/sec) \
         interior={} boundary={} frames={} ({} bytes)",
        outcome.converged,
        outcome.rounds,
        outcome.shard_slots,
        total_slots,
        total_slots as f64 / wall.max(1e-12),
        outcome.interior_moves,
        outcome.boundary_moves,
        outcome.frames_sent,
        outcome.frame_bytes,
    );
    eprintln!("merged phi: {:.6}", sim.merged_potential());
    let mut alerts = 0usize;
    for (s, dog) in dogs.iter().enumerate() {
        for alert in dog.alerts() {
            eprintln!("shard {s} alert: {}", alert.to_json());
            alerts += 1;
        }
    }
    if alerts == 0 {
        eprintln!("watchdogs: clean on all {} shards", args.shards);
    }

    // Merged post-mortem: read every shard dump back, validate the
    // cross-shard causal order, and write the merged happens-before view.
    let streams: Vec<StampedStream> = (0..args.shards)
        .map(|s| {
            let path = args.out_dir.join(format!("shard-{s}.jsonl"));
            let events = read_trace(&path).expect("re-read shard dump");
            StampedStream::new(s as u32, events)
        })
        .collect();
    let violations = validate_causal_order_merged(&streams);
    if !violations.is_empty() {
        eprintln!(
            "CAUSAL VALIDATION FAILED: {} violation(s)",
            violations.len()
        );
        for v in violations.iter().take(16) {
            eprintln!("  {v:?}");
        }
        return ExitCode::FAILURE;
    }
    let merged = merge_stamped_streams(&streams);
    let merged_path = args.out_dir.join("merged.jsonl");
    write_merged(&merged_path, &merged).expect("write merged post-mortem");
    eprintln!(
        "post-mortem: {} events from {} shards merged causally into {}",
        merged.len(),
        args.shards,
        merged_path.display()
    );

    if args.verify {
        let mut oracle =
            Engine::new_owned(game.clone(), Profile::new(&game, outcome.initial.clone()));
        let trajectory = oracle.replay_moves(&outcome.log);
        let final_phi = trajectory
            .last()
            .map(|&(phi, _)| phi)
            .unwrap_or_else(|| oracle.potential());
        assert_eq!(
            oracle.profile().choices(),
            &outcome.choices[..],
            "oracle replay must reconstruct the merged profile exactly"
        );
        let merged_phi = potential(&game, &Profile::new(&game, outcome.choices.clone()));
        // Relative tolerance: the replay engine's phi is incrementally
        // accumulated over thousands of moves, so the agreement bound
        // scales with |phi| at deployment sizes.
        assert!(
            (final_phi - merged_phi).abs() <= 1e-9 * merged_phi.abs().max(1.0),
            "oracle phi {final_phi} vs merged {merged_phi}"
        );
        assert!(
            is_nash(&game, &Profile::new(&game, outcome.choices.clone())),
            "merged profile must be a full-game NE"
        );
        eprintln!("verify: oracle replay reconstructs the merged profile, phi to 1e-9 (rel), NE certified");
    }
    ExitCode::SUCCESS
}

fn write_merged(path: &Path, merged: &[(u32, vcs_obs::Event)]) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    for (shard, event) in merged {
        writeln!(
            out,
            "{{\"shard\":{shard},\"event\":{}}}",
            event_to_json(event)
        )?;
    }
    out.flush()
}
