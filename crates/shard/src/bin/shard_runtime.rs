//! `shard_runtime` — drives a sharded multi-engine deployment end to end
//! on any of three transports:
//!
//! * `--transport channel` (default) — the in-process reference
//!   coordinator, one OS thread per shard;
//! * `--transport tcp` — one OS **process** per shard, boundary sync over
//!   length-framed TCP;
//! * `--transport udp` — one process per shard over UDP with a
//!   stop-and-wait-free ARQ (cumulative acks, NAK fast-retransmit) and
//!   configurable loss/duplication/reorder/RTT injection
//!   (`--loss/--dup/--reorder/--rtt-ms/--jitter-ms/--net-seed`).
//!
//! Every transport leaves the same artifacts in `--out-dir`: per-shard
//! causally stamped JSONL dumps, a validated merged post-mortem
//! (`merged.jsonl`), the deterministic run core (`outcome.txt` —
//! byte-identical across transports for one config), and run stats
//! (`stats.txt`). Socket workers checkpoint every `--ckpt-every` rounds
//! and a SIGKILLed worker is respawned and replayed back to the present
//! (`--kill-shard s:r` injects exactly that fault).
//!
//! `--verify` replays the merged commit log on a single full-game oracle
//! engine and asserts ϕ agreement to 1e-9 plus a Nash certificate.
//! `--soak-secs N` runs lossy-UDP deployments with varying seeds and a
//! worker kill per iteration for N wall-clock seconds (the CI churn soak).
//!
//! `--telemetry` turns on the fleet observability plane: workers stream
//! compact telemetry frames to the coordinator over the control transport,
//! `--metrics-port P` serves the aggregated fleet exposition on one
//! Prometheus `/metrics` endpoint (per-shard `shard="<id>"` labels plus
//! fleet rollups; the bound address lands in `<out-dir>/metrics.addr`),
//! and crash post-mortems append the dead worker's flight-recorder tail to
//! `merged.jsonl`. `--threads N` (or `VCS_THREADS`) pins the rayon pool of
//! the coordinator and every worker process.

use std::path::PathBuf;
use std::process::ExitCode;
use vcs_shard::{
    parse_worker_args, run_deployment, run_worker, verify_outcome, DeployConfig, TransportKind,
};

struct Args {
    cfg: DeployConfig,
    transport: TransportKind,
    verify: bool,
    soak_secs: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: DeployConfig::new(5_000, 0, 6, 4, 7),
        transport: TransportKind::Channel,
        verify: false,
        soak_secs: 0,
    };
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        let c = &mut args.cfg;
        match arg.as_str() {
            "--users" => c.users = next(&mut it, "--users").parse().expect("--users: integer"),
            "--tasks" => c.tasks = next(&mut it, "--tasks").parse().expect("--tasks: integer"),
            "--window" => {
                c.window = next(&mut it, "--window")
                    .parse()
                    .expect("--window: integer");
            }
            "--shards" => {
                c.shards = next(&mut it, "--shards")
                    .parse()
                    .expect("--shards: integer");
            }
            "--seed" => c.seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--out-dir" => c.out_dir = PathBuf::from(next(&mut it, "--out-dir")),
            "--alert-sink" => c.alert_sink = Some(next(&mut it, "--alert-sink")),
            "--sequential" => c.sequential = true,
            "--verify" => args.verify = true,
            "--delta-p-min" => {
                c.delta_p_min = next(&mut it, "--delta-p-min")
                    .parse()
                    .expect("--delta-p-min: float");
            }
            "--max-rounds" => {
                c.max_rounds = next(&mut it, "--max-rounds")
                    .parse()
                    .expect("--max-rounds: integer");
            }
            "--interior-cap" => {
                c.interior_cap = next(&mut it, "--interior-cap")
                    .parse()
                    .expect("--interior-cap: integer");
            }
            "--transport" => {
                args.transport = next(&mut it, "--transport").parse().expect("--transport");
            }
            "--ckpt-every" => {
                c.ckpt_every = next(&mut it, "--ckpt-every")
                    .parse()
                    .expect("--ckpt-every: integer");
            }
            "--kill-shard" => {
                let spec = next(&mut it, "--kill-shard");
                let (s, r) = spec
                    .split_once(':')
                    .expect("--kill-shard: expected <shard>:<round>");
                c.kill_shard = Some((
                    s.parse().expect("--kill-shard shard"),
                    r.parse().expect("--kill-shard round"),
                ));
            }
            "--loss" => c.fault.loss = next(&mut it, "--loss").parse().expect("--loss: float"),
            "--dup" => c.fault.dup = next(&mut it, "--dup").parse().expect("--dup: float"),
            "--reorder" => {
                c.fault.reorder = next(&mut it, "--reorder")
                    .parse()
                    .expect("--reorder: float");
            }
            "--rtt-ms" => {
                c.fault.rtt_ms = next(&mut it, "--rtt-ms")
                    .parse()
                    .expect("--rtt-ms: integer");
            }
            "--jitter-ms" => {
                c.fault.jitter_ms = next(&mut it, "--jitter-ms")
                    .parse()
                    .expect("--jitter-ms: integer");
            }
            "--net-seed" => {
                c.net_seed = next(&mut it, "--net-seed")
                    .parse()
                    .expect("--net-seed: integer");
            }
            "--soak-secs" => {
                args.soak_secs = next(&mut it, "--soak-secs")
                    .parse()
                    .expect("--soak-secs: integer");
            }
            "--telemetry" => c.telemetry = true,
            "--metrics-port" => {
                c.metrics_port = Some(
                    next(&mut it, "--metrics-port")
                        .parse()
                        .expect("--metrics-port: integer"),
                );
            }
            "--threads" => {
                c.threads = Some(
                    next(&mut it, "--threads")
                        .parse()
                        .expect("--threads: integer"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }
    if args.cfg.tasks == 0 {
        args.cfg.tasks = args.cfg.users;
    }
    args
}

fn main() -> ExitCode {
    // Worker mode: this process IS one shard, spawned by a coordinator.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("--worker") {
        raw.next();
        let cfg = parse_worker_args(raw);
        return match run_worker(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("worker shard {}: {e}", cfg.shard);
                ExitCode::FAILURE
            }
        };
    }

    let args = parse_args();
    vcs_bench::threads::configure_threads(args.cfg.threads);
    if args.soak_secs > 0 {
        return soak(&args);
    }
    eprintln!(
        "shard_runtime: {} users / {} tasks, window {}, {} shards, seed {}, transport {:?}",
        args.cfg.users,
        args.cfg.tasks,
        args.cfg.window,
        args.cfg.shards,
        args.cfg.seed,
        args.transport
    );
    let outcome = match run_deployment(&args.cfg, args.transport) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("deployment failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_slots: u64 = outcome.shard_slots.iter().sum();
    eprintln!(
        "run: converged={} rounds={} slots={:?} ({} total) phi={:.6} boundary_fraction={:.4} \
         alerts={} retx={} drops={} wall={:.3}s",
        outcome.converged,
        outcome.rounds,
        outcome.shard_slots,
        total_slots,
        outcome.phi,
        outcome.boundary_fraction,
        outcome.alerts,
        outcome.net.retransmissions,
        outcome.net.drops,
        outcome.wall_secs,
    );
    if args.verify {
        if let Err(e) = verify_outcome(&args.cfg, &outcome) {
            eprintln!("VERIFY FAILED: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "verify: oracle replay reconstructs the merged profile, phi to 1e-9 (rel), NE certified"
        );
    }
    ExitCode::SUCCESS
}

/// The churn soak: lossy-UDP deployments back to back with varying seeds,
/// each with a mid-run worker SIGKILL, until the time budget runs out.
/// Every iteration must converge, pass merged causal validation, replay on
/// the oracle, and finish with zero watchdog alerts.
fn soak(args: &Args) -> ExitCode {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(args.soak_secs);
    let mut iter = 0u64;
    while std::time::Instant::now() < deadline {
        let mut cfg = args.cfg.clone();
        cfg.seed = args.cfg.seed.wrapping_add(iter);
        cfg.net_seed = args.cfg.net_seed.wrapping_add(iter.wrapping_mul(977));
        // Kill a rotating shard after round 1's interior phase: every
        // iteration exercises checkpoint → SIGKILL → restart → replay.
        cfg.kill_shard = Some(((iter as usize) % cfg.shards, 1));
        let outcome = match run_deployment(&cfg, TransportKind::Udp) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("soak iteration {iter} (seed {}): FAILED: {e}", cfg.seed);
                return ExitCode::FAILURE;
            }
        };
        if !outcome.converged {
            eprintln!(
                "soak iteration {iter} (seed {}): did not converge",
                cfg.seed
            );
            return ExitCode::FAILURE;
        }
        if outcome.alerts != 0 {
            eprintln!(
                "soak iteration {iter} (seed {}): {} watchdog alert(s)",
                cfg.seed, outcome.alerts
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = verify_outcome(&cfg, &outcome) {
            eprintln!(
                "soak iteration {iter} (seed {}): verify failed: {e}",
                cfg.seed
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "soak iteration {iter}: seed {} converged in {} rounds, retx={} drops={}, clean",
            cfg.seed, outcome.rounds, outcome.net.retransmissions, outcome.net.drops
        );
        iter += 1;
    }
    eprintln!("soak: {iter} iteration(s) clean over {}s", args.soak_secs);
    ExitCode::SUCCESS
}
