//! `platform_serve` — the long-lived serving process: `K` shard lanes,
//! each an independent game + engine, answering an open-ended stream of
//! Join / Leave / BestRespond / Query requests over the length-guarded
//! frame transport, with `/metrics`, `/alerts` and `/snapshot` served
//! live. The process runs until a `Shutdown` request arrives.
//!
//! ```text
//! platform_serve [--shards K] [--addr A] [--metrics-addr A]
//!                [--out-dir DIR] [--seed S] [--initial-users N]
//!                [--tasks T] [--window-ms W]
//!                [--slo-budget-ms B] [--burn-windows K]
//! ```
//!
//! With `--out-dir`, the bound addresses land in `serve.addr` and
//! `metrics.addr` so scripts can discover ephemeral ports.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use vcs_obs::SloConfig;
use vcs_online::ServeCoreConfig;
use vcs_shard::{start_platform_serve, ServeOptions};

fn main() -> ExitCode {
    let mut opts = ServeOptions::default();
    let mut core = ServeCoreConfig::default();
    let mut slo = SloConfig::default();
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                opts.shards = next(&mut it, "--shards")
                    .parse()
                    .expect("--shards: integer");
            }
            "--addr" => opts.addr = next(&mut it, "--addr"),
            "--metrics-addr" => opts.metrics_addr = next(&mut it, "--metrics-addr"),
            "--out-dir" => opts.out_dir = Some(PathBuf::from(next(&mut it, "--out-dir"))),
            "--seed" => core.seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--initial-users" => {
                core.initial_users = next(&mut it, "--initial-users")
                    .parse()
                    .expect("--initial-users: integer");
            }
            "--tasks" => {
                core.n_tasks = next(&mut it, "--tasks").parse().expect("--tasks: integer");
            }
            "--window-ms" => {
                opts.window = Duration::from_millis(
                    next(&mut it, "--window-ms")
                        .parse()
                        .expect("--window-ms: integer"),
                );
            }
            "--slo-budget-ms" => {
                let ms: u64 = next(&mut it, "--slo-budget-ms")
                    .parse()
                    .expect("--slo-budget-ms: integer");
                slo.p99_budget_nanos = ms * 1_000_000;
            }
            "--burn-windows" => {
                slo.burn_windows = next(&mut it, "--burn-windows")
                    .parse()
                    .expect("--burn-windows: integer");
            }
            other => panic!("unknown argument {other}"),
        }
    }
    opts.core = core;
    opts.slo = slo;

    let handle = match start_platform_serve(&opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("platform_serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "platform_serve: {} lanes, requests on {}, /metrics on {}",
        opts.shards,
        handle.addr(),
        handle.metrics_addr()
    );
    handle.wait();
    eprintln!("platform_serve: shutdown complete");
    ExitCode::SUCCESS
}
