//! `fleet_report` — the telemetry-plane overhead benchmark behind
//! `BENCH_fleet.json`: identical multi-process TCP deployments run
//! telemetry-off and telemetry-on, best-of-N wall clock each way.
//!
//! The gated metric is `telemetry_rel = plain_wall / telemetry_wall`
//! (1.0 = the plane is free, lower = overhead). `bench_trend` floors
//! `obs_fleet/<users>/<shards>/telemetry_rel` at 0.95 — streaming frames,
//! folding them into the fleet registry, and serving `/metrics` must cost
//! a deployment less than 5% of its wall clock. Raw wall times ride along
//! as informational context.
//!
//! ```text
//! fleet_report [--out BENCH_fleet.json] [--users N] [--shards K]
//!              [--seed S] [--reps R] [--threads T]
//! ```
//!
//! The coordinator spawns one worker process per shard from
//! `current_exe()`, so this binary also speaks `--worker`.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use vcs_shard::{
    parse_worker_args, run_deployment, run_worker, DeployConfig, DeployOutcome, TransportKind,
};

/// Best-of-`reps` deployment wall clock for one config, plus the
/// best rep's outcome (for the telemetry cell's span quantiles). Uses the
/// external wall (spawn → artifacts written) rather than
/// `outcome.wall_secs`: the telemetry plane's costs include process setup
/// (exporter bind, recorder allocation) that the in-run clock would miss.
fn best_wall(cfg: &DeployConfig, reps: usize) -> Result<(f64, DeployOutcome), String> {
    let mut best: Option<(f64, DeployOutcome)> = None;
    for rep in 0..reps {
        let mut cfg = cfg.clone();
        cfg.out_dir = cfg.out_dir.join(format!("rep{rep}"));
        let start = std::time::Instant::now();
        let outcome = run_deployment(&cfg, TransportKind::Tcp)
            .map_err(|e| format!("deployment failed: {e}"))?;
        let wall = start.elapsed().as_secs_f64();
        if !outcome.converged {
            return Err("deployment did not converge".into());
        }
        if best.as_ref().is_none_or(|(w, _)| wall < *w) {
            best = Some((wall, outcome));
        }
    }
    Ok(best.expect("reps >= 1"))
}

/// Renders nanoseconds human-first for the span quantile table.
fn fmt_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn main() -> ExitCode {
    // Worker mode: this process is one shard of a measured deployment.
    let mut raw = std::env::args().skip(1).peekable();
    if raw.peek().map(String::as_str) == Some("--worker") {
        raw.next();
        let cfg = parse_worker_args(raw);
        return match run_worker(&cfg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("worker shard {}: {e}", cfg.shard);
                ExitCode::FAILURE
            }
        };
    }

    // Default workload: big enough that the deployment's wall clock is
    // dominated by convergence work, not process setup — the telemetry
    // plane's fixed costs (exporter bind, recorder allocation) would
    // swamp the ratio on a toy run.
    let mut out = PathBuf::from("BENCH_fleet.json");
    let mut users = 20_000usize;
    let mut shards = 4usize;
    let mut seed = 7u64;
    let mut reps = 3usize;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(1);
    let next = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next(&mut it, "--out")),
            "--users" => users = next(&mut it, "--users").parse().expect("--users: integer"),
            "--shards" => {
                shards = next(&mut it, "--shards")
                    .parse()
                    .expect("--shards: integer");
            }
            "--seed" => seed = next(&mut it, "--seed").parse().expect("--seed: integer"),
            "--reps" => reps = next(&mut it, "--reps").parse().expect("--reps: integer"),
            "--threads" => {
                threads = Some(
                    next(&mut it, "--threads")
                        .parse()
                        .expect("--threads: integer"),
                );
            }
            other => panic!("unknown argument {other}"),
        }
    }
    vcs_bench::threads::configure_threads(threads);

    let work_dir = std::env::temp_dir().join(format!("fleet_report_{}", std::process::id()));
    let mut cfg = DeployConfig::new(users, users, 5, shards, seed);
    cfg.threads = threads;

    eprintln!("fleet_report: {users} users / {shards} shards, telemetry off ({reps} reps) ...");
    cfg.out_dir = work_dir.join("plain");
    let (plain_wall, _) = match best_wall(&cfg, reps) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("  telemetry-off cell FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("  best wall {plain_wall:.3}s");

    eprintln!("fleet_report: telemetry on ({reps} reps) ...");
    cfg.telemetry = true;
    cfg.metrics_port = Some(0); // bind the exporter too — it is part of the cost
    cfg.out_dir = work_dir.join("telemetry");
    let (telemetry_wall, telemetry_outcome) = match best_wall(&cfg, reps) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("  telemetry-on cell FAILED: {e}");
            return ExitCode::FAILURE;
        }
    };
    let telemetry_rel = plain_wall / telemetry_wall;
    eprintln!("  best wall {telemetry_wall:.3}s, telemetry_rel {telemetry_rel:.4}");
    if !telemetry_outcome.span_quantiles.is_empty() {
        eprintln!("  fleet span quantiles (best telemetry rep):");
        eprintln!(
            "    {:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "kind", "count", "p50", "p90", "p99", "max"
        );
        for q in &telemetry_outcome.span_quantiles {
            eprintln!(
                "    {:<20} {:>10} {:>10} {:>10} {:>10} {:>10}",
                q.kind.tag(),
                q.count,
                fmt_nanos(q.p50_nanos),
                fmt_nanos(q.p90_nanos),
                fmt_nanos(q.p99_nanos),
                fmt_nanos(q.max_nanos)
            );
        }
    }
    let _ = std::fs::remove_dir_all(&work_dir);

    let mut doc = String::new();
    let _ = writeln!(doc, "{{");
    let _ = writeln!(
        doc,
        "  \"benchmark\": \"fleet telemetry plane overhead: multi-process TCP deployment, {users} users / {shards} shards, best of {reps}\","
    );
    let _ = writeln!(doc, "  \"seed\": {seed},");
    let _ = writeln!(doc, "  \"rows\": [");
    let _ = writeln!(
        doc,
        "    {{\"users\": {users}, \"shards\": {shards}, \"telemetry_rel\": {telemetry_rel:.4}, \
         \"plain_wall_sec\": {plain_wall:.3}, \"telemetry_wall_sec\": {telemetry_wall:.3}}}"
    );
    let _ = writeln!(doc, "  ]");
    let _ = writeln!(doc, "}}");
    std::fs::write(&out, doc).expect("write BENCH_fleet.json");
    eprintln!("fleet_report: wrote {}", out.display());
    ExitCode::SUCCESS
}
