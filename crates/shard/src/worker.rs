//! The shard worker: the per-shard OS process of a socket-mode deployment.
//!
//! A worker owns exactly what one [`crate::sim::ShardLane`] owns in the
//! in-process coordinator — the shard's engine over its member sub-game,
//! its lane RNG, its slot counter, and its causal-stamp endpoint — and
//! executes the coordinator's control messages lock-step. Because the lane
//! code, the RNG streams, and the event-emission order are shared with
//! [`crate::ShardedSim`] verbatim, a socket deployment's per-shard JSONL
//! dumps are *byte-identical* to the channel-mode run of the same
//! `(game, config)` (the transport-oracle suite asserts this).
//!
//! ## Crash recovery
//!
//! At every `Checkpoint` message the worker atomically persists a
//! [`WorkerCheckpoint`]: engine snapshot, RNG state, stamper endpoint,
//! slot counter, the applied-frame table, and the flushed length of its
//! JSONL dump. A restarted worker (same arguments) restores all of it,
//! truncates the dump back to the checkpointed offset with
//! [`JsonlSubscriber::resume_at`], and reports the covered round in its
//! `Hello` — the coordinator then replays the rounds the dead incarnation
//! had seen, and the rewritten tail of the dump comes out identical.
//! The Theorem-4 watchdog is deliberately **not** checkpointed: a resumed
//! worker gets a fresh one (its budget is a bound on total slots, so a
//! restart can only under-count — never a false positive).
//!
//! ## Idempotent frame application
//!
//! Boundary frames apply exactly once, keyed on `(sender shard, seq)`: a
//! frame at or below the applied high-water mark is acknowledged but not
//! re-applied, and a frame that would skip ahead triggers a
//! [`CtrlMsg::FrameGap`] naming the first missing sequence number, which
//! drives coordinator-side retransmission of the gap.
//!
//! ## Observability
//!
//! Every worker carries a [`FlightRecorder`] on its event fanout with a
//! panic hook dumping the tail to `recorder-{s}.jsonl`. With `--telemetry`
//! the worker additionally streams [`TelemetryFrame`] snapshots (its stats
//! counters, span histograms, ARQ health, and latched watchdog alerts) to
//! the coordinator ahead of its `InteriorDone`/`CheckpointDone`/`Done`
//! replies, and refreshes the recorder dump at every checkpoint so even a
//! SIGKILL (which no panic hook survives) leaves a post-mortem tail for the
//! coordinator to ship into `merged.jsonl`. All of it is out-of-band: the
//! stats/recorder sinks never touch the JSONL dump, so the byte-identity
//! contract with channel mode is unaffected.

use crate::arq::FaultConfig;
use crate::deploy::DeployConfig;
use crate::frame::BoundaryFrame;
use crate::net::{CoordLink, CtrlMsg, TransportKind, CHUNK_PAIRS};
use crate::partition::partition;
use crate::sim::{converge_interior, initial_profile, lane_seed, ShardLane};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use vcs_core::bounds::slot_upper_bound;
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{Engine, Profile};
use vcs_obs::span::SpanKind;
use vcs_obs::{
    Event, FanoutSubscriber, FlightRecorder, FrameStamp, FrameStamper, JsonlSubscriber, NetStats,
    Obs, StatsSubscriber, Subscriber, TelemetryFrame, WatchdogConfig, WatchdogSubscriber,
};
use vcs_online::Snapshot;

/// Everything a worker process needs to reconstruct its shard of the
/// deployment deterministically: the full game parameters (the game is
/// re-derived, never shipped) plus its shard id and the coordinator's
/// address.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// This worker's shard id.
    pub shard: usize,
    /// Coordinator port on localhost.
    pub coord_port: u16,
    /// Socket transport to dial ([`TransportKind::Channel`] is invalid
    /// here).
    pub transport: TransportKind,
    /// The deployment parameters shared with the coordinator.
    pub deploy: DeployConfig,
}

const CKPT_MAGIC: [u8; 4] = *b"VCSW";
const CKPT_VERSION: u16 = 1;

/// A worker's durable round-boundary state. See the module docs for what
/// is (and deliberately is not) covered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct WorkerCheckpoint {
    pub(crate) shard: u32,
    /// Last fully completed coordinator round this state covers.
    pub(crate) round: u32,
    pub(crate) slots: u64,
    pub(crate) rng: [u64; 4],
    pub(crate) stamper_seq: u64,
    pub(crate) stamper_clock: u64,
    /// Flushed JSONL dump length at checkpoint time — the resume
    /// truncation point.
    pub(crate) jsonl_off: u64,
    /// Per-sender-shard applied-frame high-water marks.
    pub(crate) applied: Vec<u64>,
    /// Encoded engine [`Snapshot`].
    pub(crate) snapshot: Vec<u8>,
}

impl WorkerCheckpoint {
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.applied.len() * 8 + self.snapshot.len());
        out.extend_from_slice(&CKPT_MAGIC);
        out.extend_from_slice(&CKPT_VERSION.to_be_bytes());
        out.extend_from_slice(&self.shard.to_be_bytes());
        out.extend_from_slice(&self.round.to_be_bytes());
        out.extend_from_slice(&self.slots.to_be_bytes());
        for word in self.rng {
            out.extend_from_slice(&word.to_be_bytes());
        }
        out.extend_from_slice(&self.stamper_seq.to_be_bytes());
        out.extend_from_slice(&self.stamper_clock.to_be_bytes());
        out.extend_from_slice(&self.jsonl_off.to_be_bytes());
        out.extend_from_slice(&(self.applied.len() as u32).to_be_bytes());
        for &hi in &self.applied {
            out.extend_from_slice(&hi.to_be_bytes());
        }
        out.extend_from_slice(&(self.snapshot.len() as u64).to_be_bytes());
        out.extend_from_slice(&self.snapshot);
        out
    }

    pub(crate) fn decode(buf: &[u8]) -> io::Result<Self> {
        fn bad(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {msg}"))
        }
        let mut at = 0usize;
        fn take<'b>(buf: &'b [u8], at: &mut usize, n: usize) -> io::Result<&'b [u8]> {
            fn bad(msg: &str) -> io::Error {
                io::Error::new(io::ErrorKind::InvalidData, format!("checkpoint: {msg}"))
            }
            let end = at.checked_add(n).ok_or_else(|| bad("overflow"))?;
            let bytes = buf.get(*at..end).ok_or_else(|| bad("truncated"))?;
            *at = end;
            Ok(bytes)
        }
        if take(buf, &mut at, 4)? != CKPT_MAGIC {
            return Err(bad("bad magic"));
        }
        let ver = u16::from_be_bytes(take(buf, &mut at, 2)?.try_into().expect("2 bytes"));
        if ver != CKPT_VERSION {
            return Err(bad("unknown version"));
        }
        let u32_at = |b: &[u8]| u32::from_be_bytes(b.try_into().expect("4 bytes"));
        let u64_at = |b: &[u8]| u64::from_be_bytes(b.try_into().expect("8 bytes"));
        let shard = u32_at(take(buf, &mut at, 4)?);
        let round = u32_at(take(buf, &mut at, 4)?);
        let slots = u64_at(take(buf, &mut at, 8)?);
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = u64_at(take(buf, &mut at, 8)?);
        }
        let stamper_seq = u64_at(take(buf, &mut at, 8)?);
        let stamper_clock = u64_at(take(buf, &mut at, 8)?);
        let jsonl_off = u64_at(take(buf, &mut at, 8)?);
        let n_applied = u32_at(take(buf, &mut at, 4)?) as usize;
        // Hostile-length guard: promised entries must fit the bytes left.
        if n_applied > buf.len().saturating_sub(at) / 8 {
            return Err(bad("applied table overruns buffer"));
        }
        let mut applied = Vec::with_capacity(n_applied);
        for _ in 0..n_applied {
            applied.push(u64_at(take(buf, &mut at, 8)?));
        }
        let snap_len = u64_at(take(buf, &mut at, 8)?) as usize;
        if snap_len > buf.len().saturating_sub(at) {
            return Err(bad("snapshot length overruns buffer"));
        }
        let snapshot = take(buf, &mut at, snap_len)?.to_vec();
        if at != buf.len() {
            return Err(bad("trailing bytes"));
        }
        Ok(WorkerCheckpoint {
            shard,
            round,
            slots,
            rng,
            stamper_seq,
            stamper_clock,
            jsonl_off,
            applied,
            snapshot,
        })
    }

    /// Atomically persists the checkpoint (temp file + rename): a crash
    /// mid-write leaves the previous checkpoint intact.
    pub(crate) fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.encode())?;
        std::fs::rename(&tmp, path)
    }
}

/// The worker's live state: the lane plus the protocol bookkeeping around
/// it. `handle` is a pure-ish message → replies step so the protocol logic
/// is unit-testable without sockets.
pub(crate) struct Worker {
    shard: usize,
    /// Local id ↔ global id maps for this shard's members.
    members: Vec<UserId>,
    local_of: Vec<u32>,
    /// Global id → home shard (only consulted for `Finish` reporting).
    home_of: Vec<u32>,
    pub(crate) lane: ShardLane,
    pub(crate) stamper: FrameStamper,
    /// Per-sender-shard applied-frame high-water marks.
    pub(crate) applied: Vec<u64>,
    jsonl: Arc<JsonlSubscriber>,
    dog: Arc<WatchdogSubscriber>,
    /// This process's aggregate counters/histograms — the source of its
    /// telemetry frames. Fanned in next to the JSONL sink, never writing a
    /// byte of the dump itself.
    stats: Arc<StatsSubscriber>,
    /// The always-on flight recorder (panic hook + checkpoint dumps).
    recorder: Arc<FlightRecorder>,
    recorder_path: PathBuf,
    /// Whether telemetry streaming (and checkpoint recorder dumps) is on.
    telemetry: bool,
    /// Per-process telemetry frame counter.
    telemetry_seq: u64,
    /// Span sink for the worker's own phases: stats + recorder only, so
    /// `SpanRecorded` events never perturb the deterministic JSONL dump.
    span_obs: Obs,
    ckpt_path: PathBuf,
    interior_cap: u64,
    buf: Vec<(UserId, RouteId)>,
}

impl Worker {
    /// Builds the worker for `cfg.shard`, restoring from its checkpoint
    /// file when one exists. Returns the worker and the round its state
    /// covers (0 = fresh).
    pub(crate) fn build(cfg: &WorkerConfig) -> io::Result<(Self, u32)> {
        let d = &cfg.deploy;
        let s = cfg.shard;
        let game = d.game();
        let plan = partition(&game, d.shards);
        let members = plan.members(s);
        let n = game.users().len();
        let mut local_of = vec![u32::MAX; n];
        let mut driven = vec![false; members.len()];
        for (l, &g) in members.iter().enumerate() {
            local_of[g.index()] = l as u32;
            driven[l] = !plan.is_boundary(g);
        }
        let home_of: Vec<u32> = (0..n)
            .map(|u| plan.home_of(UserId::from_index(u)) as u32)
            .collect();

        let ckpt_path = d.out_dir.join(format!("ckpt-{s}.bin"));
        let dump_path = d.out_dir.join(format!("shard-{s}.jsonl"));
        let restored = match std::fs::read(&ckpt_path) {
            Ok(bytes) => Some(WorkerCheckpoint::decode(&bytes)?),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };

        let mut stamper = FrameStamper::default();
        let mut applied = vec![0u64; d.shards];
        let (jsonl, mut lane, ckpt_round) = match restored {
            Some(ck) => {
                if ck.shard != s as u32 || ck.applied.len() != d.shards {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "checkpoint does not match this deployment",
                    ));
                }
                let jsonl = Arc::new(JsonlSubscriber::resume_at(&dump_path, ck.jsonl_off)?);
                let snapshot = Snapshot::decode(bytes::Bytes::from(ck.snapshot))
                    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
                let mut lane =
                    ShardLane::build(snapshot.restore(), StdRng::from_state(ck.rng), driven);
                lane.slots = ck.slots;
                stamper.restore_endpoint(s as u32, ck.stamper_seq, ck.stamper_clock);
                applied = ck.applied;
                (jsonl, lane, ck.round)
            }
            None => {
                let jsonl = Arc::new(JsonlSubscriber::create(&dump_path)?);
                let initial = initial_profile(&game, d.seed);
                let choices: Vec<RouteId> = members.iter().map(|&g| initial[g.index()]).collect();
                let sub = game.subgame(&members);
                let profile = Profile::new(&sub, choices);
                let engine = Engine::new_owned(sub, profile);
                let lane =
                    ShardLane::build(engine, StdRng::seed_from_u64(lane_seed(d.seed, s)), driven);
                (jsonl, lane, 0)
            }
        };

        let budget = slot_upper_bound(lane.engine.game(), d.delta_p_min);
        let dog = Arc::new(WatchdogSubscriber::new(WatchdogConfig {
            slot_budget: budget.is_finite().then(|| budget.ceil() as u64),
            ..WatchdogConfig::default()
        }));
        let stats = Arc::new(StatsSubscriber::new());
        let recorder = Arc::new(FlightRecorder::new(1 << 12));
        let recorder_path = d.out_dir.join(format!("recorder-{s}.jsonl"));
        let sinks: Vec<Arc<dyn Subscriber>> =
            vec![jsonl.clone(), dog.clone(), stats.clone(), recorder.clone()];
        let obs = FanoutSubscriber::obs(sinks);
        // NOTE: set_obs emits EngineInit — on a fresh start this matches
        // channel mode exactly; after a restart it adds one (harmlessly
        // unstamped) extra EngineInit at the resume point.
        lane.engine.set_obs(obs.clone());
        lane.obs = obs;
        let span_obs = FanoutSubscriber::obs(vec![
            stats.clone() as Arc<dyn Subscriber>,
            recorder.clone() as Arc<dyn Subscriber>,
        ]);

        Ok((
            Worker {
                shard: s,
                members,
                local_of,
                home_of,
                lane,
                stamper,
                applied,
                jsonl,
                dog,
                stats,
                recorder,
                recorder_path,
                telemetry: d.telemetry,
                telemetry_seq: 0,
                span_obs,
                ckpt_path,
                interior_cap: d.interior_cap,
                buf: Vec::new(),
            },
            ckpt_round,
        ))
    }

    /// Installs the process-wide panic hook that dumps the flight
    /// recorder's tail to `recorder-{s}.jsonl` when any thread dies.
    pub(crate) fn install_panic_hook(&self) {
        self.recorder.install_panic_hook(self.recorder_path.clone());
    }

    /// Snapshots this process's observability state into the next telemetry
    /// frame (monotonic per-process `seq`; incarnation 0 — the coordinator
    /// stamps the true incarnation at ingest).
    pub(crate) fn telemetry_frame(&mut self, net: NetStats) -> TelemetryFrame {
        self.telemetry_seq += 1;
        TelemetryFrame::capture(
            self.shard as u32,
            self.telemetry_seq,
            &self.stats,
            Some(&self.dog),
            net,
        )
    }

    fn local(&self, user: u32) -> UserId {
        let l = self.local_of[user as usize];
        assert_ne!(l, u32::MAX, "user {user} is not a member of this shard");
        UserId::from_index(l as usize)
    }

    /// Executes one control message, returning the replies to send (in
    /// order) and whether the run is over.
    pub(crate) fn handle(&mut self, msg: CtrlMsg) -> io::Result<(Vec<CtrlMsg>, bool)> {
        let mut out = Vec::new();
        match msg {
            CtrlMsg::RunInterior { round } => {
                self.buf.clear();
                let mut buf = std::mem::take(&mut self.buf);
                let timer = self.span_obs.span(SpanKind::InteriorConverge);
                converge_interior(&mut self.lane, self.interior_cap, &mut buf);
                timer.finish();
                let moves: Vec<(u32, u32)> = buf
                    .iter()
                    .map(|&(lu, r)| (self.members[lu.index()].index() as u32, r.index() as u32))
                    .collect();
                self.buf = buf;
                for chunk in moves.chunks(CHUNK_PAIRS) {
                    out.push(CtrlMsg::InteriorPart {
                        moves: chunk.to_vec(),
                    });
                }
                out.push(CtrlMsg::InteriorDone {
                    round,
                    converged: self.lane.converged,
                    slots: self.lane.slots,
                    moves: moves.len() as u32,
                });
            }
            CtrlMsg::BestRespond { user } => {
                let resp = self.lane.engine.best_route_set(self.local(user));
                out.push(CtrlMsg::Routes {
                    user,
                    routes: resp.best_routes.iter().map(|r| r.index() as u32).collect(),
                });
            }
            CtrlMsg::Commit { user, route } => {
                // The home-commit event order mirrors the channel-mode
                // coordinator exactly: MoveCommitted (engine), then
                // SlotCompleted, then the stamped FrameSent.
                let local = self.local(user);
                let to = RouteId::from_index(route as usize);
                let from = self.lane.engine.apply_move(local, to);
                self.lane.slots += 1;
                let (slot, phi, total) = (
                    self.lane.slots,
                    self.lane.engine.potential(),
                    self.lane.engine.total_profit(),
                );
                self.lane.obs.emit(|| Event::SlotCompleted {
                    slot,
                    updated: 1,
                    phi,
                    total_profit: total,
                });
                let stamp = self.stamper.send(self.shard as u32);
                let frame = BoundaryFrame {
                    shard: self.shard as u32,
                    user,
                    from_route: from.index() as u32,
                    to_route: route,
                    seq: stamp.seq,
                    lamport: stamp.lamport,
                };
                let wire = self
                    .span_obs
                    .time(SpanKind::BoundarySerialize, || frame.encode());
                let len = wire.len() as u32;
                self.lane.obs.emit(|| Event::FrameSent {
                    bytes: len,
                    seq: stamp.seq,
                    lamport: stamp.lamport,
                });
                out.push(CtrlMsg::Committed {
                    frame: wire.to_vec(),
                });
            }
            CtrlMsg::Apply { frame } => out.push(self.apply_frame(&frame)?),
            CtrlMsg::Checkpoint { round } => {
                self.write_checkpoint(round)?;
                if self.telemetry {
                    // Refresh the post-mortem tail at every checkpoint: a
                    // SIGKILL gives no panic hook a chance to fire, but the
                    // last checkpoint's dump survives for the coordinator
                    // to ship into `merged.jsonl`. Best-effort by design —
                    // a failed dump must not take the worker down.
                    let _ = self.recorder.dump_jsonl(&self.recorder_path);
                }
                out.push(CtrlMsg::CheckpointDone { round });
            }
            CtrlMsg::Finish => {
                let entries: Vec<(u32, u32)> = self
                    .members
                    .iter()
                    .enumerate()
                    .filter(|&(_, &g)| self.home_of[g.index()] == self.shard as u32)
                    .map(|(l, &g)| {
                        let route = self.lane.engine.profile().choice(UserId::from_index(l));
                        (g.index() as u32, route.index() as u32)
                    })
                    .collect();
                for chunk in entries.chunks(CHUNK_PAIRS) {
                    out.push(CtrlMsg::DonePart {
                        entries: chunk.to_vec(),
                    });
                }
                self.jsonl.flush()?;
                out.push(CtrlMsg::Done {
                    shard: self.shard as u32,
                    alerts: self.dog.alert_count() as u64,
                    slots: self.lane.slots,
                    entries: entries.len() as u32,
                });
                return Ok((out, true));
            }
            other => {
                return Err(io::Error::other(format!(
                    "worker got unexpected message {other:?}"
                )));
            }
        }
        Ok((out, false))
    }

    /// Applies one boundary frame idempotently, keyed on
    /// `(sender shard, seq)`. See the module docs.
    pub(crate) fn apply_frame(&mut self, frame: &[u8]) -> io::Result<CtrlMsg> {
        let f = BoundaryFrame::decode(frame)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
        let src = f.shard as usize;
        if src >= self.applied.len() || src == self.shard {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame from invalid shard {src}"),
            ));
        }
        let hi = self.applied[src];
        if f.seq <= hi {
            // Duplicate: already applied — acknowledge without re-applying.
            return Ok(CtrlMsg::Applied { seq: f.seq });
        }
        if f.seq > hi + 1 {
            // Causal-stamp gap: frames (hi+1..f.seq) are missing; ask for
            // retransmission instead of applying out of order.
            return Ok(CtrlMsg::FrameGap {
                shard: f.shard,
                from_seq: hi + 1,
            });
        }
        let local = self.local(f.user);
        self.lane
            .engine
            .apply_remote_move(local, RouteId::from_index(f.to_route as usize));
        let rx = self.stamper.receive(
            self.shard as u32,
            FrameStamp {
                seq: f.seq,
                lamport: f.lamport,
            },
        );
        let len = frame.len() as u32;
        self.lane.obs.emit(|| Event::FrameReceived {
            bytes: len,
            seq: rx.seq,
            lamport: rx.lamport,
        });
        self.applied[src] = f.seq;
        Ok(CtrlMsg::Applied { seq: f.seq })
    }

    fn write_checkpoint(&mut self, round: u32) -> io::Result<()> {
        let jsonl_off = self.jsonl.flushed_len()?;
        let (stamper_seq, stamper_clock) = self.stamper.endpoint_state(self.shard as u32);
        let ck = WorkerCheckpoint {
            shard: self.shard as u32,
            round,
            slots: self.lane.slots,
            rng: self.lane.rng.state(),
            stamper_seq,
            stamper_clock,
            jsonl_off,
            applied: self.applied.clone(),
            snapshot: Snapshot::capture(&self.lane.engine)
                .encode()
                .as_ref()
                .to_vec(),
        };
        ck.write_atomic(&self.ckpt_path)
    }
}

/// Runs a shard worker process to completion: connect, `Hello`, then serve
/// the coordinator's control messages until `Finish`.
///
/// # Errors
///
/// Transport failures, a corrupt checkpoint, or a protocol violation. A
/// recv timeout (the coordinator has been silent for two minutes) is also
/// an error — the worker exits rather than orphan itself.
pub fn run_worker(cfg: &WorkerConfig) -> io::Result<()> {
    vcs_bench::threads::configure_threads(cfg.deploy.threads);
    let (mut worker, ckpt_round) = Worker::build(cfg)?;
    worker.install_panic_hook();
    let net_obs = match cfg.transport {
        TransportKind::Udp => {
            let path = cfg.deploy.out_dir.join(format!("net-{}.jsonl", cfg.shard));
            Obs::new(Arc::new(JsonlSubscriber::create(&path)?))
        }
        _ => Obs::disabled(),
    };
    // Each side of a lossy link injects faults on its own outbound
    // datagrams; the seeds differ per direction so the two streams are
    // independent.
    let fault = if cfg.transport == TransportKind::Udp {
        cfg.deploy.fault
    } else {
        FaultConfig::clean()
    };
    let mut link = CoordLink::connect(
        cfg.transport,
        &format!("127.0.0.1:{}", cfg.coord_port),
        fault,
        cfg.deploy
            .net_seed
            .wrapping_add(1 + cfg.shard as u64)
            .rotate_left(17),
        net_obs,
    )?;
    link.send(&CtrlMsg::Hello {
        shard: cfg.shard as u32,
        ckpt_round,
    })?;
    loop {
        let msg = link.recv(Duration::from_secs(120))?;
        // Telemetry rides ahead of the phase-boundary replies so the
        // coordinator folds the freshest snapshot while it is already
        // receiving from this shard. Strictly out-of-band: the coordinator
        // ingests and skips these without touching the lock-step protocol.
        let telemetry_due = cfg.deploy.telemetry
            && matches!(
                msg,
                CtrlMsg::RunInterior { .. } | CtrlMsg::Checkpoint { .. } | CtrlMsg::Finish
            );
        let (replies, finished) = worker.handle(msg)?;
        if telemetry_due {
            let frame = worker.telemetry_frame(link.net_stats());
            link.send(&CtrlMsg::Telemetry {
                bytes: frame.encode(),
            })?;
        }
        for reply in &replies {
            link.send(reply)?;
        }
        if finished {
            link.drain(Duration::from_secs(10));
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_codec_round_trips_and_rejects_corruption() {
        let ck = WorkerCheckpoint {
            shard: 2,
            round: 9,
            slots: 1234,
            rng: [1, 2, 3, 4],
            stamper_seq: 17,
            stamper_clock: 41,
            jsonl_off: 8899,
            applied: vec![5, 0, 7],
            snapshot: vec![9u8; 100],
        };
        let bytes = ck.encode();
        assert_eq!(WorkerCheckpoint::decode(&bytes).unwrap(), ck);
        assert!(WorkerCheckpoint::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(WorkerCheckpoint::decode(&bad_magic).is_err());
        // Hostile applied-table length: promises more entries than bytes.
        let mut hostile = bytes.clone();
        // applied-count offset: 4 magic + 2 ver + 4 shard + 4 round +
        // 8 slots + 32 rng + 8 seq + 8 clock + 8 off = 78.
        hostile[78..82].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(WorkerCheckpoint::decode(&hostile).is_err());
        let mut trailing = bytes;
        trailing.push(0);
        assert!(WorkerCheckpoint::decode(&trailing).is_err());
    }
}
