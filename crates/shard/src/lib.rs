//! Sharded multi-engine deployment for the DGRN reproduction.
//!
//! One engine per shard, each over the sub-game induced by the shard's
//! members; a locality-aware partitioner ([`partition`]) decides who lives
//! where, a boundary-sync coordinator ([`ShardedSim`]) exchanges committed
//! boundary moves as causally stamped [`BoundaryFrame`]s, and shard-scoped
//! checkpoints ([`ShardCheckpoint`]) resume the exact trajectory. The
//! `shard_runtime` and `shard_report` binaries drive deployments and the
//! scaling benchmark respectively.
//!
//! The crate also hosts the long-lived serving mode: [`serving`] keeps
//! `K` shard lanes open indefinitely behind a request frontend
//! (`platform_serve`), [`loadgen`] drives it with seeded open-loop
//! arrivals and coordinated-omission-corrected latency (`loadgen`,
//! `load_report`), with request-level spans, windowed latency quantiles,
//! and SLO burn-rate alerts on `/metrics`.
//!
//! Correctness contract (enforced by the oracle test suite): a converged
//! sharded run's merged profile is a Nash equilibrium of the *full* game,
//! its merged commit log replays on a single full-game engine with `ϕ`
//! agreement to `1e-9`, and on exhaustively enumerable games (≤ 6 users)
//! the sharded fixpoint set equals the single-engine equilibrium set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
mod deploy;
mod frame;
mod gen;
pub mod loadgen;
pub mod net;
pub mod partition;
pub mod serving;
mod sim;
mod worker;

pub use arq::{ArqReceiver, ArqSender, FaultConfig, FaultInjector};
pub use deploy::{parse_worker_args, run_deployment, verify_outcome, DeployConfig, DeployOutcome};
pub use frame::{BoundaryFrame, FrameError, FRAME_LEN};
pub use gen::localized_game;
pub use loadgen::{run_loadgen, LoadReport, LoadgenOptions};
pub use net::{CoordLink, CtrlMsg, PeerNet, TransportKind};
pub use partition::{partition, ShardPlan};
pub use serving::{global_user_id, split_user_id, start_platform_serve, ServeHandle, ServeOptions};
pub use sim::{RoundReport, ShardCheckpoint, ShardConfig, ShardedOutcome, ShardedSim};
pub use vcs_obs::NetStats;
pub use worker::{run_worker, WorkerConfig};
