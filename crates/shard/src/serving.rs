//! The long-lived serving mode behind the `platform_serve` binary.
//!
//! Where [`run_deployment`](crate::run_deployment) drives a fixed game to
//! one fixpoint and exits, a serving process stays up and answers an
//! open-ended stream of [`ServeRequest`]s over the PR-8 length-guarded
//! frame transport. The process hosts `K` *shard lanes*: each lane is one
//! OS thread owning an independent [`ServeCore`] (its own paper-range
//! game, engine and RNG — the per-shard games of the deployment layer,
//! without cross-shard boundary coupling), fed through an mpsc queue.
//!
//! ## Request lifecycle
//!
//! 1. A connection reader decodes the frame, stamps the **ingress**
//!    instant, and routes by shard: `Join` by its hint (round-robin on
//!    [`ANY_SHARD`]), `Leave`/`BestRespond` by the global id's upper 32
//!    bits. Malformed frames close the connection; bad shards/users are
//!    *rejected*, never panics.
//! 2. The owning lane dequeues it — the queue delay is recorded as a
//!    [`SpanKind::IngressQueue`] span — executes it on its core (the
//!    bounded re-convergence shows up as [`SpanKind::ConvergeWait`]), and
//!    enqueues the reply to the connection's writer thread.
//! 3. The writer encodes and writes the reply under a [`SpanKind::Reply`]
//!    span, then records the request's end-to-end latency (ingress →
//!    reply written) into the process-wide [`ServeMetrics`] histogram and
//!    the [`SloMonitor`]'s current window.
//!
//! `Query` is answered at ingress from per-lane atomics (population,
//! cumulative slots, ϕ) without a lane round-trip; `Shutdown` latches the
//! stop flag, after which every new request is rejected with
//! [`RejectReason::ShuttingDown`] and the process drains and exits.
//!
//! ## Observability
//!
//! Each lane carries its own [`StatsSubscriber`]; a ticker thread
//! captures per-lane [`TelemetryFrame`]s into a [`FleetStats`] registry
//! every window (the lane id is the shard label; the connection front is
//! [`COORD_SHARD`]), rolls the [`ServeMetrics`] rate window (sustained
//! slots/sec, goodput), and rolls the [`SloMonitor`] window (consecutive
//! p99-over-budget windows latch a burn-rate alert). Everything is served
//! by [`MetricsExporter::bind_serve`] on `/metrics`, `/alerts` and
//! `/snapshot`.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use vcs_core::ids::UserId;
use vcs_obs::{
    elapsed_nanos, Event, FleetStats, MetricsExporter, Obs, RequestKind, ServeMetrics, SloConfig,
    SloMonitor, SpanKind, StatsSubscriber, Subscriber, TelemetryFrame, COORD_SHARD,
};
use vcs_online::{ServeCore, ServeCoreConfig};
use vcs_runtime::net::{read_frame, write_frame};
use vcs_runtime::{
    RejectReason, ServeReply, ServeReplyBody, ServeRequest, ServeRequestBody, ANY_SHARD,
};

/// Composes a global user id from a lane and the lane-local id.
pub fn global_user_id(shard: u32, local: UserId) -> u64 {
    (u64::from(shard) << 32) | local.index() as u64
}

/// Splits a global user id into `(lane, lane-local id)`.
pub fn split_user_id(user: u64) -> (u32, UserId) {
    (
        (user >> 32) as u32,
        UserId::from_index(user as u32 as usize),
    )
}

/// Shape of one serving process.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Shard lanes to host (each an independent game + engine + thread).
    pub shards: usize,
    /// Request listener bind address (`"127.0.0.1:0"` for ephemeral).
    pub addr: String,
    /// `/metrics` exporter bind address.
    pub metrics_addr: String,
    /// Per-lane core shape; lane `s` seeds its RNG with `core.seed + s`.
    pub core: ServeCoreConfig,
    /// Telemetry/SLO window length (also the ticker period).
    pub window: Duration,
    /// SLO budget the monitor holds the windowed p99 against.
    pub slo: SloConfig,
    /// When set, `serve.addr` and `metrics.addr` are written there so
    /// out-of-process clients (CI, loadgen scripts) can discover the
    /// ephemeral ports.
    pub out_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: 2,
            addr: "127.0.0.1:0".into(),
            metrics_addr: "127.0.0.1:0".into(),
            core: ServeCoreConfig::default(),
            window: Duration::from_millis(250),
            slo: SloConfig::default(),
            out_dir: None,
        }
    }
}

/// What a lane is asked to do (the shard routing already happened).
enum LaneOp {
    Join,
    Leave(UserId),
    BestRespond(UserId),
}

/// One routed request in flight to a lane.
struct LaneRequest {
    /// The connection's reply channel.
    reply_to: Sender<WriterMsg>,
    id: u64,
    ingress: Instant,
    op: LaneOp,
}

/// What a connection writer sends back: `(ingress stamp, ok, reply)`.
type WriterMsg = (Instant, bool, ServeReply);

/// Per-lane read-mostly stats the ingress answers `Query` from.
#[derive(Default)]
struct LaneShared {
    users: AtomicU64,
    slots: AtomicU64,
    phi_bits: AtomicU64,
}

impl LaneShared {
    fn publish(&self, core: &ServeCore) {
        self.users.store(core.users() as u64, Ordering::Relaxed);
        self.slots.store(core.slots_total(), Ordering::Relaxed);
        self.phi_bits.store(core.phi().to_bits(), Ordering::Relaxed);
    }
}

/// Everything the connection threads share.
struct ServerState {
    lanes: Vec<Sender<LaneRequest>>,
    shared: Vec<Arc<LaneShared>>,
    stop: Arc<AtomicBool>,
    round_robin: AtomicU64,
    serve: Arc<ServeMetrics>,
    slo: Arc<SloMonitor>,
    front_obs: Obs,
}

impl ServerState {
    fn stats(&self) -> (u64, u64, f64) {
        let mut users = 0u64;
        let mut slots = 0u64;
        let mut phi = 0.0f64;
        for lane in &self.shared {
            users += lane.users.load(Ordering::Relaxed);
            slots += lane.slots.load(Ordering::Relaxed);
            phi += f64::from_bits(lane.phi_bits.load(Ordering::Relaxed));
        }
        (users, slots, phi)
    }
}

/// A running serving process. Dropping the handle does **not** stop the
/// server — call [`shutdown`](Self::shutdown) (or send a `Shutdown`
/// request) and then [`wait`](Self::wait).
pub struct ServeHandle {
    addr: SocketAddr,
    metrics_addr: SocketAddr,
    state: Arc<ServerState>,
    fleet: Arc<FleetStats>,
    slo: Arc<SloMonitor>,
    threads: Vec<JoinHandle<()>>,
    _exporter: MetricsExporter,
}

impl ServeHandle {
    /// The request listener's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The `/metrics` exporter's bound address.
    pub fn metrics_addr(&self) -> SocketAddr {
        self.metrics_addr
    }

    /// The process-wide request metrics (live view).
    pub fn serve_metrics(&self) -> &Arc<ServeMetrics> {
        &self.state.serve
    }

    /// The SLO monitor (live view).
    pub fn slo(&self) -> &Arc<SloMonitor> {
        &self.slo
    }

    /// The per-lane fleet registry (live view).
    pub fn fleet(&self) -> &Arc<FleetStats> {
        &self.fleet
    }

    /// Latches the stop flag, as a `Shutdown` request would.
    pub fn request_shutdown(&self) {
        self.state.stop.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has stopped (a `Shutdown` request arrived
    /// or [`request_shutdown`](Self::request_shutdown) was called) and
    /// every thread has drained and exited.
    pub fn wait(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// [`request_shutdown`](Self::request_shutdown) + [`wait`](Self::wait).
    pub fn shutdown(self) {
        self.request_shutdown();
        self.wait();
    }
}

/// Starts a serving process in this process: binds the request listener
/// and the `/metrics` exporter, spawns the shard lanes, the accept loop
/// and the telemetry ticker, and returns immediately (lanes warm their
/// initial games up asynchronously; early requests queue).
///
/// # Errors
///
/// Socket bind/IO errors; `shards == 0` is `InvalidInput`.
pub fn start_platform_serve(opts: &ServeOptions) -> io::Result<ServeHandle> {
    if opts.shards == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "a serving process needs at least one shard lane",
        ));
    }
    let fleet = Arc::new(FleetStats::new().with_stale_after(opts.window * 20));
    let serve = Arc::new(ServeMetrics::new());
    let slo = Arc::new(SloMonitor::new(opts.slo));
    let front_stats = Arc::new(StatsSubscriber::new());
    let front_obs = Obs::new(Arc::clone(&front_stats) as Arc<dyn Subscriber>);

    let exporter = MetricsExporter::bind_serve(
        opts.metrics_addr.as_str(),
        Arc::clone(&fleet),
        Arc::clone(&serve),
        Arc::clone(&slo),
    )?;
    let metrics_addr = exporter.addr();
    let listener = TcpListener::bind(opts.addr.as_str())?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("serve.addr"), addr.to_string())?;
        std::fs::write(dir.join("metrics.addr"), metrics_addr.to_string())?;
    }

    // Shard lanes.
    let stop = Arc::new(AtomicBool::new(false));
    let mut lanes = Vec::with_capacity(opts.shards);
    let mut shared = Vec::with_capacity(opts.shards);
    let mut lane_stats = Vec::with_capacity(opts.shards);
    let mut threads = Vec::new();
    for s in 0..opts.shards {
        let (tx, rx) = mpsc::channel::<LaneRequest>();
        let lane_shared = Arc::new(LaneShared::default());
        let stats = Arc::new(StatsSubscriber::new());
        let lane_stop = Arc::clone(&stop);
        let config = ServeCoreConfig {
            seed: opts.core.seed + s as u64,
            ..opts.core
        };
        lanes.push(tx);
        shared.push(Arc::clone(&lane_shared));
        lane_stats.push(Arc::clone(&stats));
        threads.push(std::thread::spawn(move || {
            let obs = Obs::new(stats as Arc<dyn Subscriber>);
            let mut core = ServeCore::new(config);
            core.set_obs(obs.clone());
            lane_shared.publish(&core);
            lane_loop(s as u32, core, rx, &lane_shared, &lane_stop, &obs);
        }));
    }

    let state = Arc::new(ServerState {
        lanes,
        shared,
        stop,
        round_robin: AtomicU64::new(0),
        serve: Arc::clone(&serve),
        slo: Arc::clone(&slo),
        front_obs,
    });

    // Telemetry / window ticker.
    {
        let state = Arc::clone(&state);
        let fleet = Arc::clone(&fleet);
        let serve = Arc::clone(&serve);
        let slo = Arc::clone(&slo);
        let window = opts.window;
        threads.push(std::thread::spawn(move || {
            let mut seq = 0u64;
            loop {
                let stopping = state.stop.load(Ordering::SeqCst);
                for (s, stats) in lane_stats.iter().enumerate() {
                    fleet.ingest(TelemetryFrame::capture(
                        s as u32,
                        seq,
                        stats,
                        None,
                        Default::default(),
                    ));
                }
                fleet.ingest(TelemetryFrame::capture(
                    COORD_SHARD,
                    seq,
                    &front_stats,
                    None,
                    Default::default(),
                ));
                if seq > 0 {
                    // The first tick only seeds the registry; rates need a
                    // full window behind them.
                    let (_, slots, _) = state.stats();
                    serve.roll_window(slots, window.as_secs_f64());
                    slo.roll_window();
                }
                seq += 1;
                if stopping {
                    break;
                }
                std::thread::sleep(window);
            }
        }));
    }

    // Accept loop: non-blocking accept polled against the stop flag, so a
    // `Shutdown` request (no new connection required) unsticks it.
    {
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut conns: Vec<JoinHandle<()>> = Vec::new();
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let state = Arc::clone(&state);
                        conns.push(std::thread::spawn(move || handle_conn(stream, &state)));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        if state.stop.load(Ordering::SeqCst) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(_) => break,
                }
                if state.stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            for c in conns {
                let _ = c.join();
            }
        }));
    }

    Ok(ServeHandle {
        addr,
        metrics_addr,
        state,
        fleet,
        slo,
        threads,
        _exporter: exporter,
    })
}

/// One lane's serve loop: dequeue → record queue delay → execute on the
/// core → publish stats → enqueue the reply.
fn lane_loop(
    lane: u32,
    mut core: ServeCore,
    rx: mpsc::Receiver<LaneRequest>,
    shared: &LaneShared,
    stop: &AtomicBool,
    obs: &Obs,
) {
    loop {
        let req = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(req) => req,
            Err(RecvTimeoutError::Timeout) => {
                // Queued requests win over the stop flag: recv_timeout
                // returns them first, so the lane drains before exiting.
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(RecvTimeoutError::Disconnected) => return,
        };
        let queued = elapsed_nanos(req.ingress);
        obs.emit(|| Event::SpanRecorded {
            kind: SpanKind::IngressQueue,
            nanos: queued,
        });
        let (ok, body) = match req.op {
            LaneOp::Join => {
                let (local, slots) = core.join();
                (
                    true,
                    ServeReplyBody::Joined {
                        user: global_user_id(lane, local),
                        slots,
                    },
                )
            }
            LaneOp::Leave(user) => match core.leave(user) {
                Ok(slots) => (true, ServeReplyBody::Left { slots }),
                Err(_) => (
                    false,
                    ServeReplyBody::Rejected {
                        reason: RejectReason::UnknownUser,
                    },
                ),
            },
            LaneOp::BestRespond(user) => match core.best_respond(user) {
                Ok((moved, _)) => (true, ServeReplyBody::Responded { moved }),
                Err(_) => (
                    false,
                    ServeReplyBody::Rejected {
                        reason: RejectReason::UnknownUser,
                    },
                ),
            },
        };
        shared.publish(&core);
        let reply = ServeReply { id: req.id, body };
        let _ = req.reply_to.send((req.ingress, ok, reply));
    }
}

/// Serves one client connection: a frame-decoding reader on this thread
/// plus a spawned reply writer, bridged by a channel the lanes also hold
/// while their replies are in flight.
fn handle_conn(stream: TcpStream, state: &ServerState) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let (reply_tx, reply_rx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let serve = Arc::clone(&state.serve);
        let slo = Arc::clone(&state.slo);
        let obs = state.front_obs.clone();
        std::thread::spawn(move || {
            let mut w = write_half;
            while let Ok((ingress, ok, reply)) = reply_rx.recv() {
                let span = obs.span(SpanKind::Reply);
                let frame = reply.encode();
                let written = write_frame(&mut w, frame.as_ref()).is_ok();
                span.finish();
                let latency = elapsed_nanos(ingress);
                serve.observe_reply(ok, latency);
                slo.observe_nanos(latency);
                if !written {
                    break;
                }
            }
        })
    };
    read_loop(stream, state, &reply_tx);
    drop(reply_tx);
    let _ = writer.join();
}

/// The reader half of [`handle_conn`]: decodes frames, stamps ingress,
/// routes. Returns (closing the connection) on EOF, a malformed frame, or
/// server stop.
fn read_loop(mut stream: TcpStream, state: &ServerState, reply_tx: &Sender<WriterMsg>) {
    // The short read timeout is what lets the reader notice the stop flag
    // on an idle connection; between requests a timeout consumes nothing.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    loop {
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let payload = match read_frame(&mut stream) {
            Ok(p) => p,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return, // EOF, desync or hostile frame: close.
        };
        let ingress = Instant::now();
        let ServeRequest { id, body } = match ServeRequest::decode(Bytes::from(payload)) {
            Ok(r) => r,
            Err(_) => return,
        };
        let reject = |reason: RejectReason| {
            let _ = reply_tx.send((
                ingress,
                false,
                ServeReply {
                    id,
                    body: ServeReplyBody::Rejected { reason },
                },
            ));
        };
        let stopping = state.stop.load(Ordering::SeqCst);
        match body {
            ServeRequestBody::Join { shard } => {
                state.serve.observe_request(RequestKind::Join);
                if stopping {
                    reject(RejectReason::ShuttingDown);
                    continue;
                }
                let lane = if shard == ANY_SHARD {
                    (state.round_robin.fetch_add(1, Ordering::Relaxed) % state.lanes.len() as u64)
                        as usize
                } else if (shard as usize) < state.lanes.len() {
                    shard as usize
                } else {
                    reject(RejectReason::UnknownShard);
                    continue;
                };
                let _ = state.lanes[lane].send(LaneRequest {
                    reply_to: reply_tx.clone(),
                    id,
                    ingress,
                    op: LaneOp::Join,
                });
            }
            ServeRequestBody::Leave { user } | ServeRequestBody::BestRespond { user } => {
                let is_leave = matches!(body, ServeRequestBody::Leave { .. });
                state.serve.observe_request(if is_leave {
                    RequestKind::Leave
                } else {
                    RequestKind::BestRespond
                });
                if stopping {
                    reject(RejectReason::ShuttingDown);
                    continue;
                }
                let (lane, local) = split_user_id(user);
                if lane as usize >= state.lanes.len() {
                    reject(RejectReason::UnknownShard);
                    continue;
                }
                let _ = state.lanes[lane as usize].send(LaneRequest {
                    reply_to: reply_tx.clone(),
                    id,
                    ingress,
                    op: if is_leave {
                        LaneOp::Leave(local)
                    } else {
                        LaneOp::BestRespond(local)
                    },
                });
            }
            ServeRequestBody::Query => {
                state.serve.observe_request(RequestKind::Query);
                let (users, slots, phi) = state.stats();
                let _ = reply_tx.send((
                    ingress,
                    true,
                    ServeReply {
                        id,
                        body: ServeReplyBody::Stats { users, slots, phi },
                    },
                ));
            }
            ServeRequestBody::Shutdown => {
                let _ = reply_tx.send((
                    ingress,
                    true,
                    ServeReply {
                        id,
                        body: ServeReplyBody::ShuttingDown,
                    },
                ));
                state.stop.store(true, Ordering::SeqCst);
                // Next loop iteration observes the flag and closes.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_runtime::net::connect_with_backoff;

    fn tiny_options() -> ServeOptions {
        ServeOptions {
            shards: 2,
            core: ServeCoreConfig {
                n_tasks: 8,
                initial_users: 10,
                seed: 21,
                ..ServeCoreConfig::default()
            },
            window: Duration::from_millis(50),
            ..ServeOptions::default()
        }
    }

    fn roundtrip(stream: &mut TcpStream, req: &ServeRequest) -> ServeReply {
        write_frame(stream, req.encode().as_ref()).expect("write request");
        let payload = read_frame(stream).expect("read reply");
        ServeReply::decode(Bytes::from(payload)).expect("decode reply")
    }

    #[test]
    fn serve_join_respond_leave_query_shutdown() {
        let handle = start_platform_serve(&tiny_options()).expect("start server");
        let mut conn =
            connect_with_backoff(handle.addr(), 10, Duration::from_millis(10)).expect("connect");

        // Join on each lane, one round-robin.
        let mut users = Vec::new();
        for (id, shard) in [(1u64, 0u32), (2, 1), (3, ANY_SHARD)] {
            let reply = roundtrip(
                &mut conn,
                &ServeRequest {
                    id,
                    body: ServeRequestBody::Join { shard },
                },
            );
            assert_eq!(reply.id, id);
            match reply.body {
                ServeReplyBody::Joined { user, .. } => users.push(user),
                other => panic!("expected Joined, got {other:?}"),
            }
        }
        assert_eq!(split_user_id(users[0]).0, 0);
        assert_eq!(split_user_id(users[1]).0, 1);

        // BestRespond on a fresh equilibrium: served, not moved.
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 4,
                body: ServeRequestBody::BestRespond { user: users[0] },
            },
        );
        assert!(matches!(reply.body, ServeReplyBody::Responded { .. }));

        // Leave, then the same leave again is rejected UnknownUser.
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 5,
                body: ServeRequestBody::Leave { user: users[0] },
            },
        );
        assert!(matches!(reply.body, ServeReplyBody::Left { .. }));
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 6,
                body: ServeRequestBody::Leave { user: users[0] },
            },
        );
        assert!(matches!(
            reply.body,
            ServeReplyBody::Rejected {
                reason: RejectReason::UnknownUser
            }
        ));

        // Unknown shard hint.
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 7,
                body: ServeRequestBody::Join { shard: 99 },
            },
        );
        assert!(matches!(
            reply.body,
            ServeReplyBody::Rejected {
                reason: RejectReason::UnknownShard
            }
        ));

        // Query sees both lanes' populations (10 initial each + 2 alive).
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 8,
                body: ServeRequestBody::Query,
            },
        );
        match reply.body {
            ServeReplyBody::Stats { users, slots, .. } => {
                assert_eq!(users, 22);
                assert!(slots > 0, "initial convergences consumed slots");
            }
            other => panic!("expected Stats, got {other:?}"),
        }

        // Metrics counted every request.
        let m = handle.serve_metrics();
        assert_eq!(m.requests(RequestKind::Join), 4);
        assert_eq!(m.requests(RequestKind::Leave), 2);
        assert_eq!(m.requests(RequestKind::BestRespond), 1);
        assert_eq!(m.requests(RequestKind::Query), 1);
        let (ok, rejected) = m.replies();
        assert_eq!(ok + rejected, 8);
        assert_eq!(rejected, 2);

        // Shutdown drains the server; wait() returns.
        let reply = roundtrip(
            &mut conn,
            &ServeRequest {
                id: 9,
                body: ServeRequestBody::Shutdown,
            },
        );
        assert!(matches!(reply.body, ServeReplyBody::ShuttingDown));
        drop(conn);
        handle.wait();
    }

    #[test]
    fn global_ids_split_and_compose() {
        for (shard, local) in [(0u32, 0usize), (3, 41), (u32::MAX - 1, 123_456)] {
            let id = global_user_id(shard, UserId::from_index(local));
            assert_eq!(split_user_id(id), (shard, UserId::from_index(local)));
        }
    }

    #[test]
    fn serve_metrics_endpoint_is_live_and_valid() {
        let handle = start_platform_serve(&tiny_options()).expect("start server");
        let mut conn =
            connect_with_backoff(handle.addr(), 10, Duration::from_millis(10)).expect("connect");
        for id in 0..5u64 {
            roundtrip(
                &mut conn,
                &ServeRequest {
                    id,
                    body: ServeRequestBody::Join { shard: ANY_SHARD },
                },
            );
        }
        // Give the ticker a window to ingest lane frames and roll rates.
        std::thread::sleep(Duration::from_millis(150));
        let (status, body) =
            vcs_runtime::net::http_get(handle.metrics_addr(), "/metrics", Duration::from_secs(2))
                .expect("scrape");
        assert!(status.contains("200"), "status {status}");
        vcs_obs::validate_prometheus_text(&body).expect("valid exposition");
        assert!(body.contains("vcs_serve_requests_total{kind=\"join\"} 5"));
        assert!(body.contains("vcs_fleet_slots_total"));
        assert!(body.contains("vcs_slo_windows_total"));
        roundtrip(
            &mut conn,
            &ServeRequest {
                id: 99,
                body: ServeRequestBody::Shutdown,
            },
        );
        drop(conn);
        handle.wait();
    }
}
