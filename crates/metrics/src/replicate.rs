//! Rayon-parallel Monte-Carlo replication.
//!
//! The paper repeats every simulation 500 times. [`replicate`] runs the
//! closure once per replicate index across the rayon thread pool; results are
//! collected **in index order**, and each replicate derives its own seed from
//! the index, so parallel execution is bit-identical to sequential execution.

use rayon::prelude::*;

/// Runs `f(replicate_index)` for `n` replicates in parallel, returning
/// results in index order.
pub fn replicate<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync + Send,
{
    (0..n as u64).into_par_iter().map(f).collect()
}

/// Sequential reference implementation (for equivalence tests and when
/// determinism across thread pools needs double-checking).
pub fn replicate_sequential<T, F>(n: usize, f: F) -> Vec<T>
where
    F: Fn(u64) -> T,
{
    (0..n as u64).map(f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let f = |i: u64| {
            // A seed-derived pseudo-random value, no shared state.
            let mut z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            z ^= z >> 31;
            z
        };
        assert_eq!(replicate(100, f), replicate_sequential(100, f));
    }

    #[test]
    fn results_in_index_order() {
        let out = replicate(50, |i| i * 2);
        assert_eq!(out, (0..50u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_replicates() {
        let out: Vec<u64> = replicate(0, |i| i);
        assert!(out.is_empty());
    }
}
