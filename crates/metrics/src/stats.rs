//! Summary statistics for replicated measurements.

use serde::{Deserialize, Serialize};

/// Mean / spread summary of a sample (used for every 500-replicate series;
/// the paper's error bars are the 95% confidence interval).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Sample mean (`NaN` for empty samples).
    pub mean: f64,
    /// Sample standard deviation (unbiased, `0` for n < 2).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95% confidence interval.
    pub ci95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    pub fn of(values: &[f64]) -> Self {
        let n = values.len();
        if n == 0 {
            return Self {
                n: 0,
                mean: f64::NAN,
                std_dev: 0.0,
                ci95: 0.0,
                min: f64::NAN,
                max: f64::NAN,
            };
        }
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let std_dev = var.sqrt();
        let ci95 = 1.96 * std_dev / (n as f64).sqrt();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev,
            ci95,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        // Unbiased variance of 1..4 is 5/3.
        assert!((s.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.ci95 > 0.0);
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95, 0.0);
    }

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan());
    }
}
