//! The evaluation measures of §5.3.

use vcs_core::ids::UserId;
use vcs_core::{Game, Profile};

/// Task coverage: covered tasks / total tasks (Fig. 8).
pub fn coverage(game: &Game, profile: &Profile) -> f64 {
    if game.task_count() == 0 {
        return 0.0;
    }
    profile.covered_tasks() as f64 / game.task_count() as f64
}

/// Total raw reward collected by all users: `Σ_i Σ_{k ∈ L_{s_i}} w_k(n_k)/n_k`
/// (unscaled by `α_i`; the "reward" of Figs. 9/11/12 and Table 5).
pub fn total_reward(game: &Game, profile: &Profile) -> f64 {
    game.users()
        .iter()
        .map(|u| user_reward(game, profile, u.id))
        .sum()
}

/// Raw reward of one user under the profile.
pub fn user_reward(game: &Game, profile: &Profile, user: UserId) -> f64 {
    let u = &game.users()[user.index()];
    let route = &u.routes[profile.choice(user).index()];
    route
        .tasks
        .iter()
        .map(|&t| game.task(t).share(profile.participants(t)))
        .sum()
}

/// Average reward: total reward divided by the number of users (Fig. 9).
pub fn average_reward(game: &Game, profile: &Profile) -> f64 {
    if game.user_count() == 0 {
        return 0.0;
    }
    total_reward(game, profile) / game.user_count() as f64
}

/// Raw detour distance `h(s_i)` of one user's selected route (Table 5).
pub fn user_detour(game: &Game, profile: &Profile, user: UserId) -> f64 {
    game.users()[user.index()].routes[profile.choice(user).index()].detour
}

/// Raw congestion level `c(s_i)` of one user's selected route (Table 5).
pub fn user_congestion(game: &Game, profile: &Profile, user: UserId) -> f64 {
    game.users()[user.index()].routes[profile.choice(user).index()].congestion
}

/// Total detour distance `Σ_i h(s_i)` (Fig. 12b).
pub fn total_detour(game: &Game, profile: &Profile) -> f64 {
    (0..game.user_count())
        .map(|i| user_detour(game, profile, UserId::from_index(i)))
        .sum()
}

/// Total congestion level `Σ_i c(s_i)` (Fig. 12c).
pub fn total_congestion(game: &Game, profile: &Profile) -> f64 {
    (0..game.user_count())
        .map(|i| user_congestion(game, profile, UserId::from_index(i)))
        .sum()
}

/// Jain's fairness index of the users' profits (Fig. 10):
/// `(Σ P_i)² / (|U| · Σ P_i²)`. Lies in `[1/|U|, 1]` for non-negative inputs;
/// returns `1.0` for degenerate all-zero profiles.
pub fn jain_index(profits: &[f64]) -> f64 {
    if profits.is_empty() {
        return 1.0;
    }
    let sum: f64 = profits.iter().sum();
    let sum_sq: f64 = profits.iter().map(|p| p * p).sum();
    if sum_sq <= f64::EPSILON {
        return 1.0;
    }
    sum * sum / (profits.len() as f64 * sum_sq)
}

/// Jain's fairness index of the profile's user profits.
pub fn profile_jain_index(game: &Game, profile: &Profile) -> f64 {
    let profits: Vec<f64> = (0..game.user_count())
        .map(|i| profile.profit(game, UserId::from_index(i)))
        .collect();
    jain_index(&profits)
}

/// Overlap ratio (Table 3): tasks with more than one participant / total
/// tasks.
pub fn overlap_ratio(game: &Game, profile: &Profile) -> f64 {
    if game.task_count() == 0 {
        return 0.0;
    }
    let overlapped = profile
        .participant_counts()
        .iter()
        .filter(|&&n| n > 1)
        .count();
    overlapped as f64 / game.task_count() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::ids::{RouteId, TaskId};
    use vcs_core::{PlatformParams, Route, Task, User, UserPrefs};

    /// Two users sharing task 0; task 1 covered by user 1 only; task 2 never.
    fn game() -> Game {
        let tasks = vec![
            Task::new(TaskId(0), 12.0, 0.0),
            Task::new(TaskId(1), 10.0, 0.0),
            Task::new(TaskId(2), 15.0, 0.0),
        ];
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.5, 0.5, 0.5),
                vec![Route::new(RouteId(0), vec![TaskId(0)], 1.0, 2.0)],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.5, 0.5, 0.5),
                vec![Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 3.0, 4.0)],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap()
    }

    #[test]
    fn coverage_counts_covered_fraction() {
        let g = game();
        let p = Profile::all_first(&g);
        assert!((coverage(&g, &p) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rewards_share_correctly() {
        let g = game();
        let p = Profile::all_first(&g);
        // Task 0 shared by both: 6 each. Task 1 solo: 10.
        assert!((user_reward(&g, &p, UserId(0)) - 6.0).abs() < 1e-12);
        assert!((user_reward(&g, &p, UserId(1)) - 16.0).abs() < 1e-12);
        assert!((total_reward(&g, &p) - 22.0).abs() < 1e-12);
        assert!((average_reward(&g, &p) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn detour_and_congestion_read_selected_routes() {
        let g = game();
        let p = Profile::all_first(&g);
        assert_eq!(user_detour(&g, &p, UserId(1)), 3.0);
        assert_eq!(total_detour(&g, &p), 4.0);
        assert_eq!(user_congestion(&g, &p, UserId(0)), 2.0);
        assert_eq!(total_congestion(&g, &p), 6.0);
    }

    #[test]
    fn jain_bounds() {
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One user takes everything: 1/n.
        assert!((jain_index(&[9.0, 0.0, 0.0]) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn profile_jain_uses_profits() {
        let g = game();
        let p = Profile::all_first(&g);
        let p0 = p.profit(&g, UserId(0));
        let p1 = p.profit(&g, UserId(1));
        let expected = (p0 + p1).powi(2) / (2.0 * (p0 * p0 + p1 * p1));
        assert!((profile_jain_index(&g, &p) - expected).abs() < 1e-12);
    }

    #[test]
    fn overlap_ratio_counts_shared_tasks() {
        let g = game();
        let p = Profile::all_first(&g);
        // Only task 0 has > 1 participant.
        assert!((overlap_ratio(&g, &p) - 1.0 / 3.0).abs() < 1e-12);
    }
}
