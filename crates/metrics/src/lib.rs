//! # vcs-metrics — evaluation measures and replication harness
//!
//! The quantities §5.3 of the paper plots — task coverage, average reward,
//! Jain's fairness index, overlap ratio, detour/congestion totals — plus
//! summary statistics and a rayon-parallel, order-deterministic Monte-Carlo
//! replication helper for the 500-repetition sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod measures;
pub mod replicate;
pub mod stats;

pub use measures::{
    average_reward, coverage, jain_index, overlap_ratio, profile_jain_index, total_congestion,
    total_detour, total_reward, user_congestion, user_detour, user_reward,
};
pub use replicate::{replicate, replicate_sequential};
pub use stats::Summary;
