//! Property-based tests of the evaluation measures.

use proptest::prelude::*;
use vcs_metrics::{jain_index, Summary};

proptest! {
    /// Jain's index lies in [1/n, 1] for non-negative, not-all-zero inputs.
    #[test]
    fn jain_bounds(profits in prop::collection::vec(0.0f64..1e6, 1..40)) {
        let j = jain_index(&profits);
        let n = profits.len() as f64;
        prop_assert!(j <= 1.0 + 1e-9);
        if profits.iter().any(|&p| p > 0.0) {
            prop_assert!(j >= 1.0 / n - 1e-9);
        }
    }

    /// Jain's index is scale-invariant.
    #[test]
    fn jain_scale_invariant(
        profits in prop::collection::vec(0.1f64..1e3, 1..20),
        scale in 0.1f64..100.0,
    ) {
        let scaled: Vec<f64> = profits.iter().map(|p| p * scale).collect();
        prop_assert!((jain_index(&profits) - jain_index(&scaled)).abs() < 1e-9);
    }

    /// Equal profits are perfectly fair.
    #[test]
    fn jain_equal_is_one(value in 0.1f64..1e3, n in 1usize..30) {
        let profits = vec![value; n];
        prop_assert!((jain_index(&profits) - 1.0).abs() < 1e-9);
    }

    /// Summary invariants: min ≤ mean ≤ max, std/ci non-negative.
    #[test]
    fn summary_invariants(values in prop::collection::vec(-1e6f64..1e6, 1..60)) {
        let s = Summary::of(&values);
        prop_assert_eq!(s.n, values.len());
        prop_assert!(s.min <= s.mean + 1e-6);
        prop_assert!(s.mean <= s.max + 1e-6);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert!(s.ci95 >= 0.0);
    }

    /// Adding a constant shifts the mean by that constant and leaves the
    /// standard deviation unchanged.
    #[test]
    fn summary_shift(values in prop::collection::vec(-1e3f64..1e3, 2..40), c in -1e3f64..1e3) {
        let shifted: Vec<f64> = values.iter().map(|v| v + c).collect();
        let a = Summary::of(&values);
        let b = Summary::of(&shifted);
        prop_assert!((b.mean - (a.mean + c)).abs() < 1e-6);
        prop_assert!((b.std_dev - a.std_dev).abs() < 1e-6);
    }
}
