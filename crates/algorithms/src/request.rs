//! Update requests: what a user sends the platform when it wants to switch
//! (Alg. 1 line 12, consumed by SUU/PUU in Alg. 2/3).

use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Game, Profile};

/// An update request from one user in one decision slot.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRequest {
    /// The requesting user.
    pub user: UserId,
    /// The new route the user wants to switch to (drawn from its best route
    /// set `Δ_i(t)`, or any better route under better-response dynamics).
    pub new_route: RouteId,
    /// Profit gain `P_i(s_i', s_-i) − P_i(s)` of the switch.
    pub gain: f64,
    /// `τ_i = gain / α_i`: the potential increase the switch contributes.
    pub tau: f64,
    /// `B_i`: the tasks jointly covered by the current and the new route
    /// (every task whose participant count the switch can touch), sorted.
    pub affected_tasks: Vec<TaskId>,
}

impl UpdateRequest {
    /// Builds a request for `user` switching to `new_route` under `profile`,
    /// computing `gain`, `τ_i` and `B_i`.
    pub fn build(
        game: &Game,
        profile: &Profile,
        user: UserId,
        new_route: RouteId,
        gain: f64,
    ) -> Self {
        let u = &game.users()[user.index()];
        let current = &u.routes[profile.choice(user).index()];
        let next = &u.routes[new_route.index()];
        let mut affected: Vec<TaskId> = current
            .tasks
            .iter()
            .chain(next.tasks.iter())
            .copied()
            .collect();
        affected.sort_unstable();
        affected.dedup();
        Self {
            user,
            new_route,
            gain,
            tau: gain / u.prefs.alpha,
            affected_tasks: affected,
        }
    }

    /// Whether this request's affected task set intersects `other`'s
    /// (conflicting requests must not update in the same slot under PUU).
    pub fn conflicts_with(&self, other: &UpdateRequest) -> bool {
        tasks_intersect(&self.affected_tasks, &other.affected_tasks)
    }
}

/// Linear merge intersection test over two **sorted** task lists — the PUU
/// conflict predicate, shared by [`UpdateRequest::conflicts_with`] and the
/// allocation-free scheduler views.
pub fn tasks_intersect(a: &[TaskId], b: &[TaskId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::ids::{RouteId, TaskId, UserId};
    use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs};

    fn game() -> Game {
        let tasks = (0..4).map(|k| Task::new(TaskId(k), 10.0, 0.0)).collect();
        let users = vec![
            User::new(
                UserId(0),
                UserPrefs::new(0.5, 0.5, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(0), TaskId(1)], 0.0, 0.0),
                    Route::new(RouteId(1), vec![TaskId(1), TaskId(2)], 0.0, 0.0),
                ],
            ),
            User::new(
                UserId(1),
                UserPrefs::new(0.25, 0.5, 0.5),
                vec![
                    Route::new(RouteId(0), vec![TaskId(3)], 0.0, 0.0),
                    Route::new(RouteId(1), vec![TaskId(0)], 0.0, 0.0),
                ],
            ),
        ];
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.5, 0.5)).unwrap()
    }

    #[test]
    fn affected_tasks_union_current_and_new() {
        let g = game();
        let p = Profile::all_first(&g);
        let req = UpdateRequest::build(&g, &p, UserId(0), RouteId(1), 1.0);
        assert_eq!(req.affected_tasks, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert!((req.tau - 2.0).abs() < 1e-12); // gain 1.0 / α 0.5
    }

    #[test]
    fn tau_scales_by_alpha() {
        let g = game();
        let p = Profile::all_first(&g);
        let req = UpdateRequest::build(&g, &p, UserId(1), RouteId(1), 1.0);
        assert!((req.tau - 4.0).abs() < 1e-12); // α = 0.25
    }

    #[test]
    fn conflict_detection() {
        let g = game();
        let p = Profile::all_first(&g);
        let r0 = UpdateRequest::build(&g, &p, UserId(0), RouteId(1), 1.0); // {0,1,2}
        let r1 = UpdateRequest::build(&g, &p, UserId(1), RouteId(1), 1.0); // {0,3}
        assert!(r0.conflicts_with(&r1)); // share task 0
        assert!(r1.conflicts_with(&r0));
        // A request only touching task 3 conflicts with nothing in r0.
        let solo = UpdateRequest {
            user: UserId(1),
            new_route: RouteId(0),
            gain: 0.1,
            tau: 0.4,
            affected_tasks: vec![TaskId(3)],
        };
        assert!(!solo.conflicts_with(&r0));
    }
}
