//! # vcs-algorithms — the evaluated allocation algorithms
//!
//! Implements every algorithm of the paper's §5.2 comparison:
//!
//! | Algorithm | Kind | Module |
//! |---|---|---|
//! | DGRN | best response + SUU (random single requester) | [`dynamics`] |
//! | MUUN | best response + PUU (Algorithm 3, parallel batch) | [`dynamics`], [`scheduler`] |
//! | BRUN | random better response + SUU | [`dynamics`] |
//! | BUAU | max-potential-increase single update | [`dynamics`] |
//! | BATS | round-robin asynchronous best response | [`dynamics`] |
//! | CORN | centralized optimum via exact branch-and-bound | [`corn`] |
//! | RRN  | uniformly random routes | [`rrn`] |
//!
//! Beyond the paper, [`anneal`] provides a centralized simulated-annealing
//! heuristic usable at scales where exact CORN is infeasible.
//!
//! All distributed variants share the synchronous Alg. 1 + Alg. 2 driver in
//! [`dynamics::run_distributed`] and terminate at a Nash equilibrium; their
//! run records ([`outcome::RunOutcome`]) carry everything the experiment
//! harness plots (slot counts, potential/profit trajectories, `ΔP_min`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytics;
pub mod anneal;
pub mod corn;
pub mod dynamics;
pub mod outcome;
pub mod request;
pub mod rrn;
pub mod scheduler;

pub use analytics::{profit_volatility, summarize, ConvergenceSummary};
pub use anneal::{run_anneal, AnnealConfig, AnnealOutcome};
pub use corn::{run_corn, run_exhaustive, CornOutcome};
pub use dynamics::{
    run_distributed, run_distributed_from, run_distributed_from_naive,
    run_distributed_from_observed, run_distributed_naive, run_distributed_observed,
    DistributedAlgorithm, RunConfig,
};
pub use outcome::{RunOutcome, SlotTrace};
pub use request::UpdateRequest;
pub use rrn::run_rrn;
pub use scheduler::{buau, optimal_selection, puu, suu, theorem3_bound};
