//! RRN: Random Route Navigation — every user picks a uniformly random route
//! from its recommended set (§5.2 baseline).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_core::ids::RouteId;
use vcs_core::{Game, Profile};

/// Runs RRN with the given seed and returns the resulting profile.
pub fn run_rrn(game: &Game, seed: u64) -> Profile {
    let mut rng = StdRng::seed_from_u64(seed);
    let choices = game
        .users()
        .iter()
        .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
        .collect();
    Profile::new(game, choices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;

    #[test]
    fn rrn_is_valid_and_deterministic() {
        let game = fig1_instance();
        let a = run_rrn(&game, 4);
        let b = run_rrn(&game, 4);
        assert_eq!(a, b);
        assert!(game.validate_profile(a.choices()).is_ok());
    }

    #[test]
    fn different_seeds_eventually_differ() {
        let game = fig1_instance();
        let base = run_rrn(&game, 0);
        let differs = (1..20u64).any(|s| run_rrn(&game, s) != base);
        assert!(differs, "20 seeds all produced the identical profile");
    }
}
