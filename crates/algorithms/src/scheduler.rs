//! Platform-side user-update schedulers: SUU and PUU (Algorithm 3).

use crate::request::{tasks_intersect, UpdateRequest};
use rand::rngs::StdRng;
use rand::RngExt;
use vcs_core::ids::{TaskId, UserId};

/// Single User Update: grants the opportunity to one uniformly random
/// requester per decision slot.
pub fn suu(requests: &[UpdateRequest], rng: &mut StdRng) -> Vec<usize> {
    if requests.is_empty() {
        Vec::new()
    } else {
        vec![rng.random_range(0..requests.len())]
    }
}

/// Best User of All Users: grants the single requester with the largest
/// potential increase `τ_i` (the BUAU baseline of §5.2).
pub fn buau(requests: &[UpdateRequest]) -> Vec<usize> {
    requests
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.tau.total_cmp(&b.1.tau))
        .map(|(i, _)| vec![i])
        .unwrap_or_default()
}

/// Borrowed view of one request: everything the PUU conflict-graph greedy
/// needs, with the affected-task set `B_i` referenced rather than owned.
/// Lets the engine driver reuse cached per-user buffers across slots instead
/// of materializing full [`UpdateRequest`]s every slot.
#[derive(Debug, Clone, Copy)]
pub struct RequestView<'a> {
    /// The requesting user.
    pub user: UserId,
    /// `τ_i = gain / α_i`.
    pub tau: f64,
    /// `B_i`, sorted (see [`UpdateRequest::affected_tasks`]).
    pub affected: &'a [TaskId],
}

/// Parallel User Update (Algorithm 3): sorts requesters by
/// `δ_i = τ_i / |B_i|` non-ascending and greedily admits every requester
/// whose affected task set `B_i` is disjoint from all already admitted ones.
/// Requests with empty `B_i` (pure cost moves) never conflict and sort first.
///
/// Returns indices into `requests` of the admitted set `µ`.
pub fn puu(requests: &[UpdateRequest]) -> Vec<usize> {
    let views: Vec<RequestView<'_>> = requests
        .iter()
        .map(|r| RequestView {
            user: r.user,
            tau: r.tau,
            affected: &r.affected_tasks,
        })
        .collect();
    puu_views(&views)
}

/// Allocation-free core of [`puu`], operating on borrowed request views.
/// Identical ordering (δ non-ascending, ties broken by lower user id) and
/// identical admitted sets to the owned variant.
pub fn puu_views(requests: &[RequestView<'_>]) -> Vec<usize> {
    let delta = |r: &RequestView<'_>| {
        if r.affected.is_empty() {
            f64::INFINITY
        } else {
            r.tau / r.affected.len() as f64
        }
    };
    let mut order: Vec<usize> = (0..requests.len()).collect();
    order.sort_by(|&a, &b| {
        delta(&requests[b])
            .total_cmp(&delta(&requests[a]))
            // Deterministic tie-break on user id.
            .then_with(|| requests[a].user.cmp(&requests[b].user))
    });
    let mut admitted: Vec<usize> = Vec::new();
    for idx in order {
        let candidate = &requests[idx];
        if admitted
            .iter()
            .all(|&a| !tasks_intersect(requests[a].affected, candidate.affected))
        {
            admitted.push(idx);
        }
    }
    admitted
}

/// Brute-force optimal conflict-free selection maximizing `Σ τ_i`
/// (exponential; only for testing Theorem 3's guarantee on small inputs).
pub fn optimal_selection(requests: &[UpdateRequest]) -> (Vec<usize>, f64) {
    let n = requests.len();
    assert!(n <= 20, "brute force limited to 20 requests");
    let mut best: (Vec<usize>, f64) = (Vec::new(), 0.0);
    for mask in 0u32..(1 << n) {
        let chosen: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let mut ok = true;
        'outer: for (ai, &a) in chosen.iter().enumerate() {
            for &b in &chosen[ai + 1..] {
                if requests[a].conflicts_with(&requests[b]) {
                    ok = false;
                    break 'outer;
                }
            }
        }
        if !ok {
            continue;
        }
        let tau: f64 = chosen.iter().map(|&i| requests[i].tau).sum();
        if tau > best.1 {
            best = (chosen, tau);
        }
    }
    best
}

/// The Theorem 3 lower bound `|B_{i'}| / (|µ̂| · B_max)` on `τ/τ̂`, where `i'`
/// is the admitted requester with the largest `δ_i`, `µ̂` the optimal
/// selection and `B_max` its largest affected-task set. Returns `None` when
/// the bound degenerates (empty selections or zero-size sets).
pub fn theorem3_bound(
    requests: &[UpdateRequest],
    admitted: &[usize],
    optimal: &[usize],
) -> Option<f64> {
    let i_prime = admitted.iter().copied().max_by(|&a, &b| {
        let d = |i: usize| {
            let r = &requests[i];
            if r.affected_tasks.is_empty() {
                f64::INFINITY
            } else {
                r.tau / r.affected_tasks.len() as f64
            }
        };
        d(a).total_cmp(&d(b))
    })?;
    let b_iprime = requests[i_prime].affected_tasks.len();
    let b_max = optimal
        .iter()
        .map(|&i| requests[i].affected_tasks.len())
        .max()?;
    if optimal.is_empty() || b_max == 0 {
        return None;
    }
    Some(b_iprime as f64 / (optimal.len() as f64 * b_max as f64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vcs_core::ids::{RouteId, TaskId, UserId};

    fn req(user: u32, tau: f64, tasks: &[u32]) -> UpdateRequest {
        UpdateRequest {
            user: UserId(user),
            new_route: RouteId(0),
            gain: tau * 0.5,
            tau,
            affected_tasks: tasks.iter().map(|&t| TaskId(t)).collect(),
        }
    }

    #[test]
    fn suu_selects_exactly_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let requests = vec![req(0, 1.0, &[0]), req(1, 2.0, &[1]), req(2, 3.0, &[2])];
        let sel = suu(&requests, &mut rng);
        assert_eq!(sel.len(), 1);
        assert!(sel[0] < 3);
        assert!(suu(&[], &mut rng).is_empty());
    }

    #[test]
    fn buau_selects_max_tau() {
        let requests = vec![req(0, 1.0, &[0]), req(1, 5.0, &[1]), req(2, 3.0, &[2])];
        assert_eq!(buau(&requests), vec![1]);
        assert!(buau(&[]).is_empty());
    }

    #[test]
    fn puu_admits_disjoint_requests() {
        let requests = vec![
            req(0, 6.0, &[0, 1]), // δ = 3
            req(1, 5.0, &[1]),    // δ = 5, conflicts with 0
            req(2, 2.0, &[2]),    // δ = 2, disjoint
        ];
        let sel = puu(&requests);
        // Order by δ: user1 (5), user0 (3, conflicts with 1), user2 (2).
        assert_eq!(sel, vec![1, 2]);
    }

    #[test]
    fn puu_empty_b_always_admitted() {
        let requests = vec![req(0, 0.1, &[]), req(1, 9.0, &[0]), req(2, 8.0, &[0])];
        let sel = puu(&requests);
        // Empty-B first (δ = ∞), then the better of the two conflicting ones.
        assert!(sel.contains(&0));
        assert_eq!(sel.len(), 2);
        assert!(sel.contains(&1));
    }

    #[test]
    fn puu_deterministic_tie_break() {
        let requests = vec![req(3, 2.0, &[0]), req(1, 2.0, &[1])];
        // Equal δ: lower user id first.
        assert_eq!(puu(&requests), vec![1, 0]);
    }

    #[test]
    fn optimal_selection_brute_force() {
        let requests = vec![req(0, 6.0, &[0, 1]), req(1, 5.0, &[1]), req(2, 2.0, &[2])];
        let (sel, tau) = optimal_selection(&requests);
        // Optimal: {0, 2} with τ = 8 (beats {1, 2} = 7).
        assert_eq!(sel, vec![0, 2]);
        assert!((tau - 8.0).abs() < 1e-12);
    }

    #[test]
    fn theorem3_guarantee_holds() {
        // A case where greedy PUU is suboptimal: check τ/τ̂ ≥ bound.
        let requests = vec![
            req(0, 6.0, &[0, 1]),
            req(1, 5.0, &[1]),
            req(2, 2.0, &[2]),
            req(3, 1.5, &[0, 3]),
        ];
        let admitted = puu(&requests);
        let (optimal, tau_hat) = optimal_selection(&requests);
        let tau: f64 = admitted.iter().map(|&i| requests[i].tau).sum();
        let bound = theorem3_bound(&requests, &admitted, &optimal).unwrap();
        assert!(
            tau / tau_hat >= bound - 1e-12,
            "τ/τ̂ = {} < bound {bound}",
            tau / tau_hat
        );
    }

    #[test]
    fn puu_admitted_set_is_conflict_free() {
        let requests = vec![
            req(0, 4.0, &[0, 1, 2]),
            req(1, 3.0, &[2, 3]),
            req(2, 2.5, &[4]),
            req(3, 2.0, &[1, 4]),
            req(4, 1.0, &[5]),
        ];
        let sel = puu(&requests);
        for (i, &a) in sel.iter().enumerate() {
            for &b in &sel[i + 1..] {
                assert!(!requests[a].conflicts_with(&requests[b]));
            }
        }
    }
}
