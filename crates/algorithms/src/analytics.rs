//! Convergence analytics: post-hoc summaries of a dynamics run.
//!
//! Turns a [`RunOutcome`]'s raw traces into the quantities the evaluation
//! plots and the theory references: potential gain per slot, time-to-fraction
//! of final potential, and update concentration across users.

use crate::outcome::RunOutcome;
use serde::{Deserialize, Serialize};

/// Summary statistics of one convergence trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceSummary {
    /// Decision slots to termination.
    pub slots: usize,
    /// Total individual updates.
    pub updates: usize,
    /// Potential at the initial profile.
    pub initial_potential: f64,
    /// Potential at termination.
    pub final_potential: f64,
    /// Total potential gain.
    pub potential_gain: f64,
    /// Mean potential gain per slot (`0` when no slot elapsed).
    pub mean_gain_per_slot: f64,
    /// Largest single-slot potential gain.
    pub max_slot_gain: f64,
    /// Slots needed to realize 90% of the total potential gain.
    pub slots_to_90_percent: usize,
}

/// Summarizes a run's convergence trajectory.
///
/// # Panics
///
/// Panics if the outcome has an empty slot trace (every run records at least
/// the initial state).
pub fn summarize(outcome: &RunOutcome) -> ConvergenceSummary {
    let trace = &outcome.slot_trace;
    assert!(
        !trace.is_empty(),
        "slot trace always holds the initial state"
    );
    let initial = trace[0].potential;
    let final_potential = trace[trace.len() - 1].potential;
    let gain = final_potential - initial;
    let mut max_slot_gain = 0.0f64;
    for w in trace.windows(2) {
        max_slot_gain = max_slot_gain.max(w[1].potential - w[0].potential);
    }
    let threshold = initial + 0.9 * gain;
    let slots_to_90 = trace
        .iter()
        .position(|s| s.potential >= threshold - 1e-12)
        .unwrap_or(trace.len() - 1);
    ConvergenceSummary {
        slots: outcome.slots,
        updates: outcome.updates,
        initial_potential: initial,
        final_potential,
        potential_gain: gain,
        mean_gain_per_slot: if outcome.slots == 0 {
            0.0
        } else {
            gain / outcome.slots as f64
        },
        max_slot_gain,
        slots_to_90_percent: slots_to_90,
    }
}

/// Per-user update counts reconstructed from a recorded profit trace: a user
/// is counted as updated in a slot when its profit trajectory changes due to
/// its own move. Requires `record_user_profits`; returns `None` otherwise.
///
/// Note this is an *upper-bound attribution*: a user's profit also moves when
/// co-participants join/leave its tasks, so the counts are only meaningful
/// relative to each other (concentration), not as exact move counts.
pub fn profit_volatility(outcome: &RunOutcome) -> Option<Vec<f64>> {
    let trace = outcome.user_profit_trace.as_ref()?;
    let users = trace.first()?.len();
    let mut volatility = vec![0.0f64; users];
    for w in trace.windows(2) {
        for (v, (before, after)) in volatility.iter_mut().zip(w[0].iter().zip(w[1].iter())) {
            *v += (after - before).abs();
        }
    }
    Some(volatility)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics::{run_distributed, DistributedAlgorithm, RunConfig};
    use vcs_core::examples::fig1_instance;

    #[test]
    fn summary_is_consistent() {
        let game = fig1_instance();
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(4));
        let s = summarize(&out);
        assert_eq!(s.slots, out.slots);
        assert!(s.potential_gain >= -1e-9);
        assert!(s.final_potential >= s.initial_potential - 1e-9);
        assert!(s.slots_to_90_percent <= s.slots);
        assert!(s.max_slot_gain >= 0.0);
        if s.slots > 0 {
            assert!((s.mean_gain_per_slot - s.potential_gain / s.slots as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn volatility_requires_recording() {
        let game = fig1_instance();
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(4));
        assert!(profit_volatility(&out).is_none());
        let mut cfg = RunConfig::with_seed(4);
        cfg.record_user_profits = true;
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &cfg);
        let vol = profit_volatility(&out).unwrap();
        assert_eq!(vol.len(), game.user_count());
        assert!(vol.iter().all(|&v| v >= 0.0));
        // Somebody's profit moved during convergence (unless the random init
        // was already the equilibrium, which seed 4 is not).
        assert!(vol.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn ninety_percent_no_later_than_full_convergence() {
        let game = fig1_instance();
        for seed in 0..8u64 {
            let out = run_distributed(
                &game,
                DistributedAlgorithm::Muun,
                &RunConfig::with_seed(seed),
            );
            let s = summarize(&out);
            assert!(s.slots_to_90_percent <= s.slots);
        }
    }
}
