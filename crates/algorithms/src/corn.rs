//! CORN: Centralized Optimal Route Navigation.
//!
//! Exact maximization of the total profit `Σ_i P_i(s)` (Eq. 5) by
//! branch-and-bound over user assignments. The problem is NP-hard
//! (Theorem 1); like the paper, we only run CORN at small scales (≤ ~14
//! users, ≤ 5 routes each).
//!
//! **Admissible bound.** For the paper's parameter range (`a_k ≥ 10`,
//! `μ_k ≤ 1`) the per-participant share `w_k(x)/x` is strictly decreasing in
//! `x`, so (a) an unassigned user's profit is at most its best route profit
//! assuming it is alone on every task, and (b) an assigned user's reward
//! computed with the *current* partial counts only shrinks as later users
//! join. Summing both gives an upper bound on any completion of a partial
//! assignment.

use serde::{Deserialize, Serialize};
use vcs_core::ids::RouteId;
use vcs_core::{Game, Profile, ShareTables};

/// Outcome of a CORN run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CornOutcome {
    /// The profit-maximizing profile.
    pub profile: Profile,
    /// Its total profit.
    pub total_profit: f64,
    /// Number of search nodes explored (diagnostic).
    pub nodes: u64,
}

/// Per-user optimistic profit: best route value assuming solo participation
/// (the solo reward `w_k(1)` equals the solo share in the tables).
fn solo_bounds(game: &Game, tables: &ShareTables) -> Vec<f64> {
    game.users()
        .iter()
        .map(|u| {
            u.routes
                .iter()
                .map(|r| {
                    let reward: f64 = r.tasks.iter().map(|&t| tables.share(t, 1)).sum();
                    u.prefs.alpha * reward - game.user_route_cost(u.id, r)
                })
                .fold(f64::NEG_INFINITY, f64::max)
        })
        .collect()
}

/// Exact branch-and-bound solver for Eq. 5.
///
/// # Panics
///
/// Panics when the instance is too large for exact search
/// (`|U| > 20`), mirroring the paper's use of CORN at small scales only.
pub fn run_corn(game: &Game) -> CornOutcome {
    let m = game.user_count();
    assert!(
        m <= 20,
        "CORN is exact search; use it at paper scale (≤ 20 users)"
    );
    // All share evaluations in the search — bounds, node values, branch
    // ordering — hit the precomputed tables instead of recomputing
    // `a_k + μ_k·ln x` per lookup.
    let tables = ShareTables::new(game);
    let solo = solo_bounds(game, &tables);
    // Suffix sums of solo bounds for O(1) "remaining users" bounds.
    let mut suffix = vec![0.0; m + 1];
    for i in (0..m).rev() {
        suffix[i] = suffix[i + 1] + solo[i];
    }
    let mut best_profit = f64::NEG_INFINITY;
    let mut best_choices: Vec<RouteId> = vec![RouteId(0); m];
    // Users ≥ depth are unassigned, so participant counts are maintained
    // manually over the assigned prefix only.
    let mut counts = vec![0u32; game.task_count()];
    let mut choices: Vec<RouteId> = vec![RouteId(0); m];
    let mut nodes = 0u64;

    // Assigned-users optimistic profit under current counts.
    fn assigned_value(
        game: &Game,
        tables: &ShareTables,
        choices: &[RouteId],
        counts: &[u32],
        depth: usize,
    ) -> f64 {
        let mut total = 0.0;
        for (user, &choice) in game.users().iter().zip(choices).take(depth) {
            let route = &user.routes[choice.index()];
            let reward: f64 = route
                .tasks
                .iter()
                .map(|&t| tables.share(t, counts[t.index()]))
                .sum();
            total += user.prefs.alpha * reward - game.user_route_cost(user.id, route);
        }
        total
    }

    /// Tight optimistic value of one unassigned user given current counts:
    /// its best route assuming it joins each covered task *next* (eventual
    /// shares can only be lower because counts only grow).
    fn unassigned_bound(game: &Game, tables: &ShareTables, user_idx: usize, counts: &[u32]) -> f64 {
        let user = &game.users()[user_idx];
        user.routes
            .iter()
            .map(|r| {
                let reward: f64 = r
                    .tasks
                    .iter()
                    .map(|&t| tables.share(t, counts[t.index()] + 1))
                    .sum();
                user.prefs.alpha * reward - game.user_route_cost(user.id, r)
            })
            .fold(f64::NEG_INFINITY, f64::max)
    }

    #[allow(clippy::too_many_arguments)] // recursion state, not an API
    fn dfs(
        game: &Game,
        tables: &ShareTables,
        depth: usize,
        choices: &mut Vec<RouteId>,
        counts: &mut Vec<u32>,
        suffix: &[f64],
        best_profit: &mut f64,
        best_choices: &mut Vec<RouteId>,
        nodes: &mut u64,
    ) {
        *nodes += 1;
        let m = game.user_count();
        if depth == m {
            let value = assigned_value(game, tables, choices, counts, m);
            if value > *best_profit {
                *best_profit = value;
                best_choices.clone_from(choices);
            }
            return;
        }
        // Cheap static bound first (solo shares, precomputed suffix sums).
        let assigned = assigned_value(game, tables, choices, counts, depth);
        if assigned + suffix[depth] <= *best_profit + 1e-12 {
            return;
        }
        // Tight bound: unassigned users join at current counts + 1; eventual
        // shares only shrink as more users pile on, so this stays admissible.
        let mut bound = assigned;
        for j in depth..m {
            bound += unassigned_bound(game, tables, j, counts);
        }
        if bound <= *best_profit + 1e-12 {
            return;
        }
        let n_routes = game.users()[depth].routes.len();
        // Explore routes in descending myopic value to find good incumbents
        // early.
        let mut order: Vec<usize> = (0..n_routes).collect();
        let myopic = |r: usize| {
            let user = &game.users()[depth];
            let route = &user.routes[r];
            let reward: f64 = route
                .tasks
                .iter()
                .map(|&t| tables.share(t, counts[t.index()] + 1))
                .sum();
            user.prefs.alpha * reward - game.user_route_cost(user.id, route)
        };
        order.sort_by(|&a, &b| myopic(b).total_cmp(&myopic(a)));
        for r in order {
            choices[depth] = RouteId::from_index(r);
            for &t in &game.users()[depth].routes[r].tasks {
                counts[t.index()] += 1;
            }
            dfs(
                game,
                tables,
                depth + 1,
                choices,
                counts,
                suffix,
                best_profit,
                best_choices,
                nodes,
            );
            for &t in &game.users()[depth].routes[r].tasks {
                counts[t.index()] -= 1;
            }
        }
        choices[depth] = RouteId(0);
    }

    dfs(
        game,
        &tables,
        0,
        &mut choices,
        &mut counts,
        &suffix,
        &mut best_profit,
        &mut best_choices,
        &mut nodes,
    );
    let profile = Profile::new(game, best_choices);
    let total_profit = profile.total_profit(game);
    debug_assert!((total_profit - best_profit).abs() < 1e-6);
    CornOutcome {
        profile,
        total_profit,
        nodes,
    }
}

/// Exhaustive reference solver (no pruning) for cross-checking CORN on tiny
/// instances. Panics above 10 users.
pub fn run_exhaustive(game: &Game) -> CornOutcome {
    let m = game.user_count();
    assert!(m <= 10, "exhaustive reference limited to 10 users");
    let sizes: Vec<usize> = game.users().iter().map(|u| u.routes.len()).collect();
    let mut choices = vec![RouteId(0); m];
    let mut best: Option<(f64, Vec<RouteId>)> = None;
    let mut nodes = 0u64;
    loop {
        nodes += 1;
        let p = Profile::new(game, choices.clone());
        let total = p.total_profit(game);
        if best.as_ref().is_none_or(|(b, _)| total > *b) {
            best = Some((total, choices.clone()));
        }
        // Odometer increment.
        let mut pos = 0;
        loop {
            if pos == m {
                let (total_profit, best_choices) = best.unwrap();
                return CornOutcome {
                    profile: Profile::new(game, best_choices),
                    total_profit,
                    nodes,
                };
            }
            let next = choices[pos].index() + 1;
            if next < sizes[pos] {
                choices[pos] = RouteId::from_index(next);
                break;
            }
            choices[pos] = RouteId(0);
            pos += 1;
        }
    }
}

/// Convenience: worst-case check that CORN's profit weakly dominates a given
/// profile's (it must, being exact).
pub fn dominates(game: &Game, corn: &CornOutcome, other: &Profile) -> bool {
    corn.total_profit >= other.total_profit(game) - 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use vcs_core::examples::{fig1_instance, fig1_profiles};
    use vcs_core::ids::{TaskId, UserId};
    use vcs_core::{PlatformParams, Route, Task, User, UserPrefs};

    fn random_game(seed: u64, users: u32, tasks: u32) -> Game {
        let mut rng = StdRng::seed_from_u64(seed);
        let task_list: Vec<Task> = (0..tasks)
            .map(|k| {
                Task::new(
                    TaskId(k),
                    rng.random_range(10.0..20.0),
                    rng.random_range(0.0..1.0),
                )
            })
            .collect();
        let user_list: Vec<User> = (0..users)
            .map(|i| {
                let n_routes = rng.random_range(1..=4);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..4))
                            .map(|_| TaskId(rng.random_range(0..tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId(r),
                            covered,
                            rng.random_range(0.0..4.0),
                            rng.random_range(0.0..3.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        Game::with_paper_bounds(task_list, user_list, PlatformParams::new(0.4, 0.4)).unwrap()
    }

    #[test]
    fn corn_matches_exhaustive_on_random_instances() {
        for seed in 0..8u64 {
            let game = random_game(seed, 6, 8);
            let corn = run_corn(&game);
            let brute = run_exhaustive(&game);
            assert!(
                (corn.total_profit - brute.total_profit).abs() < 1e-9,
                "seed {seed}: corn {} vs brute {}",
                corn.total_profit,
                brute.total_profit
            );
            assert!(corn.nodes <= brute.nodes * 4, "pruned search exploded");
        }
    }

    #[test]
    fn corn_finds_fig1_optimum() {
        let game = fig1_instance();
        let corn = run_corn(&game);
        let expected = Profile::new(&game, fig1_profiles::CENTRALIZED_OPTIMAL.to_vec());
        assert!((corn.total_profit - expected.total_profit(&game)).abs() < 1e-9);
        // Unscaled optimum is $12.
        assert!((corn.total_profit / 0.5 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn corn_dominates_equilibria() {
        use crate::dynamics::{run_distributed, DistributedAlgorithm, RunConfig};
        for seed in 0..4u64 {
            let game = random_game(seed + 100, 8, 10);
            let corn = run_corn(&game);
            let eq = run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(seed),
            );
            assert!(dominates(&game, &corn, &eq.profile));
        }
    }

    #[test]
    fn corn_handles_single_user() {
        let game = random_game(5, 1, 4);
        let corn = run_corn(&game);
        let brute = run_exhaustive(&game);
        assert!((corn.total_profit - brute.total_profit).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "paper scale")]
    fn corn_rejects_large_instances() {
        let game = random_game(1, 21, 5);
        let _ = run_corn(&game);
    }
}
