//! Simulated-annealing total-profit maximization: a centralized *heuristic*
//! baseline for scales where the exact branch-and-bound ([`crate::corn`]) is
//! infeasible (the problem is NP-hard, Theorem 1).
//!
//! Standard single-move annealing over strategy profiles: propose one user's
//! route change, accept improvements always and deteriorations with
//! probability `exp(Δ/T)` under a geometric cooling schedule. Restarting from
//! the best-response equilibrium would bias the comparison, so the walk
//! starts from a random profile like the distributed dynamics do.
//!
//! Each proposal is evaluated through the incremental [`Engine`]: applying
//! (and, on rejection, reverting) a move costs `O(|L_old| + |L_new|)` and the
//! running total profit is read in O(1), instead of the former
//! `O(M · route length)` full `Σ_i P_i` recomputation per proposal. The
//! reported optimum is recomputed from scratch on the best profile found, so
//! compensated-sum drift never leaks into the outcome.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, UserId};
use vcs_core::{Engine, Game, Profile};

/// Annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnnealConfig {
    /// RNG seed.
    pub seed: u64,
    /// Proposals to evaluate.
    pub iterations: usize,
    /// Initial temperature (profit units).
    pub t0: f64,
    /// Geometric cooling factor per iteration, in `(0, 1)`.
    pub cooling: f64,
}

impl AnnealConfig {
    /// A schedule that works well at the paper's scenario scales.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            iterations: 20_000,
            t0: 5.0,
            cooling: 0.9995,
        }
    }
}

/// Outcome of an annealing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnnealOutcome {
    /// The best profile seen.
    pub profile: Profile,
    /// Its total profit.
    pub total_profit: f64,
    /// Number of accepted moves.
    pub accepted: usize,
}

/// Runs simulated annealing on the total-profit objective (Eq. 5).
pub fn run_anneal(game: &Game, config: &AnnealConfig) -> AnnealOutcome {
    assert!(
        config.cooling > 0.0 && config.cooling < 1.0,
        "cooling must lie in (0, 1)"
    );
    let m = game.user_count();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let choices = game
        .users()
        .iter()
        .map(|u| RouteId::from_index(rng.random_range(0..u.routes.len())))
        .collect();
    let mut engine = Engine::new(game, Profile::new(game, choices));
    let mut current_value = engine.total_profit();
    let mut best = engine.profile().clone();
    let mut best_value = current_value;
    let mut temperature = config.t0;
    let mut accepted = 0usize;
    for _ in 0..config.iterations {
        let user = UserId::from_index(rng.random_range(0..m));
        let n_routes = game.users()[user.index()].routes.len();
        if n_routes < 2 {
            temperature *= config.cooling;
            continue;
        }
        let proposal = RouteId::from_index(rng.random_range(0..n_routes));
        let old_route = engine.profile().choice(user);
        if proposal == old_route {
            temperature *= config.cooling;
            continue;
        }
        engine.apply_move(user, proposal);
        let value = engine.total_profit();
        let delta = value - current_value;
        let accept = delta >= 0.0 || {
            let u: f64 = rng.random_range(0.0..1.0);
            u < (delta / temperature.max(1e-12)).exp()
        };
        if accept {
            current_value = value;
            accepted += 1;
            if value > best_value {
                best_value = value;
                best = engine.profile().clone();
            }
        } else {
            engine.apply_move(user, old_route); // revert
        }
        temperature *= config.cooling;
    }
    // Report the exact objective of the best profile, not the running
    // compensated sum it was selected by.
    let total_profit = best.total_profit(game);
    AnnealOutcome {
        profile: best,
        total_profit,
        accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corn::run_corn;
    use crate::dynamics::{run_distributed, DistributedAlgorithm, RunConfig};
    use crate::rrn::run_rrn;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use vcs_core::ids::TaskId;
    use vcs_core::{PlatformParams, Route, Task, User, UserPrefs};

    fn random_game(seed: u64, users: u32, tasks: u32) -> Game {
        let mut rng = StdRng::seed_from_u64(seed);
        let task_list: Vec<Task> = (0..tasks)
            .map(|k| {
                Task::new(
                    TaskId(k),
                    rng.random_range(10.0..20.0),
                    rng.random_range(0.0..1.0),
                )
            })
            .collect();
        let user_list: Vec<User> = (0..users)
            .map(|i| {
                let n_routes = rng.random_range(2..=4);
                let routes = (0..n_routes)
                    .map(|r| {
                        let mut covered: Vec<TaskId> = (0..rng.random_range(0..4))
                            .map(|_| TaskId(rng.random_range(0..tasks)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId(r),
                            covered,
                            rng.random_range(0.0..4.0),
                            rng.random_range(0.0..3.0),
                        )
                    })
                    .collect();
                User::new(
                    UserId(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        Game::with_paper_bounds(task_list, user_list, PlatformParams::new(0.4, 0.4)).unwrap()
    }

    #[test]
    fn anneal_close_to_exact_on_small_instances() {
        for seed in 0..4u64 {
            let game = random_game(seed, 8, 10);
            let exact = run_corn(&game).total_profit;
            let anneal = run_anneal(&game, &AnnealConfig::with_seed(seed)).total_profit;
            assert!(anneal <= exact + 1e-9, "anneal above the optimum?");
            assert!(
                anneal >= 0.95 * exact,
                "seed {seed}: anneal {anneal} far below optimum {exact}"
            );
        }
    }

    #[test]
    fn anneal_beats_random_profiles() {
        let game = random_game(11, 25, 20);
        let anneal = run_anneal(&game, &AnnealConfig::with_seed(1)).total_profit;
        for seed in 0..5u64 {
            let random = run_rrn(&game, seed).total_profit(&game);
            assert!(anneal >= random - 1e-9);
        }
    }

    #[test]
    fn anneal_weakly_dominates_equilibrium_on_average() {
        // Not guaranteed per-instance, but over a few seeds the centralized
        // heuristic should at least match the equilibrium total.
        let mut anneal_sum = 0.0;
        let mut eq_sum = 0.0;
        for seed in 0..5u64 {
            let game = random_game(seed + 50, 20, 15);
            anneal_sum += run_anneal(&game, &AnnealConfig::with_seed(seed)).total_profit;
            eq_sum += run_distributed(
                &game,
                DistributedAlgorithm::Dgrn,
                &RunConfig::with_seed(seed),
            )
            .profile
            .total_profit(&game);
        }
        assert!(
            anneal_sum >= eq_sum * 0.98,
            "anneal {anneal_sum} vs equilibrium {eq_sum}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let game = random_game(3, 12, 10);
        let cfg = AnnealConfig::with_seed(7);
        assert_eq!(run_anneal(&game, &cfg), run_anneal(&game, &cfg));
    }

    #[test]
    #[should_panic(expected = "cooling must lie in (0, 1)")]
    fn invalid_cooling_rejected() {
        let game = random_game(1, 3, 3);
        let mut cfg = AnnealConfig::with_seed(0);
        cfg.cooling = 1.5;
        let _ = run_anneal(&game, &cfg);
    }
}
