//! The distributed route-navigation dynamics (Alg. 1 + Alg. 2) and the four
//! distributed baselines of §5.2.
//!
//! All five distributed variants share one synchronous driver: in each
//! decision slot the platform collects update requests from users that can
//! improve (Alg. 1 lines 10–12), a scheduler grants the opportunity to a
//! subset (Alg. 2 line 8), the granted users switch, and the platform
//! refreshes the participant counts (Alg. 2 line 10). The loop ends when no
//! request arrives — a Nash equilibrium by construction.

use crate::outcome::{RunOutcome, SlotTrace};
use crate::request::UpdateRequest;
use crate::scheduler::{buau, puu, puu_views, suu, RequestView};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::response::{best_route_set, better_routes, BestResponse, ProfitView};
use vcs_core::{potential, Engine, Game, Profile};
use vcs_obs::{elapsed_nanos, Event, Obs, ResponseKind, SpanKind};

/// Below this many drained dirty users a refresh pass stays sequential: an
/// incremental best-response scan is ~100ns, so fanning out to worker
/// threads only pays off for the huge convergence-from-cold passes (first
/// slot at 10⁵ users, epoch re-convergence after bulk churn).
const PAR_REFRESH_MIN: usize = 4096;

/// Per-user cache of PUU affected-task sets `B_i = L_{s_i} ∪ L_{s'}`, keyed
/// by candidate route and implicitly by the user's current route.
///
/// A row stays valid as long as the user's current route is unchanged — and
/// the current route only changes through the user's own move, which marks it
/// dirty — so the engine driver invalidates exactly the rows of drained dirty
/// users and reuses every other buffer across slots. This is what keeps MUUN
/// slots from re-materializing full [`UpdateRequest`]s (union allocation per
/// improving user per slot).
struct AffectedCache {
    rows: Vec<Vec<Option<Box<[TaskId]>>>>,
}

impl AffectedCache {
    fn new(game: &Game) -> Self {
        Self {
            rows: game
                .users()
                .iter()
                .map(|u| vec![None; u.routes.len()])
                .collect(),
        }
    }

    /// Drops every cached set of `user` (its current route may have changed).
    fn invalidate(&mut self, user: UserId) {
        for entry in &mut self.rows[user.index()] {
            *entry = None;
        }
    }

    /// Builds the `B_i` buffer for `user` switching to `candidate` if it is
    /// not already cached (same union-sort-dedup as [`UpdateRequest::build`]).
    fn ensure(&mut self, game: &Game, profile: &Profile, user: UserId, candidate: RouteId) {
        let slot = &mut self.rows[user.index()][candidate.index()];
        if slot.is_none() {
            let u = &game.users()[user.index()];
            let current = &u.routes[profile.choice(user).index()];
            let next = &u.routes[candidate.index()];
            let mut affected: Vec<TaskId> = current
                .tasks
                .iter()
                .chain(next.tasks.iter())
                .copied()
                .collect();
            affected.sort_unstable();
            affected.dedup();
            *slot = Some(affected.into_boxed_slice());
        }
    }

    fn get(&self, user: UserId, candidate: RouteId) -> &[TaskId] {
        self.rows[user.index()][candidate.index()]
            .as_deref()
            .expect("ensured before use")
    }
}

/// The five distributed algorithms evaluated in §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DistributedAlgorithm {
    /// Distributed Game-theoretical Route Navigation: best response + SUU
    /// (random single requester per slot). The paper's main algorithm.
    Dgrn,
    /// Multi-User Update Navigation: best response + PUU (Algorithm 3,
    /// parallel conflict-free batch per slot).
    Muun,
    /// Better Response Update Navigation: a random single requester takes a
    /// uniformly random *better* (not necessarily best) route.
    Brun,
    /// Best Update of All Users: the single requester with the largest
    /// potential increase updates.
    Buau,
    /// Bayesian Asynchronous Task Selection (adapted from Cheung et al.):
    /// users take turns round-robin; every turn consumes a decision slot
    /// even when the user cannot improve.
    Bats,
}

impl DistributedAlgorithm {
    /// All five, in the paper's legend order.
    pub const ALL: [DistributedAlgorithm; 5] = [
        DistributedAlgorithm::Dgrn,
        DistributedAlgorithm::Brun,
        DistributedAlgorithm::Buau,
        DistributedAlgorithm::Bats,
        DistributedAlgorithm::Muun,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            DistributedAlgorithm::Dgrn => "DGRN",
            DistributedAlgorithm::Muun => "MUUN",
            DistributedAlgorithm::Brun => "BRUN",
            DistributedAlgorithm::Buau => "BUAU",
            DistributedAlgorithm::Bats => "BATS",
        }
    }
}

/// Configuration of a dynamics run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// RNG seed (initial routes, SUU draws, tie-breaking).
    pub seed: u64,
    /// Safety cap on decision slots; the dynamics provably terminate, the
    /// cap guards against implementation bugs only.
    pub max_slots: usize,
    /// Record per-user profit trajectories (Fig. 3); costs `O(slots · M)`.
    pub record_user_profits: bool,
}

impl RunConfig {
    /// Default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            max_slots: 1_000_000,
            record_user_profits: false,
        }
    }
}

/// Samples the Alg. 1 line 3 initial profile: each user takes a uniformly
/// random recommended route, drawn in user order from `rng`.
fn random_initial_profile(game: &Game, rng: &mut StdRng) -> Profile {
    let choices = game
        .users()
        .iter()
        .map(|u| vcs_core::ids::RouteId::from_index(rng.random_range(0..u.routes.len())))
        .collect();
    Profile::new(game, choices)
}

/// Runs `algorithm` on `game` and returns the outcome. The initial profile
/// assigns each user a uniformly random recommended route (Alg. 1 line 3).
pub fn run_distributed(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let profile = random_initial_profile(game, &mut rng);
    run_distributed_from(game, algorithm, config, profile, &mut rng)
}

/// [`run_distributed`] with an observability handle: the engine emits
/// per-commit `MoveCommitted` events and the driver adds
/// `ResponseEvaluated` / `RefreshPass` / `SlotCompleted` / `RunCompleted`
/// (the incremental drivers batch scan telemetry into one `RefreshPass`
/// per refresh pass — see `Event::RefreshPass`). With a disabled
/// handle this *is* `run_distributed` (same RNG stream, same trajectory —
/// observation never influences the dynamics).
pub fn run_distributed_observed(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
    obs: &Obs,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let profile = random_initial_profile(game, &mut rng);
    run_distributed_from_observed(game, algorithm, config, profile, &mut rng, obs)
}

/// Reference (naive) counterpart of [`run_distributed`]: same seed, same
/// trajectory, but every slot re-derives responses, `ϕ` and the total profit
/// from scratch instead of using the incremental [`Engine`]. Kept for the
/// equivalence tests and the old-vs-new benchmarks.
pub fn run_distributed_naive(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
) -> RunOutcome {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let profile = random_initial_profile(game, &mut rng);
    run_distributed_from_naive(game, algorithm, config, profile, &mut rng)
}

/// Runs the dynamics from an explicit starting profile (used by tests and by
/// the message-passing runtime for cross-validation).
///
/// This is the incremental-engine driver: per slot it re-evaluates only the
/// users whose best responses the previous slot's moves invalidated
/// ([`Engine::take_dirty`]) and records the slot trace from the engine's
/// O(1) running potential/total-profit. The RNG draw sequence — one `pick`
/// per improving user in user order, then one scheduler draw — is identical
/// to [`run_distributed_from_naive`], so trajectories match the reference
/// bit for bit (slot-trace floats within `1e-9`).
pub fn run_distributed_from(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
    profile: Profile,
    rng: &mut StdRng,
) -> RunOutcome {
    run_distributed_from_observed(game, algorithm, config, profile, rng, &Obs::disabled())
}

/// [`run_distributed_from`] with an observability handle (see
/// [`run_distributed_observed`]).
pub fn run_distributed_from_observed(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
    profile: Profile,
    rng: &mut StdRng,
    obs: &Obs,
) -> RunOutcome {
    let m = game.user_count();
    let mut engine = Engine::new(game, profile);
    engine.set_obs(obs.clone());
    let mut slot_trace = Vec::new();
    let mut user_profit_trace = config.record_user_profits.then(Vec::new);
    let record = |engine: &Engine,
                  updated: usize,
                  slot_trace: &mut Vec<SlotTrace>,
                  user_trace: &mut Option<Vec<Vec<f64>>>| {
        slot_trace.push(SlotTrace {
            potential: engine.potential(),
            total_profit: engine.total_profit(),
            updated_users: updated,
        });
        if let Some(trace) = user_trace {
            trace.push(
                (0..m)
                    .map(|i| engine.profit(UserId::from_index(i)))
                    .collect(),
            );
        }
    };
    record(&engine, 0, &mut slot_trace, &mut user_profit_trace);

    let mut slots = 0usize;
    let mut updates = 0usize;
    let mut min_improvement = f64::INFINITY;
    let mut converged = false;

    match algorithm {
        DistributedAlgorithm::Bats => {
            // Round-robin turns; only the cursor user's response is needed,
            // and it is recomputed only when a move since its last evaluation
            // dirtied it.
            let mut cache: Vec<Option<BestResponse>> = vec![None; m];
            let mut quiet = 0usize;
            let mut cursor = 0usize;
            engine.take_dirty(); // initial: everything is uncached anyway
            while quiet < m && slots < config.max_slots {
                // Every BATS turn is a decision slot, so the span is
                // unconditional.
                let slot_span = obs.span(SpanKind::Slot);
                let user = UserId::from_index(cursor);
                cursor = (cursor + 1) % m;
                slots += 1;
                if cache[user.index()].is_none() {
                    let response = obs.time(SpanKind::BestResponse, || engine.best_route_set(user));
                    obs.emit(|| Event::ResponseEvaluated {
                        user: user.index() as u32,
                        kind: ResponseKind::Best,
                        improving: !response.best_routes.is_empty(),
                    });
                    cache[user.index()] = Some(response);
                }
                let response = cache[user.index()].as_ref().expect("just cached");
                let choice = pick(&response.best_routes, rng).copied();
                let gain = response.gain;
                let updated = if let Some(route) = choice {
                    engine.apply_move(user, route);
                    for dirtied in engine.take_dirty() {
                        cache[dirtied.index()] = None;
                    }
                    updates += 1;
                    min_improvement = min_improvement.min(gain);
                    quiet = 0;
                    1
                } else {
                    quiet += 1;
                    0
                };
                record(&engine, updated, &mut slot_trace, &mut user_profit_trace);
                slot_span.finish();
                obs.emit(|| Event::SlotCompleted {
                    slot: slots as u64,
                    updated: updated as u32,
                    phi: engine.potential(),
                    total_profit: engine.total_profit(),
                });
            }
            converged = quiet >= m;
        }
        _ => {
            let brun = algorithm == DistributedAlgorithm::Brun;
            // Cached responses, invalidated via the engine's dirty set. The
            // placeholders are overwritten before first use: every user
            // starts dirty.
            let mut best_cache: Vec<BestResponse> = Vec::new();
            let mut better_cache: Vec<Vec<(vcs_core::ids::RouteId, f64)>> = Vec::new();
            if brun {
                better_cache = vec![Vec::new(); m];
            } else {
                best_cache = (0..m)
                    .map(|_| BestResponse {
                        best_routes: Vec::new(),
                        gain: 0.0,
                        best_profit: 0.0,
                    })
                    .collect();
            }
            // A would-be update request, before the full `UpdateRequest`
            // (with its allocated affected-task set) is materialized. SUU
            // only consumes the request *count* and BUAU only `τ = gain/α`,
            // so for DGRN/BRUN/BUAU no `UpdateRequest` is ever built; PUU's
            // conflict graph (MUUN) reads the affected-task sets from a
            // per-user cache reused across slots.
            struct Pick {
                user: UserId,
                route: RouteId,
                gain: f64,
            }
            let mut picks: Vec<Pick> = Vec::new();
            let mut affected_cache =
                (algorithm == DistributedAlgorithm::Muun).then(|| AffectedCache::new(game));
            // The improving set, maintained as a flag array plus a sorted
            // index list so the request-collection pass iterates only users
            // that can actually improve instead of scanning all `m` caches
            // every slot. Invariant: `improving_flag[i]` ⟺ user `i`'s cached
            // response list is non-empty; since `pick` consumes RNG only for
            // non-empty lists, iterating the improving users in ascending id
            // order draws the exact same RNG stream as the full scan.
            let mut improving_flag: Vec<bool> = vec![false; m];
            let mut improving: Vec<u32> = Vec::new();
            let mut changed: Vec<u32> = Vec::new();
            // MUUN's granted batch, rebuilt per slot and committed through
            // the engine's conflict-free batch path.
            let mut batch: Vec<(UserId, RouteId)> = Vec::new();
            // Drain buffer recycled across slots (see `take_dirty_into`).
            let mut drained: Vec<UserId> = Vec::new();
            while slots < config.max_slots {
                // A pass that finds no request is termination, not a
                // decision slot — nothing is emitted on that path. One clock
                // read serves as the start of both the slot span and the
                // refresh-pass span: at ~7µs per slot every extra monotonic
                // read (~30ns here) is measurable against the <5%
                // instrumented-overhead budget.
                let slot_start = obs.enabled().then(std::time::Instant::now);
                // Alg. 2 line 6: refresh invalidated responses, then collect
                // requests from users able to improve. `pick` re-draws for
                // every improving user each slot — cached or not — so the
                // RNG stream matches the naive driver exactly. One span and
                // one `RefreshPass` event cover the whole pass: a single
                // incremental scan is ~100ns, far below the cost of timing
                // or emitting per scan.
                engine.take_dirty_into(&mut drained);
                let scans = drained.len() as u32;
                let mut improving_now = 0u32;
                // Recompute the drained users' responses. Large passes (cold
                // start, post-churn re-convergence) fan out over the rayon
                // pool — the scans are read-only against the engine slabs
                // and the results are collected in index order, so the
                // assignment below is deterministic; small passes stay on
                // the calling thread.
                let parallel = drained.len() >= PAR_REFRESH_MIN && rayon::current_num_threads() > 1;
                if brun {
                    if parallel {
                        let eng = &engine;
                        let dr = &drained;
                        let results: Vec<Vec<(RouteId, f64)>> = (0..dr.len())
                            .into_par_iter()
                            .map(|j| eng.better_routes(dr[j]))
                            .collect();
                        for (j, better) in results.into_iter().enumerate() {
                            better_cache[drained[j].index()] = better;
                        }
                    } else {
                        for &user in &drained {
                            better_cache[user.index()] = engine.better_routes(user);
                        }
                    }
                } else if parallel {
                    let eng = &engine;
                    let dr = &drained;
                    let results: Vec<BestResponse> = (0..dr.len())
                        .into_par_iter()
                        .map(|j| eng.best_route_set(dr[j]))
                        .collect();
                    for (j, response) in results.into_iter().enumerate() {
                        best_cache[drained[j].index()] = response;
                    }
                } else {
                    for &user in &drained {
                        engine.best_route_set_into(user, &mut best_cache[user.index()]);
                    }
                }
                changed.clear();
                for &user in &drained {
                    let i = user.index();
                    let now = if brun {
                        !better_cache[i].is_empty()
                    } else {
                        !best_cache[i].best_routes.is_empty()
                    };
                    improving_now += u32::from(now);
                    if now != improving_flag[i] {
                        improving_flag[i] = now;
                        changed.push(i as u32);
                    }
                    if let Some(cache) = &mut affected_cache {
                        cache.invalidate(user);
                    }
                }
                // Fold the flag flips into the sorted improving list:
                // binary-search edits for a few changes, one linear rebuild
                // when a pass flipped a large fraction (cold start).
                if !changed.is_empty() {
                    if changed.len() > improving.len() / 8 + 32 {
                        improving.clear();
                        improving.extend((0..m as u32).filter(|&i| improving_flag[i as usize]));
                    } else {
                        for &i in &changed {
                            match improving.binary_search(&i) {
                                Ok(pos) => {
                                    if !improving_flag[i as usize] {
                                        improving.remove(pos);
                                    }
                                }
                                Err(pos) => {
                                    if improving_flag[i as usize] {
                                        improving.insert(pos, i);
                                    }
                                }
                            }
                        }
                    }
                }
                if scans > 0 {
                    if let Some(start) = slot_start {
                        let nanos = elapsed_nanos(start);
                        obs.emit(|| Event::SpanRecorded {
                            kind: SpanKind::BestResponse,
                            nanos,
                        });
                    }
                    obs.emit(|| Event::RefreshPass {
                        kind: if brun {
                            ResponseKind::Better
                        } else {
                            ResponseKind::Best
                        },
                        scans,
                        improving: improving_now,
                    });
                }
                picks.clear();
                for &iu in &improving {
                    let user = UserId::from_index(iu as usize);
                    if brun {
                        let &(route, gain) = pick(&better_cache[iu as usize], rng)
                            .expect("flagged improving ⇒ non-empty better list");
                        picks.push(Pick { user, route, gain });
                    } else {
                        let response = &best_cache[iu as usize];
                        let &route = pick(&response.best_routes, rng)
                            .expect("flagged improving ⇒ non-empty best set");
                        picks.push(Pick {
                            user,
                            route,
                            gain: response.gain,
                        });
                    }
                }
                if picks.is_empty() {
                    converged = true;
                    break; // Alg. 2 line 11: no request ⇒ terminate.
                }
                // Grant exactly as the schedulers over the full request list
                // would: `suu` draws one uniform index; `buau` takes the
                // *last* maximum of `τ` under `total_cmp` (`Iterator::max_by`
                // keeps the later element on ties); `puu` needs the real
                // conflict graph, so only MUUN pays for request building.
                slots += 1;
                let updated = match algorithm {
                    DistributedAlgorithm::Dgrn | DistributedAlgorithm::Brun => {
                        let g = &picks[rng.random_range(0..picks.len())];
                        engine.apply_move(g.user, g.route);
                        updates += 1;
                        min_improvement = min_improvement.min(g.gain);
                        1
                    }
                    DistributedAlgorithm::Buau => {
                        let tau = |p: &Pick| p.gain / engine.alpha_of(p.user);
                        let mut best = 0usize;
                        let mut best_tau = tau(&picks[0]);
                        for (i, p) in picks.iter().enumerate().skip(1) {
                            let t = tau(p);
                            if best_tau.total_cmp(&t) != std::cmp::Ordering::Greater {
                                best = i;
                                best_tau = t;
                            }
                        }
                        let g = &picks[best];
                        engine.apply_move(g.user, g.route);
                        updates += 1;
                        min_improvement = min_improvement.min(g.gain);
                        1
                    }
                    DistributedAlgorithm::Muun => {
                        // Same τ and B_i as `UpdateRequest::build`, but B_i
                        // comes from the cross-slot cache: only users that
                        // turned up dirty since their last request rebuild it.
                        let cache = affected_cache.as_mut().expect("built for MUUN");
                        for p in &picks {
                            cache.ensure(game, engine.profile(), p.user, p.route);
                        }
                        let views: Vec<RequestView<'_>> = picks
                            .iter()
                            .map(|p| RequestView {
                                user: p.user,
                                tau: p.gain / engine.alpha_of(p.user),
                                affected: cache.get(p.user, p.route),
                            })
                            .collect();
                        let granted = puu_views(&views);
                        debug_assert!(!granted.is_empty());
                        batch.clear();
                        for &g in &granted {
                            let p = &picks[g];
                            batch.push((p.user, p.route));
                            updates += 1;
                            min_improvement = min_improvement.min(p.gain);
                        }
                        // PUU granted a pairwise conflict-free set (Theorem
                        // 3), so the engine may compute the per-move deltas
                        // in parallel and commit them in grant order —
                        // bit-identical to the sequential loop.
                        let batch_span = obs.span(SpanKind::BatchApply);
                        engine.apply_batch(&batch);
                        batch_span.finish();
                        granted.len()
                    }
                    DistributedAlgorithm::Bats => unreachable!("handled above"),
                };
                record(&engine, updated, &mut slot_trace, &mut user_profit_trace);
                if let Some(start) = slot_start {
                    let nanos = elapsed_nanos(start);
                    obs.emit(|| Event::SpanRecorded {
                        kind: SpanKind::Slot,
                        nanos,
                    });
                }
                obs.emit(|| Event::SlotCompleted {
                    slot: slots as u64,
                    updated: updated as u32,
                    phi: engine.potential(),
                    total_profit: engine.total_profit(),
                });
            }
        }
    }

    obs.emit(|| Event::RunCompleted {
        slots: slots as u64,
        updates: updates as u64,
        converged,
        phi: engine.potential(),
    });
    RunOutcome {
        profile: engine.into_profile(),
        slots,
        updates,
        converged,
        slot_trace,
        user_profit_trace,
        min_improvement,
    }
}

/// Reference driver: the pre-engine implementation, recomputing every user's
/// response and the full `ϕ`/total-profit each slot. Identical trajectories
/// to [`run_distributed_from`] per seed; kept as the equivalence oracle.
pub fn run_distributed_from_naive(
    game: &Game,
    algorithm: DistributedAlgorithm,
    config: &RunConfig,
    mut profile: Profile,
    rng: &mut StdRng,
) -> RunOutcome {
    let m = game.user_count();
    let mut slot_trace = Vec::new();
    let mut user_profit_trace = config.record_user_profits.then(Vec::new);
    let record = |profile: &Profile,
                  updated: usize,
                  slot_trace: &mut Vec<SlotTrace>,
                  user_trace: &mut Option<Vec<Vec<f64>>>| {
        slot_trace.push(SlotTrace {
            potential: potential(game, profile),
            total_profit: profile.total_profit(game),
            updated_users: updated,
        });
        if let Some(trace) = user_trace {
            trace.push(
                (0..m)
                    .map(|i| profile.profit(game, UserId::from_index(i)))
                    .collect(),
            );
        }
    };
    record(&profile, 0, &mut slot_trace, &mut user_profit_trace);

    let mut slots = 0usize;
    let mut updates = 0usize;
    let mut min_improvement = f64::INFINITY;
    let mut converged = false;

    match algorithm {
        DistributedAlgorithm::Bats => {
            // Round-robin turns; a full quiet pass terminates. Every turn is
            // a decision slot, improving or not (§5.3.1's explanation of why
            // BATS converges slowest).
            let mut quiet = 0usize;
            let mut cursor = 0usize;
            while quiet < m && slots < config.max_slots {
                let user = UserId::from_index(cursor);
                cursor = (cursor + 1) % m;
                slots += 1;
                let response = best_route_set(game, &profile, user);
                let updated = if let Some(route) = pick(&response.best_routes, rng) {
                    profile.apply_move(game, user, *route);
                    updates += 1;
                    min_improvement = min_improvement.min(response.gain);
                    quiet = 0;
                    1
                } else {
                    quiet += 1;
                    0
                };
                record(&profile, updated, &mut slot_trace, &mut user_profit_trace);
            }
            converged = quiet >= m;
        }
        _ => {
            while slots < config.max_slots {
                // Alg. 2 line 6: collect requests from users able to improve.
                let mut requests: Vec<UpdateRequest> = Vec::new();
                for i in 0..m {
                    let user = UserId::from_index(i);
                    match algorithm {
                        DistributedAlgorithm::Brun => {
                            let better = better_routes(game, &profile, user);
                            if let Some(&(route, gain)) = pick(&better, rng) {
                                requests
                                    .push(UpdateRequest::build(game, &profile, user, route, gain));
                            }
                        }
                        _ => {
                            let response = best_route_set(game, &profile, user);
                            if let Some(route) = pick(&response.best_routes, rng) {
                                requests.push(UpdateRequest::build(
                                    game,
                                    &profile,
                                    user,
                                    *route,
                                    response.gain,
                                ));
                            }
                        }
                    }
                }
                if requests.is_empty() {
                    converged = true;
                    break; // Alg. 2 line 11: no request ⇒ terminate.
                }
                let granted: Vec<usize> = match algorithm {
                    DistributedAlgorithm::Dgrn | DistributedAlgorithm::Brun => suu(&requests, rng),
                    DistributedAlgorithm::Buau => buau(&requests),
                    DistributedAlgorithm::Muun => puu(&requests),
                    DistributedAlgorithm::Bats => unreachable!("handled above"),
                };
                debug_assert!(!granted.is_empty());
                slots += 1;
                for &g in &granted {
                    let req = &requests[g];
                    profile.apply_move(game, req.user, req.new_route);
                    updates += 1;
                    min_improvement = min_improvement.min(req.gain);
                }
                record(
                    &profile,
                    granted.len(),
                    &mut slot_trace,
                    &mut user_profit_trace,
                );
            }
        }
    }

    RunOutcome {
        profile,
        slots,
        updates,
        converged,
        slot_trace,
        user_profit_trace,
        min_improvement,
    }
}

/// Uniformly random element of a slice, or `None` for an empty slice.
fn pick<'a, T>(items: &'a [T], rng: &mut StdRng) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::examples::fig1_instance;
    use vcs_core::ids::{RouteId, TaskId};
    use vcs_core::response::is_nash;
    use vcs_core::{PlatformParams, Route, Task, User, UserPrefs};

    fn medium_game(seed: u64) -> Game {
        // A random-ish but fixed game: 8 users, 12 tasks, 3 routes each.
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..12)
            .map(|k| {
                Task::new(
                    TaskId(k),
                    rng.random_range(10.0..20.0),
                    rng.random_range(0.0..1.0),
                )
            })
            .collect();
        let users: Vec<User> = (0..8u32)
            .map(|i| {
                let routes = (0..3u32)
                    .map(|r| {
                        let n_tasks = rng.random_range(0..4);
                        let mut covered: Vec<TaskId> = (0..n_tasks)
                            .map(|_| TaskId(rng.random_range(0..12)))
                            .collect();
                        covered.sort_unstable();
                        covered.dedup();
                        Route::new(
                            RouteId(r),
                            covered,
                            rng.random_range(0.0..5.0),
                            rng.random_range(0.0..4.0),
                        )
                    })
                    .collect();
                User::new(
                    vcs_core::ids::UserId(i),
                    UserPrefs::new(
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                        rng.random_range(0.1..0.9),
                    ),
                    routes,
                )
            })
            .collect();
        Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4)).unwrap()
    }

    #[test]
    fn all_algorithms_reach_nash() {
        for seed in 0..5u64 {
            let game = medium_game(seed);
            for algo in DistributedAlgorithm::ALL {
                let out = run_distributed(&game, algo, &RunConfig::with_seed(seed));
                assert!(out.converged, "{} did not converge", algo.name());
                assert!(
                    is_nash(&game, &out.profile),
                    "{} terminated off-equilibrium (seed {seed})",
                    algo.name()
                );
            }
        }
    }

    #[test]
    fn potential_monotone_along_any_run() {
        let game = medium_game(3);
        for algo in DistributedAlgorithm::ALL {
            let out = run_distributed(&game, algo, &RunConfig::with_seed(11));
            for w in out.slot_trace.windows(2) {
                assert!(
                    w[1].potential >= w[0].potential - 1e-9,
                    "{}: potential decreased {} -> {}",
                    algo.name(),
                    w[0].potential,
                    w[1].potential
                );
            }
        }
    }

    #[test]
    fn muun_converges_in_fewest_slots_on_average() {
        let mut totals = std::collections::HashMap::new();
        for seed in 0..10u64 {
            let game = medium_game(seed);
            for algo in DistributedAlgorithm::ALL {
                let out = run_distributed(&game, algo, &RunConfig::with_seed(seed * 7 + 1));
                *totals.entry(algo.name()).or_insert(0usize) += out.slots;
            }
        }
        assert!(totals["MUUN"] <= totals["DGRN"]);
        assert!(totals["DGRN"] <= totals["BATS"]);
    }

    #[test]
    fn fig1_dynamics_reach_the_paper_equilibrium() {
        let game = fig1_instance();
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(5));
        assert!(is_nash(&game, &out.profile));
        // The unique equilibrium of Fig. 1 is u1:r1, u2:r3, u3:r4 (total 11
        // unscaled). u1 never stays on r2: sharing $6 yields at most 3 < 5.
        assert_eq!(out.profile.choices(), &[RouteId(0), RouteId(0), RouteId(0)]);
    }

    #[test]
    fn slot_trace_has_initial_entry() {
        let game = medium_game(1);
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(2));
        assert_eq!(out.slot_trace.len(), out.slots + 1);
    }

    #[test]
    fn user_profit_trace_dimensions() {
        let game = medium_game(2);
        let mut cfg = RunConfig::with_seed(3);
        cfg.record_user_profits = true;
        let out = run_distributed(&game, DistributedAlgorithm::Muun, &cfg);
        let trace = out.user_profit_trace.as_ref().unwrap();
        assert_eq!(trace.len(), out.slots + 1);
        assert!(trace.iter().all(|row| row.len() == game.user_count()));
    }

    #[test]
    fn bats_counts_quiet_turns() {
        let game = medium_game(4);
        let out = run_distributed(&game, DistributedAlgorithm::Bats, &RunConfig::with_seed(9));
        // Terminating requires a full quiet pass, so slots ≥ users and
        // slots ≥ updates + users.
        assert!(out.slots >= game.user_count());
        assert!(out.slots >= out.updates + game.user_count());
    }

    #[test]
    fn min_improvement_positive_when_updates_happen() {
        let game = medium_game(6);
        let out = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(1));
        if out.updates > 0 {
            assert!(out.min_improvement > 0.0);
            assert!(out.min_improvement.is_finite());
        } else {
            assert_eq!(out.min_improvement, f64::INFINITY);
        }
    }

    #[test]
    fn observation_never_perturbs_the_run() {
        use std::sync::Arc;
        use vcs_obs::RingBufferSubscriber;
        let game = medium_game(5);
        for algo in DistributedAlgorithm::ALL {
            let cfg = RunConfig::with_seed(17);
            let plain = run_distributed(&game, algo, &cfg);
            let ring = Arc::new(RingBufferSubscriber::new(1 << 20));
            let observed = run_distributed_observed(&game, algo, &cfg, &Obs::new(ring.clone()));
            assert_eq!(plain, observed, "{}: observed run diverged", algo.name());
            let events = ring.events();
            // One init anchor, one slot event per decision slot, one move
            // event per update, one terminal event.
            assert!(matches!(events[0], Event::EngineInit { .. }));
            let slot_events = events
                .iter()
                .filter(|e| matches!(e, Event::SlotCompleted { .. }))
                .count();
            assert_eq!(slot_events, observed.slots, "{}", algo.name());
            let move_events = events
                .iter()
                .filter(|e| matches!(e, Event::MoveCommitted { .. }))
                .count();
            assert_eq!(move_events, observed.updates, "{}", algo.name());
            match events.last() {
                Some(&Event::RunCompleted {
                    slots,
                    updates,
                    converged,
                    phi,
                }) => {
                    assert_eq!(slots as usize, observed.slots);
                    assert_eq!(updates as usize, observed.updates);
                    assert_eq!(converged, observed.converged);
                    let terminal = observed.slot_trace.last().unwrap().potential;
                    assert!((phi - terminal).abs() < 1e-12);
                }
                other => panic!("{}: expected RunCompleted, got {other:?}", algo.name()),
            }
            // The recorded trace reconstructs the ϕ trajectory within 1e-9.
            let rec = vcs_obs::reconstruct_phi(&events).unwrap();
            assert_eq!(rec.moves, observed.updates);
            assert!(
                rec.max_abs_err < 1e-9,
                "{}: {}",
                algo.name(),
                rec.max_abs_err
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let game = medium_game(8);
        let cfg = RunConfig::with_seed(123);
        let a = run_distributed(&game, DistributedAlgorithm::Muun, &cfg);
        let b = run_distributed(&game, DistributedAlgorithm::Muun, &cfg);
        assert_eq!(a, b);
    }
}
