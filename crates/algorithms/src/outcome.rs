//! Run records: what a solver reports besides the final profile.

use serde::{Deserialize, Serialize};
use vcs_core::Profile;

/// Per-decision-slot observables (drives Fig. 3 and Fig. 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotTrace {
    /// Potential value `ϕ(s)` after the slot.
    pub potential: f64,
    /// Total profit `Σ_i P_i(s)` after the slot.
    pub total_profit: f64,
    /// Number of users that updated their decision in the slot.
    pub updated_users: usize,
}

/// Outcome of a distributed-dynamics run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// The final strategy profile (a Nash equilibrium on normal termination).
    pub profile: Profile,
    /// Number of decision slots consumed until termination.
    pub slots: usize,
    /// Total number of individual decision updates applied.
    pub updates: usize,
    /// Whether the dynamics terminated naturally (no user can improve) as
    /// opposed to hitting the safety slot cap.
    pub converged: bool,
    /// Per-slot observables, including the initial state at index 0.
    pub slot_trace: Vec<SlotTrace>,
    /// Per-slot per-user profits (index 0 = initial state); populated only
    /// when requested in the run configuration.
    pub user_profit_trace: Option<Vec<Vec<f64>>>,
    /// The smallest accepted profit improvement over the whole run
    /// (`ΔP_min` of Theorem 4); `f64::INFINITY` when no update happened.
    pub min_improvement: f64,
}

impl RunOutcome {
    /// Potential value at termination.
    pub fn final_potential(&self) -> f64 {
        self.slot_trace.last().map_or(f64::NAN, |s| s.potential)
    }

    /// Total profit at termination.
    pub fn final_total_profit(&self) -> f64 {
        self.slot_trace.last().map_or(f64::NAN, |s| s.total_profit)
    }

    /// Mean number of users updated per slot (excluding the initial entry);
    /// `0.0` when no slot elapsed. Table 3's "selected user number".
    pub fn mean_updates_per_slot(&self) -> f64 {
        if self.slots == 0 {
            0.0
        } else {
            self.updates as f64 / self.slots as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcs_core::ids::{RouteId, TaskId, UserId};
    use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs};

    fn tiny_profile() -> Profile {
        let game = Game::with_paper_bounds(
            vec![Task::new(TaskId(0), 10.0, 0.0)],
            vec![User::new(
                UserId(0),
                UserPrefs::neutral(),
                vec![Route::new(RouteId(0), vec![TaskId(0)], 0.0, 0.0)],
            )],
            PlatformParams::new(0.5, 0.5),
        )
        .unwrap();
        Profile::all_first(&game)
    }

    fn outcome() -> RunOutcome {
        RunOutcome {
            profile: tiny_profile(),
            slots: 4,
            updates: 6,
            converged: true,
            slot_trace: vec![
                SlotTrace {
                    potential: 1.0,
                    total_profit: 2.0,
                    updated_users: 0,
                },
                SlotTrace {
                    potential: 3.0,
                    total_profit: 4.0,
                    updated_users: 2,
                },
            ],
            user_profit_trace: None,
            min_improvement: 0.5,
        }
    }

    #[test]
    fn final_values_read_last_slot() {
        let o = outcome();
        assert_eq!(o.final_potential(), 3.0);
        assert_eq!(o.final_total_profit(), 4.0);
    }

    #[test]
    fn mean_updates_per_slot() {
        let o = outcome();
        assert!((o.mean_updates_per_slot() - 1.5).abs() < 1e-12);
        let empty = RunOutcome {
            slots: 0,
            updates: 0,
            ..o
        };
        assert_eq!(empty.mean_updates_per_slot(), 0.0);
    }
}
