//! Watchdog conformance across the five dynamics: clean observed runs of
//! DGRN / MUUN / BRUN / BUAU / BATS raise **zero** alerts under a Theorem 4
//! slot budget, while an injected ϕ-decreasing move and an injected
//! stale-livelock — spliced into a *real* captured event stream — each
//! raise exactly one.
//!
//! The budget is honest: a first pass captures the run to recover its exact
//! `ΔP_min` (each `MoveCommitted.profit_delta` is the mover's Eq. 11 gain),
//! the Theorem 4 bound is computed from it, and the identical re-run (same
//! seed, deterministic dynamics) is watched against that budget.

use std::sync::Arc;
use vcs_algorithms::{run_distributed_observed, DistributedAlgorithm, RunConfig};
use vcs_core::bounds::slot_upper_bound;
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs};
use vcs_obs::{
    AlertKind, Event, Obs, RingBufferSubscriber, Subscriber, WatchdogConfig, WatchdogSubscriber,
};

const ALL_DYNAMICS: [DistributedAlgorithm; 5] = [
    DistributedAlgorithm::Dgrn,
    DistributedAlgorithm::Muun,
    DistributedAlgorithm::Brun,
    DistributedAlgorithm::Buau,
    DistributedAlgorithm::Bats,
];

/// A seeded instance. Kept under 40 users: BATS spends one slot per
/// round-robin turn, so its longest possible move-free streak (one full
/// no-improvement pass, which terminates the run) stays far below the
/// default stale-livelock limit of 64 — a clean run can never trip it.
fn scenario_game(seed: u64) -> Game {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tasks = 12u32;
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..24u32)
        .map(|i| {
            let n_routes = rng.random_range(2..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(1..5usize))
                        .map(|_| TaskId(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..4.0),
                        rng.random_range(0.0..3.0),
                    )
                })
                .collect();
            User::new(
                UserId(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4))
        .expect("generated instance is valid")
}

/// Captures a clean observed run and returns its event stream.
fn captured_run(game: &Game, algo: DistributedAlgorithm, seed: u64) -> Vec<Event> {
    let ring = Arc::new(RingBufferSubscriber::new(1 << 16));
    let obs = Obs::new(ring.clone());
    let out = run_distributed_observed(game, algo, &RunConfig::with_seed(seed), &obs);
    assert!(out.converged, "{algo:?} seed {seed} did not converge");
    ring.events()
}

fn delta_p_min(events: &[Event]) -> Option<f64> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::MoveCommitted { profit_delta, .. } => Some(*profit_delta),
            _ => None,
        })
        .min_by(|a, b| a.total_cmp(b))
}

#[test]
fn clean_runs_across_all_five_dynamics_raise_no_alerts() {
    for game_seed in 1..4u64 {
        let game = scenario_game(game_seed);
        for algo in ALL_DYNAMICS {
            for seed in 0..2u64 {
                // Pass 1: recover this run's exact ΔP_min → Theorem 4 budget.
                let events = captured_run(&game, algo, seed);
                let budget = delta_p_min(&events)
                    .filter(|&dp| dp > 0.0)
                    .map(|dp| slot_upper_bound(&game, dp).ceil() as u64);
                // Pass 2: the identical run, watched against that budget.
                let dog = Arc::new(WatchdogSubscriber::new(WatchdogConfig {
                    slot_budget: budget,
                    ..WatchdogConfig::default()
                }));
                let obs = Obs::new(dog.clone());
                let out = run_distributed_observed(&game, algo, &RunConfig::with_seed(seed), &obs);
                assert!(out.converged);
                assert_eq!(
                    dog.alert_count(),
                    0,
                    "{algo:?} game {game_seed} seed {seed} (budget {budget:?}): {:?}",
                    dog.alerts()
                );
                assert_eq!(dog.counters(), (0, 0, 0));
            }
        }
    }
}

#[test]
fn injected_phi_decreasing_move_raises_exactly_one_alert() {
    let game = scenario_game(1);
    let mut events = captured_run(&game, DistributedAlgorithm::Dgrn, 0);
    // Flip the sign of one real committed move's ϕ-delta: exactly the
    // violation Eq. 11 forbids, in an otherwise untouched stream.
    let target = events
        .iter()
        .position(|e| matches!(e, Event::MoveCommitted { .. }))
        .expect("a converging run commits moves");
    if let Event::MoveCommitted { phi_delta, .. } = &mut events[target] {
        *phi_delta = -*phi_delta;
    }
    let dog = WatchdogSubscriber::new(WatchdogConfig::default());
    for event in &events {
        dog.event(event);
    }
    let alerts = dog.alerts();
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].kind, AlertKind::PhiDecrease);
    assert_eq!(dog.counters(), (1, 0, 0));
}

#[test]
fn injected_stale_livelock_raises_exactly_one_alert() {
    let game = scenario_game(2);
    let mut events = captured_run(&game, DistributedAlgorithm::Dgrn, 0);
    // Splice a livelock after the clean run: an agent keeps reporting an
    // improving route while slot after slot completes without a move —
    // the stale-information failure the refresh machinery must prevent.
    events.push(Event::ResponseEvaluated {
        user: 0,
        kind: vcs_obs::ResponseKind::Best,
        improving: true,
    });
    let limit = WatchdogConfig::default().stale_slot_limit;
    for slot in 0..limit + 8 {
        events.push(Event::SlotCompleted {
            slot,
            updated: 0,
            phi: 1.0,
            total_profit: 1.0,
        });
    }
    let dog = WatchdogSubscriber::new(WatchdogConfig::default());
    for event in &events {
        dog.event(event);
    }
    let alerts = dog.alerts();
    assert_eq!(alerts.len(), 1, "latched: one alert despite 8 extra slots");
    assert_eq!(alerts[0].kind, AlertKind::StaleLivelock);
    assert_eq!(dog.counters(), (0, 0, 1));
}
