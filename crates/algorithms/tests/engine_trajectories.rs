//! Trajectory equivalence between the incremental-engine driver
//! ([`run_distributed`]) and the naive reference driver
//! ([`run_distributed_naive`]): for every algorithm and fixed seed the two
//! must produce the same run — same profile, slots, updates, convergence
//! flag, granted-user counts and `ΔP_min` — with slot-trace potentials and
//! total profits within `1e-9` (the engine accumulates them incrementally).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use vcs_algorithms::{run_distributed, run_distributed_naive, DistributedAlgorithm, RunConfig};
use vcs_core::ids::{RouteId, TaskId, UserId};
use vcs_core::{Game, PlatformParams, Route, Task, User, UserPrefs};

/// A fixed random-ish game: `n_users` users, 15 tasks, up to 4 routes each.
fn scenario_game(seed: u64, n_users: u32) -> Game {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_tasks = 15u32;
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|k| {
            Task::new(
                TaskId(k),
                rng.random_range(10.0..20.0),
                rng.random_range(0.0..1.0),
            )
        })
        .collect();
    let users: Vec<User> = (0..n_users)
        .map(|i| {
            let n_routes = rng.random_range(1..=4usize);
            let routes = (0..n_routes)
                .map(|r| {
                    let mut covered: Vec<TaskId> = (0..rng.random_range(0..5usize))
                        .map(|_| TaskId(rng.random_range(0..n_tasks)))
                        .collect();
                    covered.sort_unstable();
                    covered.dedup();
                    Route::new(
                        RouteId::from_index(r),
                        covered,
                        rng.random_range(0.0..5.0),
                        rng.random_range(0.0..4.0),
                    )
                })
                .collect();
            User::new(
                UserId(i),
                UserPrefs::new(
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                    rng.random_range(0.1..0.9),
                ),
                routes,
            )
        })
        .collect();
    Game::with_paper_bounds(tasks, users, PlatformParams::new(0.4, 0.4)).unwrap()
}

/// Asserts the engine run equals the naive run: everything identical except
/// the slot-trace floats, which must agree within `1e-9`.
fn assert_equivalent(game: &Game, algorithm: DistributedAlgorithm, config: &RunConfig) {
    let fast = run_distributed(game, algorithm, config);
    let naive = run_distributed_naive(game, algorithm, config);
    let tag = format!("{} seed {}", algorithm.name(), config.seed);
    assert_eq!(fast.profile, naive.profile, "{tag}: final profile diverged");
    assert_eq!(fast.slots, naive.slots, "{tag}: slot count diverged");
    assert_eq!(fast.updates, naive.updates, "{tag}: update count diverged");
    assert_eq!(
        fast.converged, naive.converged,
        "{tag}: convergence flag diverged"
    );
    assert_eq!(
        fast.min_improvement, naive.min_improvement,
        "{tag}: ΔP_min diverged"
    );
    assert_eq!(
        fast.slot_trace.len(),
        naive.slot_trace.len(),
        "{tag}: trace length"
    );
    for (t, (f, n)) in fast.slot_trace.iter().zip(&naive.slot_trace).enumerate() {
        assert_eq!(
            f.updated_users, n.updated_users,
            "{tag}: updated_users at slot {t}"
        );
        assert!(
            (f.potential - n.potential).abs() < 1e-9,
            "{tag}: potential at slot {t}: engine {} vs naive {}",
            f.potential,
            n.potential
        );
        assert!(
            (f.total_profit - n.total_profit).abs() < 1e-9,
            "{tag}: total profit at slot {t}: engine {} vs naive {}",
            f.total_profit,
            n.total_profit
        );
    }
    match (&fast.user_profit_trace, &naive.user_profit_trace) {
        (None, None) => {}
        (Some(f), Some(n)) => {
            assert_eq!(f.len(), n.len(), "{tag}: profit-trace length");
            for (t, (fr, nr)) in f.iter().zip(n).enumerate() {
                assert_eq!(fr.len(), nr.len());
                for (i, (a, b)) in fr.iter().zip(nr).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "{tag}: profit of user {i} at slot {t}: {a} vs {b}"
                    );
                }
            }
        }
        _ => panic!("{tag}: profit-trace presence diverged"),
    }
}

#[test]
fn all_algorithms_match_naive_driver() {
    for seed in 0..4u64 {
        let game = scenario_game(seed, 12);
        for algorithm in DistributedAlgorithm::ALL {
            assert_equivalent(&game, algorithm, &RunConfig::with_seed(seed * 31 + 7));
        }
    }
}

#[test]
fn equivalence_holds_with_user_profit_recording() {
    let game = scenario_game(9, 10);
    for algorithm in DistributedAlgorithm::ALL {
        let mut config = RunConfig::with_seed(42);
        config.record_user_profits = true;
        assert_equivalent(&game, algorithm, &config);
    }
}

#[test]
fn equivalence_holds_on_larger_instances() {
    // A denser instance where dirty sets are non-trivial: many users share
    // each task, so a single move invalidates a real subset, not everyone.
    let game = scenario_game(3, 40);
    for algorithm in [DistributedAlgorithm::Dgrn, DistributedAlgorithm::Muun] {
        assert_equivalent(&game, algorithm, &RunConfig::with_seed(17));
    }
}

#[test]
fn equivalence_under_slot_cap() {
    // Truncated runs (cap below convergence) must truncate identically.
    let game = scenario_game(5, 15);
    for algorithm in DistributedAlgorithm::ALL {
        let mut config = RunConfig::with_seed(8);
        config.max_slots = 3;
        assert_equivalent(&game, algorithm, &config);
    }
}
