//! Property-based tests of the SUU/PUU schedulers and the Theorem 3 greedy
//! guarantee on random request sets.

use proptest::prelude::*;
use vcs_algorithms::{optimal_selection, puu, suu, theorem3_bound, UpdateRequest};
use vcs_core::ids::{RouteId, TaskId, UserId};

fn arb_requests() -> impl Strategy<Value = Vec<UpdateRequest>> {
    prop::collection::vec(
        (0.001f64..10.0, prop::collection::btree_set(0u32..12, 0..5)),
        1..10,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (tau, tasks))| UpdateRequest {
                user: UserId(i as u32),
                new_route: RouteId(0),
                gain: tau * 0.5,
                tau,
                affected_tasks: tasks.into_iter().map(TaskId).collect(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PUU always admits a non-empty, conflict-free set.
    #[test]
    fn puu_admits_conflict_free_nonempty(requests in arb_requests()) {
        let admitted = puu(&requests);
        prop_assert!(!admitted.is_empty());
        for (i, &a) in admitted.iter().enumerate() {
            for &b in &admitted[i + 1..] {
                prop_assert!(!requests[a].conflicts_with(&requests[b]));
            }
        }
    }

    /// PUU's admitted set is maximal: no rejected request is conflict-free
    /// with everything admitted (the greedy scan would have taken it).
    #[test]
    fn puu_is_maximal(requests in arb_requests()) {
        let admitted = puu(&requests);
        for idx in 0..requests.len() {
            if admitted.contains(&idx) {
                continue;
            }
            let conflict = admitted
                .iter()
                .any(|&a| requests[a].conflicts_with(&requests[idx]));
            prop_assert!(conflict, "request {idx} was rejected without a conflict");
        }
    }

    /// Theorem 3: `τ/τ̂ ≥ |B_{i'}|/(|µ̂|·B_max)` against the brute-force
    /// optimal selection.
    #[test]
    fn theorem3_guarantee(requests in arb_requests()) {
        let admitted = puu(&requests);
        let (optimal, tau_hat) = optimal_selection(&requests);
        prop_assume!(tau_hat > 0.0);
        let tau: f64 = admitted.iter().map(|&i| requests[i].tau).sum();
        if let Some(bound) = theorem3_bound(&requests, &admitted, &optimal) {
            prop_assert!(
                tau / tau_hat >= bound - 1e-9,
                "τ/τ̂ = {} below bound {bound}",
                tau / tau_hat
            );
        }
        // Greedy can never beat the optimum.
        prop_assert!(tau <= tau_hat + 1e-9);
    }

    /// SUU picks exactly one valid index, uniformly seeded.
    #[test]
    fn suu_picks_one(requests in arb_requests(), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let sel = suu(&requests, &mut rng);
        prop_assert_eq!(sel.len(), 1);
        prop_assert!(sel[0] < requests.len());
    }

    /// The Theorem 3 premise: the first user PUU admits has the globally
    /// largest δ among all requests.
    #[test]
    fn puu_first_has_max_delta(requests in arb_requests()) {
        let admitted = puu(&requests);
        let delta = |r: &UpdateRequest| {
            if r.affected_tasks.is_empty() {
                f64::INFINITY
            } else {
                r.tau / r.affected_tasks.len() as f64
            }
        };
        let first = delta(&requests[admitted[0]]);
        for r in &requests {
            prop_assert!(first >= delta(r) - 1e-12);
        }
    }
}
