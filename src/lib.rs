//! # vcs — distributed game-theoretical route navigation for vehicular crowdsensing
//!
//! Umbrella crate of the ICPP '21 reproduction. Re-exports the workspace's
//! public API so downstream users can depend on a single crate:
//!
//! * [`core`] — the multi-user route-navigation potential game (profits,
//!   potential function, best response, Nash checks, theoretical bounds);
//! * [`roadnet`] — road networks, k-shortest-path route recommendation,
//!   synthetic cities;
//! * [`traces`] — synthetic taxi traces and origin–destination extraction;
//! * [`scenario`] — dataset presets and game-instance construction;
//! * [`algorithms`] — DGRN / MUUN / BRUN / BUAU / BATS / CORN / RRN;
//! * [`runtime`] — the distributed message-passing execution substrate;
//! * [`online`] — dynamic user churn: event streams, warm-start
//!   re-equilibration and shard snapshots;
//! * [`shard`] — sharded multi-engine deployment: the locality
//!   partitioner, per-shard engines with a boundary-sync coordinator,
//!   checkpoint/resume, and causally-merged post-mortems;
//! * [`metrics`] — coverage, fairness, reward measures and replication;
//! * [`obs`] — zero-cost-when-disabled structured observability: slot /
//!   response / frame / epoch events, wall-clock profiling spans,
//!   counters and latency histograms, JSONL traces, and a
//!   dependency-free live `/metrics` exporter.
//!
//! ## Quickstart
//!
//! ```
//! use vcs::prelude::*;
//!
//! // Build a Shanghai-like scenario with 12 users and 25 tasks...
//! let pool = UserPool::build(Dataset::Shanghai, 7);
//! let game = pool.instantiate(&ScenarioConfig {
//!     n_users: 12,
//!     n_tasks: 25,
//!     seed: 42,
//!     params: ScenarioParams::default(),
//! });
//! // ...run the paper's distributed algorithm to a Nash equilibrium...
//! let outcome = run_distributed(&game, DistributedAlgorithm::Dgrn, &RunConfig::with_seed(42));
//! assert!(outcome.converged);
//! assert!(is_nash(&game, &outcome.profile));
//! // ...and inspect the allocation quality.
//! let cov = coverage(&game, &outcome.profile);
//! assert!((0.0..=1.0).contains(&cov));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vcs_algorithms as algorithms;
pub use vcs_core as core;
pub use vcs_metrics as metrics;
pub use vcs_obs as obs;
pub use vcs_online as online;
pub use vcs_roadnet as roadnet;
pub use vcs_runtime as runtime;
pub use vcs_scenario as scenario;
pub use vcs_shard as shard;
pub use vcs_traces as traces;

/// Convenient single-import surface for applications.
pub mod prelude {
    pub use vcs_algorithms::{
        run_corn, run_distributed, run_rrn, CornOutcome, DistributedAlgorithm, RunConfig,
        RunOutcome,
    };
    pub use vcs_core::response::is_nash;
    pub use vcs_core::{
        best_route_set, potential, Game, GameError, PlatformParams, Profile, Route, Task, User,
        UserPrefs, WeightBounds,
    };
    pub use vcs_metrics::{
        average_reward, coverage, jain_index, overlap_ratio, profile_jain_index, Summary,
    };
    pub use vcs_obs::{
        Event, LiveMonitor, NoopSubscriber, Obs, RingBufferSubscriber, SpanKind, StatsSubscriber,
        Subscriber,
    };
    pub use vcs_online::{
        synthetic_stream, trace_stream, EventStream, OnlineAlgorithm, OnlineSim, Snapshot,
        StreamConfig,
    };
    pub use vcs_roadnet::{CityConfig, CityKind, NodeId, RoadGraph};
    pub use vcs_runtime::{
        run_sync, run_sync_churn, run_threaded, run_threaded_churn, SchedulerKind,
    };
    pub use vcs_scenario::{replicate_seed, Dataset, ScenarioConfig, ScenarioParams, UserPool};
    pub use vcs_shard::{localized_game, partition, ShardConfig, ShardPlan, ShardedSim};
    pub use vcs_traces::{generate_traces, CityProfile, TraceGenConfig};
}
